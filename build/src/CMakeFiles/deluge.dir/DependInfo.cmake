
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/deluge.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/deluge.dir/common/clock.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/deluge.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/deluge.dir/common/hash.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/deluge.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/deluge.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/deluge.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/deluge.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/deluge.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/deluge.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/deluge.dir/common/status.cc.o" "gcc" "src/CMakeFiles/deluge.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/deluge.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/deluge.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/consistency/coherency.cc" "src/CMakeFiles/deluge.dir/consistency/coherency.cc.o" "gcc" "src/CMakeFiles/deluge.dir/consistency/coherency.cc.o.d"
  "/root/repo/src/consistency/lod.cc" "src/CMakeFiles/deluge.dir/consistency/lod.cc.o" "gcc" "src/CMakeFiles/deluge.dir/consistency/lod.cc.o.d"
  "/root/repo/src/consistency/priority_scheduler.cc" "src/CMakeFiles/deluge.dir/consistency/priority_scheduler.cc.o" "gcc" "src/CMakeFiles/deluge.dir/consistency/priority_scheduler.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/deluge.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/deluge.dir/core/engine.cc.o.d"
  "/root/repo/src/core/sensors.cc" "src/CMakeFiles/deluge.dir/core/sensors.cc.o" "gcc" "src/CMakeFiles/deluge.dir/core/sensors.cc.o.d"
  "/root/repo/src/core/world_space.cc" "src/CMakeFiles/deluge.dir/core/world_space.cc.o" "gcc" "src/CMakeFiles/deluge.dir/core/world_space.cc.o.d"
  "/root/repo/src/fusion/event_detector.cc" "src/CMakeFiles/deluge.dir/fusion/event_detector.cc.o" "gcc" "src/CMakeFiles/deluge.dir/fusion/event_detector.cc.o.d"
  "/root/repo/src/fusion/fuser.cc" "src/CMakeFiles/deluge.dir/fusion/fuser.cc.o" "gcc" "src/CMakeFiles/deluge.dir/fusion/fuser.cc.o.d"
  "/root/repo/src/geo/geometry.cc" "src/CMakeFiles/deluge.dir/geo/geometry.cc.o" "gcc" "src/CMakeFiles/deluge.dir/geo/geometry.cc.o.d"
  "/root/repo/src/geo/morton.cc" "src/CMakeFiles/deluge.dir/geo/morton.cc.o" "gcc" "src/CMakeFiles/deluge.dir/geo/morton.cc.o.d"
  "/root/repo/src/geo/trajectory.cc" "src/CMakeFiles/deluge.dir/geo/trajectory.cc.o" "gcc" "src/CMakeFiles/deluge.dir/geo/trajectory.cc.o.d"
  "/root/repo/src/index/grid_index.cc" "src/CMakeFiles/deluge.dir/index/grid_index.cc.o" "gcc" "src/CMakeFiles/deluge.dir/index/grid_index.cc.o.d"
  "/root/repo/src/index/hdov_tree.cc" "src/CMakeFiles/deluge.dir/index/hdov_tree.cc.o" "gcc" "src/CMakeFiles/deluge.dir/index/hdov_tree.cc.o.d"
  "/root/repo/src/index/morton_index.cc" "src/CMakeFiles/deluge.dir/index/morton_index.cc.o" "gcc" "src/CMakeFiles/deluge.dir/index/morton_index.cc.o.d"
  "/root/repo/src/index/moving_index.cc" "src/CMakeFiles/deluge.dir/index/moving_index.cc.o" "gcc" "src/CMakeFiles/deluge.dir/index/moving_index.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/deluge.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/deluge.dir/index/rtree.cc.o.d"
  "/root/repo/src/ledger/ledger.cc" "src/CMakeFiles/deluge.dir/ledger/ledger.cc.o" "gcc" "src/CMakeFiles/deluge.dir/ledger/ledger.cc.o.d"
  "/root/repo/src/ledger/merkle.cc" "src/CMakeFiles/deluge.dir/ledger/merkle.cc.o" "gcc" "src/CMakeFiles/deluge.dir/ledger/merkle.cc.o.d"
  "/root/repo/src/ledger/sha256.cc" "src/CMakeFiles/deluge.dir/ledger/sha256.cc.o" "gcc" "src/CMakeFiles/deluge.dir/ledger/sha256.cc.o.d"
  "/root/repo/src/ml/colearn.cc" "src/CMakeFiles/deluge.dir/ml/colearn.cc.o" "gcc" "src/CMakeFiles/deluge.dir/ml/colearn.cc.o.d"
  "/root/repo/src/ml/online_model.cc" "src/CMakeFiles/deluge.dir/ml/online_model.cc.o" "gcc" "src/CMakeFiles/deluge.dir/ml/online_model.cc.o.d"
  "/root/repo/src/net/aggregation_tree.cc" "src/CMakeFiles/deluge.dir/net/aggregation_tree.cc.o" "gcc" "src/CMakeFiles/deluge.dir/net/aggregation_tree.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/deluge.dir/net/network.cc.o" "gcc" "src/CMakeFiles/deluge.dir/net/network.cc.o.d"
  "/root/repo/src/net/simulator.cc" "src/CMakeFiles/deluge.dir/net/simulator.cc.o" "gcc" "src/CMakeFiles/deluge.dir/net/simulator.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/deluge.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/deluge.dir/net/topology.cc.o.d"
  "/root/repo/src/p2p/chord.cc" "src/CMakeFiles/deluge.dir/p2p/chord.cc.o" "gcc" "src/CMakeFiles/deluge.dir/p2p/chord.cc.o.d"
  "/root/repo/src/privacy/dp.cc" "src/CMakeFiles/deluge.dir/privacy/dp.cc.o" "gcc" "src/CMakeFiles/deluge.dir/privacy/dp.cc.o.d"
  "/root/repo/src/privacy/federated.cc" "src/CMakeFiles/deluge.dir/privacy/federated.cc.o" "gcc" "src/CMakeFiles/deluge.dir/privacy/federated.cc.o.d"
  "/root/repo/src/privacy/incentive.cc" "src/CMakeFiles/deluge.dir/privacy/incentive.cc.o" "gcc" "src/CMakeFiles/deluge.dir/privacy/incentive.cc.o.d"
  "/root/repo/src/pubsub/broker.cc" "src/CMakeFiles/deluge.dir/pubsub/broker.cc.o" "gcc" "src/CMakeFiles/deluge.dir/pubsub/broker.cc.o.d"
  "/root/repo/src/pubsub/subscription.cc" "src/CMakeFiles/deluge.dir/pubsub/subscription.cc.o" "gcc" "src/CMakeFiles/deluge.dir/pubsub/subscription.cc.o.d"
  "/root/repo/src/query/expression.cc" "src/CMakeFiles/deluge.dir/query/expression.cc.o" "gcc" "src/CMakeFiles/deluge.dir/query/expression.cc.o.d"
  "/root/repo/src/query/moving_query.cc" "src/CMakeFiles/deluge.dir/query/moving_query.cc.o" "gcc" "src/CMakeFiles/deluge.dir/query/moving_query.cc.o.d"
  "/root/repo/src/query/optimizer.cc" "src/CMakeFiles/deluge.dir/query/optimizer.cc.o" "gcc" "src/CMakeFiles/deluge.dir/query/optimizer.cc.o.d"
  "/root/repo/src/runtime/buffer_pool.cc" "src/CMakeFiles/deluge.dir/runtime/buffer_pool.cc.o" "gcc" "src/CMakeFiles/deluge.dir/runtime/buffer_pool.cc.o.d"
  "/root/repo/src/runtime/elastic_executor.cc" "src/CMakeFiles/deluge.dir/runtime/elastic_executor.cc.o" "gcc" "src/CMakeFiles/deluge.dir/runtime/elastic_executor.cc.o.d"
  "/root/repo/src/runtime/serverless.cc" "src/CMakeFiles/deluge.dir/runtime/serverless.cc.o" "gcc" "src/CMakeFiles/deluge.dir/runtime/serverless.cc.o.d"
  "/root/repo/src/storage/block_store.cc" "src/CMakeFiles/deluge.dir/storage/block_store.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/block_store.cc.o.d"
  "/root/repo/src/storage/bloom.cc" "src/CMakeFiles/deluge.dir/storage/bloom.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/bloom.cc.o.d"
  "/root/repo/src/storage/format.cc" "src/CMakeFiles/deluge.dir/storage/format.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/format.cc.o.d"
  "/root/repo/src/storage/kv_store.cc" "src/CMakeFiles/deluge.dir/storage/kv_store.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/kv_store.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/CMakeFiles/deluge.dir/storage/memtable.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/memtable.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/deluge.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/object_store.cc.o.d"
  "/root/repo/src/storage/sstable.cc" "src/CMakeFiles/deluge.dir/storage/sstable.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/sstable.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/deluge.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/deluge.dir/storage/wal.cc.o.d"
  "/root/repo/src/stream/continuous_query.cc" "src/CMakeFiles/deluge.dir/stream/continuous_query.cc.o" "gcc" "src/CMakeFiles/deluge.dir/stream/continuous_query.cc.o.d"
  "/root/repo/src/stream/operators.cc" "src/CMakeFiles/deluge.dir/stream/operators.cc.o" "gcc" "src/CMakeFiles/deluge.dir/stream/operators.cc.o.d"
  "/root/repo/src/stream/scheduler.cc" "src/CMakeFiles/deluge.dir/stream/scheduler.cc.o" "gcc" "src/CMakeFiles/deluge.dir/stream/scheduler.cc.o.d"
  "/root/repo/src/txn/distributed.cc" "src/CMakeFiles/deluge.dir/txn/distributed.cc.o" "gcc" "src/CMakeFiles/deluge.dir/txn/distributed.cc.o.d"
  "/root/repo/src/txn/mvcc.cc" "src/CMakeFiles/deluge.dir/txn/mvcc.cc.o" "gcc" "src/CMakeFiles/deluge.dir/txn/mvcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
