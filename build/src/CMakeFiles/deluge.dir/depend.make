# Empty dependencies file for deluge.
# This may be replaced when dependencies are built.
