file(REMOVE_RECURSE
  "libdeluge.a"
)
