// Crash-recovery tests for the write-ahead log and SSTable build path:
// post-hoc wreckage (truncation, bit flips, corrupt length prefixes) and
// injected I/O faults (torn writes, failed syncs).  The contract under
// test: Replay stops cleanly at the first damaged record, and a
// re-opened log keeps accepting appends.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "storage/fault_injection.h"
#include "storage/kv_store.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace deluge::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / ("deluge_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Each record frame is [fixed32 len][fixed64 checksum][payload].
constexpr uint64_t kFrameHeader = 12;

std::vector<std::string> ReplayAll(const std::string& path,
                                   size_t* replayed = nullptr) {
  std::vector<std::string> records;
  auto n = WriteAheadLog::Replay(
      path, [&](std::string_view r) { records.emplace_back(r); });
  EXPECT_TRUE(n.ok());
  if (replayed != nullptr) *replayed = n.value();
  return records;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  /// Opens a fresh log with the given records appended.
  void WriteLog(const std::vector<std::string>& records) {
    fs::remove(path_);  // Open appends; start each scenario clean
    ASSERT_TRUE(wal_.Open(path_).ok());
    for (const auto& r : records) ASSERT_TRUE(wal_.Append(r).ok());
    wal_.Close();
  }

  // Unique per test case: ctest runs discovered cases as separate
  // processes in parallel, and a shared directory would let one case's
  // fixture remove_all another's live log.
  std::string path_ =
      TempDir(std::string("wal_recovery_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
      "/wal.log";
  WriteAheadLog wal_;
};

TEST_F(WalRecoveryTest, TruncateMidRecordStopsReplayAtDamagedTail) {
  WriteLog({"alpha", "bravo", "charlie"});
  auto size = FileSize(path_);
  ASSERT_TRUE(size.ok());
  // Cut 3 bytes out of "charlie"'s payload: a crash mid-write.
  ASSERT_TRUE(TruncateFile(path_, size.value() - 3).ok());

  auto records = ReplayAll(path_);
  EXPECT_EQ(records, (std::vector<std::string>{"alpha", "bravo"}));

  // A re-opened log keeps appending without error...
  ASSERT_TRUE(wal_.Open(path_).ok());
  EXPECT_TRUE(wal_.Append("delta").ok());
  wal_.Close();
  // ...but records behind the damaged tail stay unreachable (replay
  // stops at the wreckage; it never resynchronizes mid-garbage).
  EXPECT_EQ(ReplayAll(path_),
            (std::vector<std::string>{"alpha", "bravo"}));

  // The real recovery protocol — replay, then Reset before reuse —
  // yields a clean log again.
  ASSERT_TRUE(wal_.Open(path_).ok());
  ASSERT_TRUE(wal_.Reset().ok());
  ASSERT_TRUE(wal_.Append("echo").ok());
  wal_.Close();
  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"echo"}));
}

TEST_F(WalRecoveryTest, TruncateMidHeaderStopsReplayToo) {
  WriteLog({"alpha", "bravo"});
  // Leave only 5 bytes of the second record's 12-byte header.
  uint64_t second_at = kFrameHeader + 5;  // after "alpha"'s frame
  ASSERT_TRUE(TruncateFile(path_, second_at + 5).ok());
  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"alpha"}));
}

TEST_F(WalRecoveryTest, FlippedPayloadByteFailsChecksum) {
  WriteLog({"alpha", "bravo", "charlie"});
  // Flip one byte inside "bravo"'s payload (record 2).
  uint64_t bravo_payload = (kFrameHeader + 5) + kFrameHeader;
  ASSERT_TRUE(FlipByte(path_, bravo_payload + 2).ok());
  size_t replayed = 0;
  auto records = ReplayAll(path_, &replayed);
  EXPECT_EQ(replayed, 1u);
  EXPECT_EQ(records, (std::vector<std::string>{"alpha"}));
}

TEST_F(WalRecoveryTest, CorruptLengthPrefixStopsReplay) {
  // High-byte flip: the length becomes implausibly large (> 64 MB) and
  // replay rejects the record without attempting the read.
  WriteLog({"alpha", "bravo"});
  ASSERT_TRUE(FlipByte(path_, /*offset=*/3).ok());
  EXPECT_TRUE(ReplayAll(path_).empty());

  // Low-byte nudge: a small-but-wrong length misframes the stream, so
  // the checksum (over the wrong byte range) fails instead.
  WriteLog({"alpha", "bravo"});
  ASSERT_TRUE(FlipByte(path_, /*offset=*/0, /*mask=*/0x02).ok());
  EXPECT_TRUE(ReplayAll(path_).empty());
}

TEST_F(WalRecoveryTest, InjectedTornWriteFailsAppendAndStopsReplay) {
  ScriptedIoFaults faults;
  ASSERT_TRUE(wal_.Open(path_).ok());
  wal_.set_fault_injector(&faults);
  ASSERT_TRUE(wal_.Append("one").ok());
  faults.TearWriteAfter(0, /*keep_bytes=*/7);  // half a header survives
  Status torn = wal_.Append("two");
  EXPECT_FALSE(torn.ok());
  EXPECT_EQ(faults.torn_writes(), 1u);
  wal_.Close();

  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"one"}));
}

TEST_F(WalRecoveryTest, InjectedSyncFailureLosesNoFlushedData) {
  ScriptedIoFaults faults;
  ASSERT_TRUE(wal_.Open(path_).ok());
  wal_.set_fault_injector(&faults);
  faults.FailSyncAfter(0);
  Status s = wal_.Append("one", /*sync=*/true);
  EXPECT_FALSE(s.ok());  // durability was NOT achieved and says so
  EXPECT_EQ(faults.failed_syncs(), 1u);
  wal_.Close();
  // The frame itself was flushed before the sync failed, so it replays;
  // the error tells the caller not to rely on it surviving power loss.
  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"one"}));
}

TEST(SSTableFaultTest, TornBuildFailsAndPartialFileNeverOpens) {
  std::string dir = TempDir("sst_torn");
  std::vector<InternalEntry> entries;
  for (int i = 0; i < 100; ++i) {
    InternalEntry e;
    e.user_key = "key" + std::to_string(1000 + i);
    e.seq = uint64_t(i + 1);
    e.value = std::string(64, 'v');
    entries.push_back(std::move(e));
  }
  std::string path = dir + "/torn.sst";
  ScriptedIoFaults faults;
  faults.TearWriteAfter(0, /*keep_bytes=*/1024);  // crash mid-build
  auto built = SSTable::Build(path, entries, 10, &faults);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(faults.torn_writes(), 1u);
  // The partial file is detected, never read as a short table.
  EXPECT_FALSE(SSTable::Open(path).ok());

  // The same entries build and open cleanly without the fault.
  auto ok = SSTable::Build(dir + "/clean.sst", entries);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()->entry_count(), entries.size());
}

// ---------------------------------------------------------------------
// Whole-engine crash tests: a fault is injected into a background
// flush / compaction output file, the store is closed (the "crash"),
// and a clean reopen must recover every acknowledged write.

TEST(KVStoreCrashTest, CrashDuringBackgroundFlushLosesNoAcknowledgedWrite) {
  std::string dir = TempDir("kv_crash_flush");
  ScriptedIoFaults faults;
  KVStoreOptions opts;
  opts.dir = dir;
  opts.table_faults = &faults;
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    KVStore* db = store.value().get();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), "v").ok());
    }
    // The flush's SSTable build crashes mid-write (torn file).
    faults.TearWriteAfter(0, /*keep_bytes=*/512);
    Status s = db->Flush();
    EXPECT_FALSE(s.ok());  // the failure is surfaced, not swallowed
    EXPECT_EQ(faults.torn_writes(), 1u);
    // The sealed memtable's WAL is still on disk: nothing acknowledged
    // was dropped with the failed table.
    EXPECT_TRUE(fs::exists(dir + "/wal.imm.log"));
  }  // "crash": close with the flush incomplete

  opts.table_faults = nullptr;
  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  KVStore* db = reopened.value().get();
  // Recovery completed the interrupted flush: the sealed memtable's WAL
  // was replayed into a real L0 table and then retired.
  EXPECT_FALSE(fs::exists(dir + "/wal.imm.log"));
  EXPECT_GE(db->l0_file_count(), 1u);
  std::string v;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ(v, "v");
  }
  // The store is fully operational: new writes, flushes, compactions.
  ASSERT_TRUE(db->Put("after", "crash").ok());
  ASSERT_TRUE(db->CompactAll().ok());
  ASSERT_TRUE(db->Get("after", &v).ok());
}

TEST(KVStoreCrashTest, CrashDuringCompactionKeepsOldTablesLive) {
  std::string dir = TempDir("kv_crash_compact");
  ScriptedIoFaults faults;
  KVStoreOptions opts;
  opts.dir = dir;
  opts.table_faults = &faults;
  opts.l0_compaction_trigger = 100;  // keep compaction manual
  size_t l0_before = 0;
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    KVStore* db = store.value().get();
    for (int batch = 0; batch < 3; ++batch) {
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(
            db->Put("key" + std::to_string(batch * 20 + i), "v").ok());
      }
      ASSERT_TRUE(db->Flush().ok());
    }
    l0_before = db->l0_file_count();
    ASSERT_EQ(l0_before, 3u);

    // The compaction's merged output file tears mid-write.
    faults.TearWriteAfter(0, /*keep_bytes=*/256);
    Status s = db->CompactAll();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(faults.torn_writes(), 1u);
    // Failure leaves the input tables installed and readable.
    EXPECT_EQ(db->l0_file_count(), 3u);
    std::string v;
    ASSERT_TRUE(db->Get("key0", &v).ok());
  }  // "crash" with the partial compaction output on disk

  opts.table_faults = nullptr;
  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  KVStore* db = reopened.value().get();
  // The old manifest still rules: all three L0 tables, every key.
  EXPECT_EQ(db->l0_file_count(), l0_before);
  std::string v;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &v).ok()) << i;
  }
  // The torn output file was garbage-collected as an orphan, and a
  // retried compaction (reusing the file number) succeeds.
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->l0_file_count(), 0u);
  EXPECT_EQ(db->l1_file_count(), 1u);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &v).ok()) << i;
  }
}

TEST(SSTableFaultTest, CorruptRecordSurfacesIteratorStatusNotSilentEof) {
  std::string dir = TempDir("sst_corrupt_rec");
  std::vector<InternalEntry> entries;
  for (int i = 0; i < 100; ++i) {
    InternalEntry e;
    e.user_key = "key" + std::to_string(1000 + i);
    e.seq = uint64_t(i + 1);
    e.value = std::string(64, 'v');
    entries.push_back(std::move(e));
  }
  std::string path = dir + "/rot.sst";
  { ASSERT_TRUE(SSTable::Build(path, entries).ok()); }
  // Bit rot in the first record's key-length varint: the decoder now
  // demands more bytes than the data region holds.  Footer, index, and
  // bloom are intact, so the table still opens (its max-key scan starts
  // at the last index point, past the damage).
  ASSERT_TRUE(FlipByte(path, /*offset=*/0).ok());
  auto table = SSTable::Open(path);
  ASSERT_TRUE(table.ok());

  // The scan must report the damage, not stop as if the table ended.
  SSTable::Iterator it(table.value().get());
  it.SeekToFirst();
  EXPECT_FALSE(it.Valid());
  EXPECT_FALSE(it.status().ok());
}

TEST(KVStoreCrashTest, CompactionAbortsOnCorruptInputTable) {
  std::string dir = TempDir("kv_corrupt_compact");
  KVStoreOptions opts;
  opts.dir = dir;
  opts.l0_compaction_trigger = 100;  // keep compaction manual
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    // Enough entries that the first record sits far from the last index
    // block: reopen's max-key scan never visits it, so the damage is
    // first encountered by the compaction's input scan.
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(store.value()->Put("key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(store.value()->Flush().ok());
    ASSERT_EQ(store.value()->l0_file_count(), 1u);
  }
  // Bit rot inside the only L0 table's first record while "offline".
  std::string sst;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".sst") sst = entry.path().string();
  }
  ASSERT_FALSE(sst.empty());
  ASSERT_TRUE(FlipByte(sst, /*offset=*/0).ok());

  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  KVStore* db = reopened.value().get();
  // The merge must abort rather than install a truncated output and
  // unlink the input — which would permanently delete the durable
  // entries that are still readable past the damaged record.
  EXPECT_FALSE(db->CompactAll().ok());
  EXPECT_EQ(db->l0_file_count(), 1u);
  EXPECT_TRUE(fs::exists(sst));
}

TEST(KVStoreCrashTest, TornBatchFrameRecoversAllOrNothing) {
  std::string dir = TempDir("kv_torn_batch");
  KVStoreOptions opts;
  opts.dir = dir;
  uint64_t bytes_before_doomed = 0;
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    WriteBatch acknowledged;
    acknowledged.Put("a1", "v");
    acknowledged.Put("a2", "v");
    ASSERT_TRUE(store.value()->Write(acknowledged).ok());
    auto size = FileSize(dir + "/wal.log");
    ASSERT_TRUE(size.ok());
    bytes_before_doomed = size.value();
    WriteBatch doomed;
    for (int i = 0; i < 10; ++i) doomed.Put("d" + std::to_string(i), "v");
    ASSERT_TRUE(store.value()->Write(doomed).ok());
  }
  // Crash mid-append: half of the second batch's frame reaches disk.
  // Write()'s contract demands the half-batch vanish entirely on
  // recovery — replaying a prefix of it would break batch atomicity.
  auto size = FileSize(dir + "/wal.log");
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(dir + "/wal.log",
                           bytes_before_doomed +
                               (size.value() - bytes_before_doomed) / 2)
                  .ok());

  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  std::string v;
  ASSERT_TRUE(reopened.value()->Get("a1", &v).ok());
  ASSERT_TRUE(reopened.value()->Get("a2", &v).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        reopened.value()->Get("d" + std::to_string(i), &v).IsNotFound())
        << i;
  }
}

TEST(KVStoreCrashTest, TornWalTailCannotStrandPostRecoveryWrites) {
  std::string dir = TempDir("kv_torn_tail");
  KVStoreOptions opts;
  opts.dir = dir;
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put("a", "1").ok());
    ASSERT_TRUE(store.value()->Put("b", "2").ok());
  }
  // Crash mid-append tears the last frame.
  auto size = FileSize(dir + "/wal.log");
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(dir + "/wal.log", size.value() - 3).ok());
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    std::string v;
    ASSERT_TRUE(store.value()->Get("a", &v).ok());
    EXPECT_TRUE(store.value()->Get("b", &v).IsNotFound());  // torn away
    // Recovery truncated the torn tail, so this lands right after the
    // intact prefix — not behind garbage that replay stops at.
    ASSERT_TRUE(store.value()->Put("c", "3").ok());
  }
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  std::string v;
  ASSERT_TRUE(store.value()->Get("a", &v).ok());
  ASSERT_TRUE(store.value()->Get("c", &v).ok());
  EXPECT_EQ(v, "3");
}

TEST(KVStoreCrashTest, BatchAcknowledgedBeforeCrashSurvivesRecovery) {
  std::string dir = TempDir("kv_crash_batch");
  ScriptedIoFaults faults;
  KVStoreOptions opts;
  opts.dir = dir;
  opts.table_faults = &faults;
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    KVStore* db = store.value().get();
    WriteBatch batch;
    for (int i = 0; i < 25; ++i) {
      batch.Put("b" + std::to_string(i), "batched");
    }
    batch.Delete("b0");
    ASSERT_TRUE(db->Write(batch).ok());
    faults.TearWriteAfter(0, /*keep_bytes=*/128);
    EXPECT_FALSE(db->Flush().ok());
  }

  opts.table_faults = nullptr;
  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  std::string v;
  EXPECT_TRUE(reopened.value()->Get("b0", &v).IsNotFound());  // tombstone
  for (int i = 1; i < 25; ++i) {
    ASSERT_TRUE(reopened.value()->Get("b" + std::to_string(i), &v).ok());
    EXPECT_EQ(v, "batched");
  }
}

}  // namespace
}  // namespace deluge::storage
