// Crash-recovery tests for the write-ahead log and SSTable build path:
// post-hoc wreckage (truncation, bit flips, corrupt length prefixes) and
// injected I/O faults (torn writes, failed syncs).  The contract under
// test: Replay stops cleanly at the first damaged record, and a
// re-opened log keeps accepting appends.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "storage/fault_injection.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace deluge::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / ("deluge_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Each record frame is [fixed32 len][fixed64 checksum][payload].
constexpr uint64_t kFrameHeader = 12;

std::vector<std::string> ReplayAll(const std::string& path,
                                   size_t* replayed = nullptr) {
  std::vector<std::string> records;
  auto n = WriteAheadLog::Replay(
      path, [&](std::string_view r) { records.emplace_back(r); });
  EXPECT_TRUE(n.ok());
  if (replayed != nullptr) *replayed = n.value();
  return records;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  /// Opens a fresh log with the given records appended.
  void WriteLog(const std::vector<std::string>& records) {
    fs::remove(path_);  // Open appends; start each scenario clean
    ASSERT_TRUE(wal_.Open(path_).ok());
    for (const auto& r : records) ASSERT_TRUE(wal_.Append(r).ok());
    wal_.Close();
  }

  std::string path_ = TempDir("wal_recovery") + "/wal.log";
  WriteAheadLog wal_;
};

TEST_F(WalRecoveryTest, TruncateMidRecordStopsReplayAtDamagedTail) {
  WriteLog({"alpha", "bravo", "charlie"});
  auto size = FileSize(path_);
  ASSERT_TRUE(size.ok());
  // Cut 3 bytes out of "charlie"'s payload: a crash mid-write.
  ASSERT_TRUE(TruncateFile(path_, size.value() - 3).ok());

  auto records = ReplayAll(path_);
  EXPECT_EQ(records, (std::vector<std::string>{"alpha", "bravo"}));

  // A re-opened log keeps appending without error...
  ASSERT_TRUE(wal_.Open(path_).ok());
  EXPECT_TRUE(wal_.Append("delta").ok());
  wal_.Close();
  // ...but records behind the damaged tail stay unreachable (replay
  // stops at the wreckage; it never resynchronizes mid-garbage).
  EXPECT_EQ(ReplayAll(path_),
            (std::vector<std::string>{"alpha", "bravo"}));

  // The real recovery protocol — replay, then Reset before reuse —
  // yields a clean log again.
  ASSERT_TRUE(wal_.Open(path_).ok());
  ASSERT_TRUE(wal_.Reset().ok());
  ASSERT_TRUE(wal_.Append("echo").ok());
  wal_.Close();
  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"echo"}));
}

TEST_F(WalRecoveryTest, TruncateMidHeaderStopsReplayToo) {
  WriteLog({"alpha", "bravo"});
  // Leave only 5 bytes of the second record's 12-byte header.
  uint64_t second_at = kFrameHeader + 5;  // after "alpha"'s frame
  ASSERT_TRUE(TruncateFile(path_, second_at + 5).ok());
  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"alpha"}));
}

TEST_F(WalRecoveryTest, FlippedPayloadByteFailsChecksum) {
  WriteLog({"alpha", "bravo", "charlie"});
  // Flip one byte inside "bravo"'s payload (record 2).
  uint64_t bravo_payload = (kFrameHeader + 5) + kFrameHeader;
  ASSERT_TRUE(FlipByte(path_, bravo_payload + 2).ok());
  size_t replayed = 0;
  auto records = ReplayAll(path_, &replayed);
  EXPECT_EQ(replayed, 1u);
  EXPECT_EQ(records, (std::vector<std::string>{"alpha"}));
}

TEST_F(WalRecoveryTest, CorruptLengthPrefixStopsReplay) {
  // High-byte flip: the length becomes implausibly large (> 64 MB) and
  // replay rejects the record without attempting the read.
  WriteLog({"alpha", "bravo"});
  ASSERT_TRUE(FlipByte(path_, /*offset=*/3).ok());
  EXPECT_TRUE(ReplayAll(path_).empty());

  // Low-byte nudge: a small-but-wrong length misframes the stream, so
  // the checksum (over the wrong byte range) fails instead.
  WriteLog({"alpha", "bravo"});
  ASSERT_TRUE(FlipByte(path_, /*offset=*/0, /*mask=*/0x02).ok());
  EXPECT_TRUE(ReplayAll(path_).empty());
}

TEST_F(WalRecoveryTest, InjectedTornWriteFailsAppendAndStopsReplay) {
  ScriptedIoFaults faults;
  ASSERT_TRUE(wal_.Open(path_).ok());
  wal_.set_fault_injector(&faults);
  ASSERT_TRUE(wal_.Append("one").ok());
  faults.TearWriteAfter(0, /*keep_bytes=*/7);  // half a header survives
  Status torn = wal_.Append("two");
  EXPECT_FALSE(torn.ok());
  EXPECT_EQ(faults.torn_writes(), 1u);
  wal_.Close();

  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"one"}));
}

TEST_F(WalRecoveryTest, InjectedSyncFailureLosesNoFlushedData) {
  ScriptedIoFaults faults;
  ASSERT_TRUE(wal_.Open(path_).ok());
  wal_.set_fault_injector(&faults);
  faults.FailSyncAfter(0);
  Status s = wal_.Append("one", /*sync=*/true);
  EXPECT_FALSE(s.ok());  // durability was NOT achieved and says so
  EXPECT_EQ(faults.failed_syncs(), 1u);
  wal_.Close();
  // The frame itself was flushed before the sync failed, so it replays;
  // the error tells the caller not to rely on it surviving power loss.
  EXPECT_EQ(ReplayAll(path_), (std::vector<std::string>{"one"}));
}

TEST(SSTableFaultTest, TornBuildFailsAndPartialFileNeverOpens) {
  std::string dir = TempDir("sst_torn");
  std::vector<InternalEntry> entries;
  for (int i = 0; i < 100; ++i) {
    InternalEntry e;
    e.user_key = "key" + std::to_string(1000 + i);
    e.seq = uint64_t(i + 1);
    e.value = std::string(64, 'v');
    entries.push_back(std::move(e));
  }
  std::string path = dir + "/torn.sst";
  ScriptedIoFaults faults;
  faults.TearWriteAfter(0, /*keep_bytes=*/1024);  // crash mid-build
  auto built = SSTable::Build(path, entries, 10, &faults);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(faults.torn_writes(), 1u);
  // The partial file is detected, never read as a short table.
  EXPECT_FALSE(SSTable::Open(path).ok());

  // The same entries build and open cleanly without the fault.
  auto ok = SSTable::Build(dir + "/clean.sst", entries);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()->entry_count(), entries.size());
}

}  // namespace
}  // namespace deluge::storage
