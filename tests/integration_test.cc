// Cross-module integration tests: the full Fig. 1 data paths wired
// through multiple Deluge subsystems at once.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>

#include "consistency/priority_scheduler.h"
#include "core/engine.h"
#include "core/sensors.h"
#include "fusion/fuser.h"
#include "ledger/ledger.h"
#include "ml/online_model.h"
#include "storage/kv_store.h"

namespace deluge {
namespace {

namespace fs_helpers {
std::string TempDir(const std::string& name) {
  std::string dir = "/tmp/deluge_it_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}
}  // namespace fs_helpers

// Fusion-corrected ingest: two noisy sensors + one liar feed the fuser;
// only fused estimates enter the engine.  The mirror must track ground
// truth despite the liar.
TEST(IntegrationTest, FusedIngestShieldsEngineFromBadSensor) {
  core::EngineOptions options;
  options.world_bounds = geo::AABB({0, 0, 0}, {1000, 1000, 50});
  options.default_contract = {1.0, kMicrosPerSecond};
  SimClock clock;
  core::CoSpaceEngine engine(options, &clock);

  core::Entity tracked;
  tracked.id = 1;
  tracked.position = {500, 500, 0};
  engine.SpawnPhysical(tracked);

  fusion::FuserOptions fuser_options;
  fuser_options.reliability_window = kMicrosPerSecond;
  fuser_options.reliability_scale = 10.0;
  fusion::EntityFuser fuser(fuser_options);

  Rng rng(7);
  geo::Vec3 truth{500, 500, 0};
  Micros t = 0;
  for (int step = 0; step < 200; ++step) {
    t += 200 * kMicrosPerMilli;
    truth += {0.5, 0.2, 0};
    auto observe = [&](uint32_t source, fusion::SourceType type,
                       geo::Vec3 pos) {
      fusion::Observation obs;
      obs.entity = "unit1";
      obs.source_id = source;
      obs.type = type;
      obs.t = t;
      obs.position = pos;
      obs.has_position = true;
      fuser.Add(obs);
    };
    observe(1, fusion::SourceType::kGps,
            truth + geo::Vec3{rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3), 0});
    observe(2, fusion::SourceType::kCamera,
            truth + geo::Vec3{rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3), 0});
    observe(3, fusion::SourceType::kText,
            truth + geo::Vec3{rng.Gaussian(50, 10), 0, 0});  // liar

    auto fused = fuser.EstimatePosition("unit1", t);
    ASSERT_TRUE(fused.ok());
    engine.IngestPhysicalPosition(1, fused.value().position, t);
  }
  double err = geo::Distance(engine.virtual_space().Get(1)->position, truth);
  // Unweighted fusion would carry ~1/3 of the 50 m bias (~17 m).
  EXPECT_LT(err, 8.0);
}

// Persistence round-trip: the virtual space checkpoints entities into
// the LSM store; a fresh WorldSpace recovers them.
TEST(IntegrationTest, WorldCheckpointIntoKvStoreAndRestore) {
  storage::KVStoreOptions kv_options;
  kv_options.dir = fs_helpers::TempDir("ckpt");
  auto store = storage::KVStore::Open(kv_options);
  ASSERT_TRUE(store.ok());

  core::WorldSpace world(stream::Space::kVirtual,
                         geo::AABB({0, 0, 0}, {1000, 1000, 50}));
  Rng rng(11);
  for (core::EntityId id = 1; id <= 200; ++id) {
    core::Entity e;
    e.id = id;
    e.position = {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000), 0};
    e.attributes["hp"] = int64_t(100 - int64_t(id % 50));
    world.Upsert(e);
  }
  // Checkpoint: serialize position + hp per entity.
  for (core::EntityId id = 1; id <= 200; ++id) {
    const core::Entity* e = world.Get(id);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%f,%f,%f,%lld", e->position.x,
                  e->position.y, e->position.z,
                  static_cast<long long>(*e->Attr<int64_t>("hp")));
    ASSERT_TRUE(
        store.value()->Put("entity:" + std::to_string(id), buf).ok());
  }
  ASSERT_TRUE(store.value()->Flush().ok());

  // Restore into a new world and verify spatial queries match.
  core::WorldSpace restored(stream::Space::kVirtual,
                            geo::AABB({0, 0, 0}, {1000, 1000, 50}));
  auto it = store.value()->NewIterator();
  int loaded = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    core::Entity e;
    e.id = std::stoull(it.key().substr(7));
    double x, y, z;
    long long hp;
    ASSERT_EQ(std::sscanf(it.value().c_str(), "%lf,%lf,%lf,%lld", &x, &y, &z,
                          &hp),
              4);
    e.position = {x, y, z};
    e.attributes["hp"] = int64_t(hp);
    restored.Upsert(e);
    ++loaded;
  }
  EXPECT_EQ(loaded, 200);
  geo::AABB probe = geo::AABB::Cube({500, 500, 0}, 200);
  std::set<core::EntityId> orig_ids, rest_ids;
  for (const auto* e : world.Range(probe)) orig_ids.insert(e->id);
  for (const auto* e : restored.Range(probe)) rest_ids.insert(e->id);
  EXPECT_EQ(orig_ids, rest_ids);
}

// Engine mirror events audited on the ledger: every mirrored update is
// appended; the auditor verifies a sample.
TEST(IntegrationTest, MirrorUpdatesAreAuditable) {
  core::EngineOptions options;
  options.world_bounds = geo::AABB({0, 0, 0}, {1000, 1000, 50});
  options.default_contract = {2.0, 3600 * kMicrosPerSecond};
  SimClock clock;
  core::CoSpaceEngine engine(options, &clock);
  ledger::TransparencyLedger audit_log(&clock);

  // Every mirror event (broker publication) appends to the ledger.
  engine.WatchRegion(1, options.world_bounds,
                     [&](net::NodeId, const pubsub::Event& event) {
                       audit_log.Append("mirror:" + event.payload.key);
                     });

  core::Entity e;
  e.id = 42;
  e.position = {10, 10, 0};
  engine.SpawnPhysical(e);
  Micros t = 0;
  geo::Vec3 pos = e.position;
  for (int i = 0; i < 50; ++i) {
    t += 100 * kMicrosPerMilli;
    pos += {1.0, 0, 0};  // 1 m steps: mirrors every ~2 steps
    engine.IngestPhysicalPosition(42, pos, t);
  }
  ASSERT_GT(audit_log.size(), 10u);
  ledger::TreeHead head = audit_log.PublishHead();
  ledger::Auditor auditor;
  ASSERT_TRUE(auditor.ObserveHead(head, {}).ok());
  std::string rec;
  ASSERT_TRUE(audit_log.GetEntry(3, &rec).ok());
  EXPECT_TRUE(auditor
                  .VerifyRecord(rec, 3,
                                audit_log.ProveInclusion(3, head.tree_size))
                  .ok());
  EXPECT_EQ(rec, "mirror:42");
}

// Coherency + constrained link end-to-end: filtered updates ride a
// priority-scheduled 1 Mbps link; critical commands never starve even
// while position updates saturate the link.
TEST(IntegrationTest, CoherencyPlusPriorityLinkKeepsCommandsTimely) {
  net::Simulator sim;
  consistency::TransmissionScheduler link(
      &sim, 125e3, consistency::TxPolicy::kStrictPriority);
  consistency::CoherencyFilter filter({2.0, kMicrosPerSecond});

  core::SensorFleetOptions fleet_options;
  fleet_options.num_entities = 300;
  fleet_options.max_speed = 5.0;
  core::SensorFleet fleet(geo::AABB({0, 0, 0}, {2000, 2000, 50}),
                          fleet_options);

  Micros worst_command = 0;
  int commands = 0;
  for (int tick = 0; tick < 100; ++tick) {
    Micros now = Micros(tick) * 100 * kMicrosPerMilli;
    sim.RunUntil(now);
    for (const auto& r : fleet.Tick(100 * kMicrosPerMilli, now)) {
      if (filter.Offer(r.entity, r.position, r.t)) {
        consistency::PendingUpdate u;
        u.qos = QosClass::kInteractive;
        u.bytes = 64;
        link.Submit(std::move(u));
      }
    }
    if (tick % 10 == 5) {
      consistency::PendingUpdate cmd;
      cmd.qos = QosClass::kRealtime;
      cmd.bytes = 128;
      Micros sent = sim.Now();
      cmd.on_delivered = [&, sent](Micros at) {
        worst_command = std::max(worst_command, at - sent);
        ++commands;
      };
      link.Submit(std::move(cmd));
    }
  }
  sim.Run();
  EXPECT_EQ(commands, 10);
  // Critical commands preempt the queue: worst case ~ one in-flight
  // update (64 B at 1 Mbps ≈ 0.5 ms) + own transmit time (~1 ms).
  EXPECT_LT(worst_command, 10 * kMicrosPerMilli);
  // And coherency did its job keeping the link load feasible at all.
  EXPECT_GT(filter.stats().SuppressionRatio(), 0.3);
}

// A learned admission controller drifts with the workload: the adaptive
// model keeps estimating query cost as the workload regime changes.
TEST(IntegrationTest, AdaptiveCostModelSurvivesWorkloadShift) {
  Rng rng(13);
  ml::AdaptiveModel cost_model(3, 0.05, ml::PageHinkley(0.05, 12.0, 20));
  auto run_regime = [&](double w_sel, double w_size, double w_fanout,
                        int n) {
    double tail_err = 0;
    int tail = 0;
    for (int i = 0; i < n; ++i) {
      std::vector<double> features = {rng.UniformDouble(0, 1),
                                      rng.UniformDouble(0, 1),
                                      rng.UniformDouble(0, 1)};
      double cost = w_sel * features[0] + w_size * features[1] +
                    w_fanout * features[2] + rng.Gaussian(0, 0.02);
      double err = cost_model.Observe(features, cost);
      if (i > n * 3 / 4) {
        tail_err += err;
        ++tail;
      }
    }
    return tail_err / tail;
  };
  double regime1 = run_regime(1.0, 2.0, 0.5, 2000);   // scan-heavy
  double regime2 = run_regime(5.0, 0.2, 3.0, 2000);   // point-lookup era
  EXPECT_LT(regime1, 0.1);
  EXPECT_LT(regime2, 0.1);  // recovered after the shift
  EXPECT_GE(cost_model.drift_resets(), 1u);
}

}  // namespace
}  // namespace deluge
