#include <gtest/gtest.h>

#include "ml/colearn.h"

namespace deluge::ml {
namespace {

TEST(CoLearnTest, CollaborationBeatsNoisyEnvironmentBaseline) {
  CoLearnConfig config;
  config.rounds = 6000;
  config.environment_noise = 0.3;
  CoLearningLoop loop(config);
  CoLearnResult result = loop.Run();
  EXPECT_GT(result.model_accuracy, result.baseline_accuracy);
  EXPECT_GT(result.model_accuracy, 0.9);
  EXPECT_GT(result.human_queries, 0u);
}

TEST(CoLearnTest, HumanSkillImprovesThroughModelFeedback) {
  CoLearnConfig config;
  config.initial_human_skill = 0.7;
  config.rounds = 6000;
  CoLearningLoop loop(config);
  CoLearnResult result = loop.Run();
  // The human learned from the model's explanations (Fig. 8(c)'s other
  // direction of the arrow).
  EXPECT_GT(result.final_human_skill, 0.85);
  EXPECT_LE(result.final_human_skill, config.max_human_skill);
}

TEST(CoLearnTest, NoQueriesWhenMarginIsZero) {
  CoLearnConfig config;
  config.query_margin = 0.0;  // never uncertain enough to ask
  config.rounds = 1000;
  CoLearningLoop loop(config);
  CoLearnResult result = loop.Run();
  EXPECT_EQ(result.human_queries, 0u);
}

TEST(CoLearnTest, QueryBudgetShrinksAsModelGainsConfidence) {
  // More rounds should not mean proportionally more human queries: the
  // model's uncertain region shrinks as it converges.
  auto queries_for = [](size_t rounds) {
    CoLearnConfig config;
    config.rounds = rounds;
    CoLearningLoop loop(config);
    return loop.Run().human_queries;
  };
  // Same seed => the first 4000 rounds are identical; the second 4000
  // rounds must consume fewer queries than the first 4000 did.
  uint64_t first_half = queries_for(4000);
  uint64_t both_halves = queries_for(8000);
  EXPECT_LT(both_halves - first_half, first_half);
}

TEST(CoLearnTest, DeterministicGivenSeed) {
  CoLearnConfig config;
  config.rounds = 500;
  CoLearnResult a = CoLearningLoop(config).Run();
  CoLearnResult b = CoLearningLoop(config).Run();
  EXPECT_EQ(a.model_accuracy, b.model_accuracy);
  EXPECT_EQ(a.human_queries, b.human_queries);
}

}  // namespace
}  // namespace deluge::ml
