#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "common/rng.h"
#include "storage/block_store.h"
#include "storage/bloom.h"
#include "storage/format.h"
#include "storage/kv_store.h"
#include "storage/memtable.h"
#include "storage/object_store.h"
#include "storage/skiplist.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace deluge::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / ("deluge_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- Format

TEST(FormatTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  std::string_view v(buf);
  uint32_t a = 0;
  uint64_t b = 0;
  ASSERT_TRUE(GetFixed32(&v, &a));
  ASSERT_TRUE(GetFixed64(&v, &b));
  EXPECT_EQ(a, 0xDEADBEEF);
  EXPECT_EQ(b, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(v.empty());
}

TEST(FormatTest, VarintRoundTrip) {
  std::string buf;
  uint64_t values[] = {0, 1, 127, 128, 16383, 16384, 1ull << 32, ~0ull};
  for (uint64_t x : values) PutVarint64(&buf, x);
  std::string_view v(buf);
  for (uint64_t x : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&v, &got));
    EXPECT_EQ(got, x);
  }
}

TEST(FormatTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  std::string_view v(buf.data(), buf.size() - 1);
  uint64_t got = 0;
  EXPECT_FALSE(GetVarint64(&v, &got));
  std::string_view empty;
  uint32_t f = 0;
  EXPECT_FALSE(GetFixed32(&empty, &f));
}

TEST(FormatTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  std::string_view v(buf), s;
  ASSERT_TRUE(GetLengthPrefixed(&v, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&v, &s));
  EXPECT_EQ(s, "");
}

// -------------------------------------------------------------- SkipList

struct IntCmp {
  int operator()(int a, int b) const { return a < b ? -1 : (a > b ? 1 : 0); }
};

TEST(SkipListTest, InsertAndContains) {
  SkipList<int, IntCmp> list;
  for (int x : {5, 1, 9, 3, 7}) list.Insert(x);
  EXPECT_EQ(list.size(), 5u);
  EXPECT_TRUE(list.Contains(5));
  EXPECT_TRUE(list.Contains(1));
  EXPECT_FALSE(list.Contains(2));
}

TEST(SkipListTest, IterationIsSorted) {
  SkipList<int, IntCmp> list;
  Rng rng(7);
  std::set<int> expected;
  for (int i = 0; i < 500; ++i) {
    int v = int(rng.Uniform(10000));
    if (expected.insert(v).second) list.Insert(v);
  }
  SkipList<int, IntCmp>::Iterator it(&list);
  auto eit = expected.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++eit) {
    ASSERT_NE(eit, expected.end());
    EXPECT_EQ(it.key(), *eit);
  }
  EXPECT_EQ(eit, expected.end());
}

TEST(SkipListTest, SeekFindsLowerBound) {
  SkipList<int, IntCmp> list;
  for (int x : {10, 20, 30}) list.Insert(x);
  SkipList<int, IntCmp>::Iterator it(&list);
  it.Seek(15);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20);
  it.Seek(30);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30);
  it.Seek(31);
  EXPECT_FALSE(it.Valid());
}

// ----------------------------------------------------------------- Bloom

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) bloom.Add("key" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain("key" + std::to_string(i)));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilter bloom(1000, 10);
  for (int i = 0; i < 1000; ++i) bloom.Add("key" + std::to_string(i));
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.MayContain("absent" + std::to_string(i))) ++fp;
  }
  EXPECT_LT(fp, 300);  // ~1% expected; 3% bound is generous
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter bloom(100);
  bloom.Add("alpha");
  bloom.Add("beta");
  BloomFilter restored = BloomFilter::Deserialize(bloom.Serialize());
  EXPECT_TRUE(restored.MayContain("alpha"));
  EXPECT_TRUE(restored.MayContain("beta"));
  EXPECT_EQ(restored.bit_count(), bloom.bit_count());
}

TEST(BloomTest, CorruptDeserializeIsSafe) {
  BloomFilter f = BloomFilter::Deserialize("short");
  EXPECT_TRUE(f.MayContain("anything"));  // degenerate: always maybe
}

// ------------------------------------------------------------------- WAL

TEST(WalTest, AppendAndReplay) {
  std::string dir = TempDir("wal1");
  std::string path = dir + "/wal.log";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("first").ok());
    ASSERT_TRUE(wal.Append("second", /*sync=*/true).ok());
  }
  std::vector<std::string> records;
  auto n = WriteAheadLog::Replay(
      path, [&](std::string_view r) { records.emplace_back(r); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  EXPECT_EQ(records, (std::vector<std::string>{"first", "second"}));
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  std::string dir = TempDir("wal2");
  std::string path = dir + "/wal.log";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("good").ok());
    ASSERT_TRUE(wal.Append("will-be-torn").ok());
  }
  // Truncate the last 5 bytes to simulate a crash mid-write.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);

  std::vector<std::string> records;
  auto n = WriteAheadLog::Replay(
      path, [&](std::string_view r) { records.emplace_back(r); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  EXPECT_EQ(records[0], "good");
}

TEST(WalTest, CorruptRecordStopsReplay) {
  std::string dir = TempDir("wal3");
  std::string path = dir + "/wal.log";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("good").ok());
    ASSERT_TRUE(wal.Append("bad").ok());
  }
  // Flip a payload byte of the second record.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  f.put('X');
  f.close();

  size_t count = 0;
  auto n = WriteAheadLog::Replay(path, [&](std::string_view) { ++count; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(count, 1u);
}

TEST(WalTest, ResetTruncates) {
  std::string dir = TempDir("wal4");
  std::string path = dir + "/wal.log";
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append("data").ok());
  EXPECT_GT(wal.size_bytes(), 0u);
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.size_bytes(), 0u);
  size_t count = 0;
  WriteAheadLog::Replay(path, [&](std::string_view) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(WalTest, MissingFileReplaysNothing) {
  auto n = WriteAheadLog::Replay("/nonexistent/path/wal.log",
                                 [](std::string_view) { FAIL(); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

// -------------------------------------------------------------- MemTable

TEST(MemTableTest, PutThenGet) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, "k", "v1");
  std::string value;
  bool tomb = false;
  ASSERT_TRUE(mt.Get("k", KVStore::kMaxSequence, &value, &tomb));
  EXPECT_FALSE(tomb);
  EXPECT_EQ(value, "v1");
}

TEST(MemTableTest, NewestVersionWins) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, "k", "old");
  mt.Add(2, ValueType::kValue, "k", "new");
  std::string value;
  bool tomb = false;
  ASSERT_TRUE(mt.Get("k", KVStore::kMaxSequence, &value, &tomb));
  EXPECT_EQ(value, "new");
}

TEST(MemTableTest, SnapshotSeesOldVersion) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, "k", "old");
  mt.Add(5, ValueType::kValue, "k", "new");
  std::string value;
  bool tomb = false;
  ASSERT_TRUE(mt.Get("k", /*snapshot=*/3, &value, &tomb));
  EXPECT_EQ(value, "old");
}

TEST(MemTableTest, TombstoneVisible) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, "k", "v");
  mt.Add(2, ValueType::kTombstone, "k", "");
  std::string value;
  bool tomb = false;
  ASSERT_TRUE(mt.Get("k", KVStore::kMaxSequence, &value, &tomb));
  EXPECT_TRUE(tomb);
}

TEST(MemTableTest, MissingKey) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, "a", "v");
  std::string value;
  bool tomb = false;
  EXPECT_FALSE(mt.Get("b", KVStore::kMaxSequence, &value, &tomb));
}

// --------------------------------------------------------------- SSTable

std::vector<InternalEntry> MakeEntries(int n, SequenceNumber seq_base = 1) {
  std::vector<InternalEntry> entries;
  for (int i = 0; i < n; ++i) {
    InternalEntry e;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%05d", i);
    e.user_key = buf;
    e.seq = seq_base;
    e.type = ValueType::kValue;
    e.value = "value" + std::to_string(i);
    entries.push_back(e);
  }
  return entries;
}

TEST(SSTableTest, BuildOpenGet) {
  std::string dir = TempDir("sst1");
  auto entries = MakeEntries(100);
  auto table = SSTable::Build(dir + "/t.sst", entries);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->entry_count(), 100u);

  InternalEntry e;
  ASSERT_TRUE(table.value()->Get("key00042", KVStore::kMaxSequence, &e).ok());
  EXPECT_EQ(e.value, "value42");
  EXPECT_TRUE(
      table.value()->Get("key99999", KVStore::kMaxSequence, &e).IsNotFound());
}

TEST(SSTableTest, MinMaxKeys) {
  std::string dir = TempDir("sst2");
  auto table = SSTable::Build(dir + "/t.sst", MakeEntries(50));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->min_key(), "key00000");
  EXPECT_EQ(table.value()->max_key(), "key00049");
}

TEST(SSTableTest, IteratorScansAll) {
  std::string dir = TempDir("sst3");
  auto entries = MakeEntries(257);  // crosses index intervals
  auto table = SSTable::Build(dir + "/t.sst", entries);
  ASSERT_TRUE(table.ok());
  SSTable::Iterator it(table.value().get());
  size_t count = 0;
  std::string prev;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    EXPECT_GE(it.entry().user_key, prev);
    prev = it.entry().user_key;
    ++count;
  }
  EXPECT_EQ(count, 257u);
}

TEST(SSTableTest, SeekPositionsAtLowerBound) {
  std::string dir = TempDir("sst4");
  auto table = SSTable::Build(dir + "/t.sst", MakeEntries(100));
  ASSERT_TRUE(table.ok());
  SSTable::Iterator it(table.value().get());
  it.Seek("key00050");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry().user_key, "key00050");
  it.Seek("key000505");  // between 50 and 51
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry().user_key, "key00051");
}

TEST(SSTableTest, SnapshotFiltersVersions) {
  std::string dir = TempDir("sst5");
  std::vector<InternalEntry> entries;
  for (SequenceNumber seq : {30, 20, 10}) {  // newest first, internal order
    InternalEntry e;
    e.user_key = "k";
    e.seq = seq;
    e.type = ValueType::kValue;
    e.value = "v" + std::to_string(seq);
    entries.push_back(e);
  }
  auto table = SSTable::Build(dir + "/t.sst", entries);
  ASSERT_TRUE(table.ok());
  InternalEntry e;
  ASSERT_TRUE(table.value()->Get("k", 25, &e).ok());
  EXPECT_EQ(e.value, "v20");
  ASSERT_TRUE(table.value()->Get("k", 5, &e).IsNotFound());
}

TEST(SSTableTest, EmptyTable) {
  std::string dir = TempDir("sst6");
  auto table = SSTable::Build(dir + "/t.sst", {});
  ASSERT_TRUE(table.ok());
  InternalEntry e;
  EXPECT_TRUE(table.value()->Get("x", KVStore::kMaxSequence, &e).IsNotFound());
  SSTable::Iterator it(table.value().get());
  it.SeekToFirst();
  EXPECT_FALSE(it.Valid());
}

TEST(SSTableTest, CorruptFileRejected) {
  std::string dir = TempDir("sst7");
  std::string path = dir + "/bad.sst";
  std::ofstream(path) << "this is not an sstable at all, not even close....";
  auto table = SSTable::Open(path);
  EXPECT_FALSE(table.ok());
}

TEST(SSTableTest, VersionsStraddlingIndexBoundaryReturnNewest) {
  // Regression: many versions of one key span an index-block boundary,
  // so an index point's key EQUALS the lookup target while newer
  // versions live in the previous block.  Seek must start early enough.
  std::string dir = TempDir("sst_straddle");
  std::vector<InternalEntry> entries;
  InternalEntry a;
  a.user_key = "a";
  a.seq = 1000;
  a.value = "va";
  entries.push_back(a);
  // 40 versions of "b", newest (seq 40) first — crosses index interval 16.
  for (int v = 40; v >= 1; --v) {
    InternalEntry b;
    b.user_key = "b";
    b.seq = SequenceNumber(v);
    b.value = "vb" + std::to_string(v);
    entries.push_back(b);
  }
  auto table = SSTable::Build(dir + "/t.sst", entries);
  ASSERT_TRUE(table.ok());
  InternalEntry found;
  ASSERT_TRUE(table.value()->Get("b", KVStore::kMaxSequence, &found).ok());
  EXPECT_EQ(found.value, "vb40");  // the NEWEST version, not a mid-run one
  ASSERT_TRUE(table.value()->Get("b", 25, &found).ok());
  EXPECT_EQ(found.value, "vb25");
}

TEST(SSTableTest, BloomSkipsAbsentKeys) {
  std::string dir = TempDir("sst8");
  auto table = SSTable::Build(dir + "/t.sst", MakeEntries(1000));
  ASSERT_TRUE(table.ok());
  InternalEntry e;
  for (int i = 0; i < 500; ++i) {
    table.value()->Get("missing" + std::to_string(i), KVStore::kMaxSequence,
                       &e);
  }
  // The overwhelming majority of absent probes must be answered by the
  // bloom filter without touching the data region.
  EXPECT_GT(table.value()->bloom_negative_count, 450u);
}

// --------------------------------------------------------------- KVStore

TEST(KVStoreTest, PutGetDelete) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv1");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  KVStore* db = store.value().get();

  ASSERT_TRUE(db->Put("alpha", "1").ok());
  ASSERT_TRUE(db->Put("beta", "2").ok());
  std::string v;
  ASSERT_TRUE(db->Get("alpha", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(db->Delete("alpha").ok());
  EXPECT_TRUE(db->Get("alpha", &v).IsNotFound());
  ASSERT_TRUE(db->Get("beta", &v).ok());
}

TEST(KVStoreTest, EmptyKeyRejected) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv2");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store.value()->Put("", "x").IsInvalidArgument());
}

TEST(KVStoreTest, OverwriteReturnsLatest) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv3");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Put("k", "v" + std::to_string(i)).ok());
  }
  std::string v;
  ASSERT_TRUE(db->Get("k", &v).ok());
  EXPECT_EQ(v, "v9");
}

TEST(KVStoreTest, FlushMovesDataToL0AndGetStillWorks) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv4");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), "v" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(db->l0_file_count(), 1u);
  std::string v;
  ASSERT_TRUE(db->Get("key42", &v).ok());
  EXPECT_EQ(v, "v42");
}

TEST(KVStoreTest, AutomaticFlushAndCompaction) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv5");
  opts.memtable_max_bytes = 2048;  // tiny: force many flushes
  opts.l0_compaction_trigger = 3;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        db->Put("key" + std::to_string(i % 500), std::string(32, 'x')).ok());
  }
  auto st = db->stats();
  EXPECT_GT(st.flushes, 0u);
  EXPECT_GT(st.compactions, 0u);
  // All 500 distinct keys still readable.
  std::string v;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &v).ok()) << i;
  }
}

TEST(KVStoreTest, DeleteSurvivesFlushAndCompaction) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv6");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  ASSERT_TRUE(db->Put("doomed", "v").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Delete("doomed").ok());
  ASSERT_TRUE(db->Flush().ok());
  std::string v;
  EXPECT_TRUE(db->Get("doomed", &v).IsNotFound());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_TRUE(db->Get("doomed", &v).IsNotFound());
  EXPECT_EQ(db->l0_file_count(), 0u);
}

TEST(KVStoreTest, RecoveryFromWal) {
  std::string dir = TempDir("kv7");
  {
    KVStoreOptions opts;
    opts.dir = dir;
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put("persist", "me").ok());
    // No flush: data only in WAL + memtable at "crash".
  }
  KVStoreOptions opts;
  opts.dir = dir;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  std::string v;
  ASSERT_TRUE(store.value()->Get("persist", &v).ok());
  EXPECT_EQ(v, "me");
}

TEST(KVStoreTest, RecoveryFromSSTablesAndWal) {
  std::string dir = TempDir("kv8");
  {
    KVStoreOptions opts;
    opts.dir = dir;
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    KVStore* db = store.value().get();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put("flushed" + std::to_string(i), "x").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->Put("inwal", "y").ok());
  }
  KVStoreOptions opts;
  opts.dir = dir;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  std::string v;
  ASSERT_TRUE(store.value()->Get("flushed25", &v).ok());
  ASSERT_TRUE(store.value()->Get("inwal", &v).ok());
  EXPECT_EQ(v, "y");
}

TEST(KVStoreTest, SequenceMonotoneAcrossRecovery) {
  std::string dir = TempDir("kv9");
  SequenceNumber before;
  {
    KVStoreOptions opts;
    opts.dir = dir;
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put("a", "1").ok());
    ASSERT_TRUE(store.value()->Put("b", "2").ok());
    before = store.value()->last_sequence();
  }
  KVStoreOptions opts;
  opts.dir = dir;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Put("c", "3").ok());
  EXPECT_GT(store.value()->last_sequence(), before);
}

TEST(KVStoreTest, IteratorMergedViewSortedAndDeduped) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv10");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  ASSERT_TRUE(db->Put("b", "old").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Put("b", "new").ok());
  ASSERT_TRUE(db->Put("c", "3").ok());
  ASSERT_TRUE(db->Delete("c").ok());

  auto it = db->NewIterator();
  std::vector<std::pair<std::string, std::string>> got;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    got.emplace_back(it.key(), it.value());
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(got[1], (std::pair<std::string, std::string>{"b", "new"}));
}

TEST(KVStoreTest, IteratorSeek) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv11");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  for (char c = 'a'; c <= 'e'; ++c) {
    ASSERT_TRUE(db->Put(std::string(1, c), "v").ok());
  }
  auto it = db->NewIterator();
  it.Seek("c");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "c");
  it.Seek("cc");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek("z");
  EXPECT_FALSE(it.Valid());
}

TEST(KVStoreTest, LargeWorkloadRandomizedMatchesReference) {
  KVStoreOptions opts;
  opts.dir = TempDir("kv12");
  opts.memtable_max_bytes = 4096;
  opts.l0_compaction_trigger = 3;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  std::map<std::string, std::string> reference;
  Rng rng(99);
  for (int op = 0; op < 3000; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(200));
    if (rng.Bernoulli(0.2)) {
      reference.erase(key);
      ASSERT_TRUE(db->Delete(key).ok());
    } else {
      std::string value = "v" + std::to_string(op);
      reference[key] = value;
      ASSERT_TRUE(db->Put(key, value).ok());
    }
  }
  for (const auto& [k, v] : reference) {
    std::string got;
    ASSERT_TRUE(db->Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  // Scan must match reference exactly.
  auto it = db->NewIterator();
  auto rit = reference.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++rit) {
    ASSERT_NE(rit, reference.end());
    EXPECT_EQ(it.key(), rit->first);
    EXPECT_EQ(it.value(), rit->second);
  }
  EXPECT_EQ(rit, reference.end());
}

// ------------------------------------------------------------ ObjectStore

TEST(ObjectStoreTest, PutGetDeleteHead) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("scene/room1.pc", "pointclouddata", "model/pc").ok());
  std::string data;
  ASSERT_TRUE(store.Get("scene/room1.pc", &data).ok());
  EXPECT_EQ(data, "pointclouddata");

  ObjectInfo info;
  ASSERT_TRUE(store.Head("scene/room1.pc", &info).ok());
  EXPECT_EQ(info.size, data.size());
  EXPECT_EQ(info.content_type, "model/pc");
  EXPECT_EQ(info.version, 1u);

  ASSERT_TRUE(store.Delete("scene/room1.pc").ok());
  EXPECT_TRUE(store.Get("scene/room1.pc", &data).IsNotFound());
}

TEST(ObjectStoreTest, VersionBumpsOnReplace) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("obj", "v1").ok());
  ASSERT_TRUE(store.Put("obj", "v2-longer").ok());
  ObjectInfo info;
  ASSERT_TRUE(store.Head("obj", &info).ok());
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(store.total_bytes(), 9u);
}

TEST(ObjectStoreTest, RangeReads) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("blob", "0123456789").ok());
  std::string part;
  ASSERT_TRUE(store.GetRange("blob", 2, 3, &part).ok());
  EXPECT_EQ(part, "234");
  ASSERT_TRUE(store.GetRange("blob", 8, 100, &part).ok());
  EXPECT_EQ(part, "89");
  EXPECT_TRUE(store.GetRange("blob", 11, 1, &part).code() ==
              StatusCode::kOutOfRange);
}

TEST(ObjectStoreTest, ListByPrefix) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("a/1", "x").ok());
  ASSERT_TRUE(store.Put("a/2", "x").ok());
  ASSERT_TRUE(store.Put("b/1", "x").ok());
  auto listed = store.List("a/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].name, "a/1");
  EXPECT_EQ(listed[1].name, "a/2");
  EXPECT_EQ(store.List().size(), 3u);
}

TEST(ObjectStoreTest, EmptyNameRejected) {
  ObjectStore store;
  EXPECT_TRUE(store.Put("", "x").IsInvalidArgument());
}

// ------------------------------------------------------------- BlockStore

TEST(BlockStoreTest, AllocateWriteReadFree) {
  BlockStore store(8, 64);
  auto block = store.Allocate();
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(store.Write(block.value(), "hello").ok());
  std::string data;
  ASSERT_TRUE(store.Read(block.value(), &data).ok());
  EXPECT_EQ(data.size(), 64u);  // zero-padded to block size
  EXPECT_EQ(data.substr(0, 5), "hello");
  ASSERT_TRUE(store.Free(block.value()).ok());
  EXPECT_TRUE(store.Read(block.value(), &data).IsInvalidArgument());
}

TEST(BlockStoreTest, ExhaustionAndReuse) {
  BlockStore store(2, 16);
  auto b1 = store.Allocate();
  auto b2 = store.Allocate();
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE(store.Allocate().status().IsResourceExhausted());
  ASSERT_TRUE(store.Free(b1.value()).ok());
  auto b3 = store.Allocate();
  ASSERT_TRUE(b3.ok());
  EXPECT_EQ(b3.value(), b1.value());
}

TEST(BlockStoreTest, OversizeWriteRejected) {
  BlockStore store(1, 8);
  auto b = store.Allocate();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(store.Write(b.value(), "123456789").IsInvalidArgument());
}

TEST(BlockStoreTest, UnwrittenBlockReadsAsZeros) {
  BlockStore store(1, 4);
  auto b = store.Allocate();
  ASSERT_TRUE(b.ok());
  std::string data;
  ASSERT_TRUE(store.Read(b.value(), &data).ok());
  EXPECT_EQ(data, std::string(4, '\0'));
}

TEST(BlockStoreTest, DoubleFreeRejected) {
  BlockStore store(2, 8);
  auto b = store.Allocate();
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(store.Free(b.value()).ok());
  EXPECT_TRUE(store.Free(b.value()).IsInvalidArgument());
  EXPECT_TRUE(store.Free(99).IsInvalidArgument());
}

// --- BlockCache --------------------------------------------------------

BlockCache::ChunkPtr Chunk(size_t bytes, char fill) {
  return std::make_shared<const std::string>(bytes, fill);
}

TEST(BlockCacheTest, LookupHitAndMissAccounting) {
  BlockCache cache(1 << 20, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.Insert(1, 0, Chunk(100, 'a'));
  auto got = cache.Lookup(1, 0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->size(), 100u);
  EXPECT_EQ((*got)[0], 'a');
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Same chunk index, different table: a distinct key.
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard with the 64 KB minimum shard budget; 20 KB chunks mean
  // at most three resident.
  BlockCache cache(1, /*num_shards=*/1);
  cache.Insert(1, 0, Chunk(20 << 10, 'a'));
  cache.Insert(1, 1, Chunk(20 << 10, 'b'));
  cache.Insert(1, 2, Chunk(20 << 10, 'c'));
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch chunk 0 so chunk 1 becomes the eviction victim.
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 3, Chunk(20 << 10, 'd'));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);   // evicted (LRU)
  EXPECT_NE(cache.Lookup(1, 0), nullptr);   // survived (recently used)
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
  EXPECT_NE(cache.Lookup(1, 3), nullptr);
  EXPECT_LE(cache.size_bytes(), 64u << 10);
}

TEST(BlockCacheTest, OversizedChunkBypassesCache) {
  BlockCache cache(1, /*num_shards=*/1);  // 64 KB shard minimum
  cache.Insert(1, 0, Chunk(20 << 10, 'a'));
  // Larger than the whole shard budget: passed through, not cached,
  // and resident entries stay put.
  cache.Insert(1, 1, Chunk(128 << 10, 'x'));
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
}

TEST(BlockCacheTest, InsertReplacesExistingKey) {
  BlockCache cache(1 << 20, /*num_shards=*/1);
  cache.Insert(7, 3, Chunk(100, 'o'));
  cache.Insert(7, 3, Chunk(200, 'n'));
  auto got = cache.Lookup(7, 3);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->size(), 200u);
  EXPECT_EQ((*got)[0], 'n');
  EXPECT_EQ(cache.size_bytes(), 200u);
}

TEST(BlockCacheTest, ShardsSplitCapacityAndKeys) {
  BlockCache cache(4 << 20, /*num_shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4u);
  // Many tables land across shards; total stays within capacity and
  // every entry remains addressable.
  for (uint64_t t = 1; t <= 64; ++t) {
    cache.Insert(t, 0, Chunk(4 << 10, char('a' + t % 26)));
  }
  EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
  size_t found = 0;
  for (uint64_t t = 1; t <= 64; ++t) {
    if (cache.Lookup(t, 0) != nullptr) ++found;
  }
  EXPECT_EQ(found, 64u);  // well under capacity: nothing evicted
}

TEST(BlockCacheTest, EraseTableDropsAllItsChunks) {
  BlockCache cache(1 << 20, /*num_shards=*/4);
  for (uint64_t c = 0; c < 8; ++c) {
    cache.Insert(1, c, Chunk(1 << 10, 'a'));
    cache.Insert(2, c, Chunk(1 << 10, 'b'));
  }
  cache.EraseTable(1);
  for (uint64_t c = 0; c < 8; ++c) {
    EXPECT_EQ(cache.Lookup(1, c), nullptr);
    EXPECT_NE(cache.Lookup(2, c), nullptr);
  }
  EXPECT_EQ(cache.size_bytes(), 8u << 10);
}

TEST(BlockCacheTest, KvStoreReadsPopulateAndHitCache) {
  KVStoreOptions opts;
  opts.dir = TempDir("cache_kv");
  opts.block_cache_bytes = 1 << 20;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());

  std::string v;
  ASSERT_TRUE(db->Get("key50", &v).ok());
  auto after_first = db->stats();
  EXPECT_GT(after_first.cache_misses, 0u);  // cold read filled the cache
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Get("key50", &v).ok());
  }
  auto after_hot = db->stats();
  EXPECT_GT(after_hot.cache_hits, after_first.cache_hits);
  EXPECT_EQ(after_hot.cache_misses, after_first.cache_misses);
}

}  // namespace
}  // namespace deluge::storage
