#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "query/expression.h"
#include "query/moving_query.h"
#include "query/optimizer.h"

namespace deluge::query {
namespace {

// ------------------------------------------------------------ Conjunction

PredicateExpr Cheap(bool result) {
  return PredicateExpr("cheap", [result](const stream::Tuple&) {
    return result;
  }, 1.0, result ? 1.0 : 0.0);
}

TEST(ConjunctionTest, ShortCircuits) {
  int expensive_calls = 0;
  std::vector<PredicateExpr> preds;
  preds.push_back(Cheap(false));
  preds.emplace_back("expensive",
                     [&](const stream::Tuple&) {
                       ++expensive_calls;
                       return true;
                     },
                     1000.0, 0.9);
  Conjunction conj(std::move(preds));
  stream::Tuple t;
  EXPECT_FALSE(conj.Evaluate(t));
  EXPECT_EQ(expensive_calls, 0);
  EXPECT_DOUBLE_EQ(conj.total_cost_spent(), 1.0);
}

TEST(ConjunctionTest, OptimizeOrderPutsSelectiveCheapFirst) {
  // Expensive-but-selective vs cheap-but-permissive: rank ordering puts
  // the cheap filter first when its rank is lower.
  std::vector<PredicateExpr> preds;
  preds.emplace_back("expensive-udf", [](const stream::Tuple&) { return true; },
                     /*cost=*/100.0, /*selectivity=*/0.5);
  preds.emplace_back("cheap-filter", [](const stream::Tuple&) { return true; },
                     /*cost=*/1.0, /*selectivity=*/0.1);
  Conjunction conj(std::move(preds));
  double before = conj.ExpectedCost();  // 100 + 0.5*1 = 100.5
  conj.OptimizeOrder();
  double after = conj.ExpectedCost();   // 1 + 0.1*100 = 11
  EXPECT_LT(after, before);
  EXPECT_EQ(conj.predicates()[0].name(), "cheap-filter");
}

TEST(ConjunctionTest, ExpectedCostFormula) {
  std::vector<PredicateExpr> preds;
  preds.emplace_back("a", [](const stream::Tuple&) { return true; }, 2.0, 0.5);
  preds.emplace_back("b", [](const stream::Tuple&) { return true; }, 4.0, 0.25);
  Conjunction conj(std::move(preds));
  EXPECT_DOUBLE_EQ(conj.ExpectedCost(), 2.0 + 0.5 * 4.0);
}

TEST(ConjunctionTest, OptimalOrderIsRankOrderProperty) {
  // Property: over random predicate sets, the rank ordering achieves the
  // minimum expected cost among a sample of random permutations.
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PredicateExpr> preds;
    for (int i = 0; i < 5; ++i) {
      preds.emplace_back("p" + std::to_string(i),
                         [](const stream::Tuple&) { return true; },
                         rng.UniformDouble(1, 100),
                         rng.UniformDouble(0.05, 0.95));
    }
    Conjunction optimal(preds);
    optimal.OptimizeOrder();
    double best = optimal.ExpectedCost();
    for (int perm = 0; perm < 30; ++perm) {
      auto shuffled = preds;
      rng.Shuffle(shuffled);
      Conjunction candidate(std::move(shuffled));
      EXPECT_GE(candidate.ExpectedCost() + 1e-9, best);
    }
  }
}

// ----------------------------------------------------- DevicePlanOptimizer

std::vector<PlanStage> SensorPipeline() {
  // sensor-read (device pinned) -> clean -> aggregate -> model-join
  // (cloud pinned).
  return {
      {"sensor-read", 1.0, 100000, /*device_only=*/true, false},
      {"clean", 5.0, 20000, false, false},
      {"aggregate", 10.0, 500, false, false},
      {"model-join", 50.0, 400, false, /*cloud_only=*/true},
  };
}

TEST(DeviceOptimizerTest, RespectsPins) {
  DeviceCloudModel model;
  DevicePlanOptimizer opt(model);
  auto plan = opt.Optimize(SensorPipeline());
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.placements.front(), Placement::kDevice);
  EXPECT_EQ(plan.placements.back(), Placement::kCloud);
}

TEST(DeviceOptimizerTest, SlowUplinkPushesAggregationToDevice) {
  DeviceCloudModel slow_uplink;
  slow_uplink.uplink_bytes_per_ms = 10.0;  // terrible link
  DevicePlanOptimizer opt(slow_uplink);
  auto plan = opt.Optimize(SensorPipeline());
  ASSERT_TRUE(plan.feasible);
  // Aggregating on-device shrinks 100 KB to 500 B before the uplink.
  EXPECT_EQ(plan.placements[2], Placement::kDevice);
  EXPECT_LE(plan.bytes_uplinked, 500u);
}

TEST(DeviceOptimizerTest, FastUplinkAndWeakDeviceOffloadEarly) {
  DeviceCloudModel weak_device;
  weak_device.device_speed = 0.01;           // near-useless CPU
  weak_device.uplink_bytes_per_ms = 1e9;     // free uplink
  DevicePlanOptimizer opt(weak_device);
  auto plan = opt.Optimize(SensorPipeline());
  ASSERT_TRUE(plan.feasible);
  // Only the pinned sensor-read stays on the device.
  EXPECT_EQ(plan.placements[1], Placement::kCloud);
  EXPECT_EQ(plan.placements[2], Placement::kCloud);
}

TEST(DeviceOptimizerTest, WorkBudgetForcesOffload) {
  DeviceCloudModel model;
  model.uplink_bytes_per_ms = 1.0;  // uplink strongly favours device...
  model.device_work_budget = 2.0;   // ...but the battery forbids it
  DevicePlanOptimizer opt(model);
  auto plan = opt.Optimize(SensorPipeline());
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.device_work, 2.0);
}

TEST(DeviceOptimizerTest, ContradictoryPinsInfeasible) {
  std::vector<PlanStage> stages = {
      {"cloud-first", 1.0, 100, false, /*cloud_only=*/true},
      {"device-after", 1.0, 100, /*device_only=*/true, false},
  };
  DevicePlanOptimizer opt(DeviceCloudModel{});
  EXPECT_FALSE(opt.Optimize(stages).feasible);
}

TEST(DeviceOptimizerTest, EvaluateSplitCountsUplinkBytes) {
  DeviceCloudModel model;
  DevicePlanOptimizer opt(model);
  auto stages = SensorPipeline();
  auto at0 = opt.EvaluateSplit(stages, 0);
  EXPECT_EQ(at0.bytes_uplinked, model.source_bytes);
  auto at2 = opt.EvaluateSplit(stages, 2);
  EXPECT_EQ(at2.bytes_uplinked, 20000u);
}

// ------------------------------------------------------------ ChooseVariant

TEST(ChooseVariantTest, PhysicalConsumersGetExactAndBoost) {
  ExecutionClass physical{true, 10 * kMicrosPerMilli};
  auto choice = ChooseVariant(physical, 100 * kMicrosPerMilli);
  EXPECT_FALSE(choice.use_approximate);
  EXPECT_GT(choice.priority_boost, 0.0);
}

TEST(ChooseVariantTest, VirtualConsumersDegradeUnderDeadline) {
  ExecutionClass virt{false, 10 * kMicrosPerMilli};
  EXPECT_TRUE(ChooseVariant(virt, 100 * kMicrosPerMilli).use_approximate);
  EXPECT_FALSE(ChooseVariant(virt, 5 * kMicrosPerMilli).use_approximate);
}

// --------------------------------------------------- ContinuousRangeQuery

const geo::AABB kWorld({0, 0, 0}, {2000, 2000, 100});

class MovingQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_ = std::make_unique<index::MovingObjectIndex>(kWorld, 50.0, 10.0);
    Rng rng(23);
    for (index::EntityId id = 0; id < 400; ++id) {
      geo::MotionState s;
      s.position = {rng.UniformDouble(200, 1800), rng.UniformDouble(200, 1800),
                    50};
      s.velocity = {rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5), 0};
      s.t = 0;
      index_->Upsert(id, s);
    }
  }

  std::unique_ptr<index::MovingObjectIndex> index_;
};

TEST_F(MovingQueryTest, StrategiesAgreeOnResults) {
  ContinuousRangeQuery reeval(index_.get(), 100.0,
                              MovingQueryStrategy::kReevaluate);
  ContinuousRangeQuery incr(index_.get(), 100.0,
                            MovingQueryStrategy::kIncremental, 60.0);
  geo::MotionState focus{{1000, 1000, 50}, {3, 0, 0}, 0};
  reeval.UpdateFocus(focus);
  incr.UpdateFocus(focus);
  for (Micros t = 0; t <= 10 * kMicrosPerSecond; t += kMicrosPerSecond) {
    auto a = reeval.Evaluate(t);
    auto b = incr.Evaluate(t);
    std::set<index::EntityId> sa, sb;
    for (const auto& h : a) sa.insert(h.id);
    for (const auto& h : b) sb.insert(h.id);
    EXPECT_EQ(sa, sb) << "t=" << t;
  }
}

TEST_F(MovingQueryTest, IncrementalUsesFarFewerIndexQueries) {
  ContinuousRangeQuery reeval(index_.get(), 100.0,
                              MovingQueryStrategy::kReevaluate);
  ContinuousRangeQuery incr(index_.get(), 100.0,
                            MovingQueryStrategy::kIncremental, 80.0);
  geo::MotionState focus{{1000, 1000, 50}, {1, 0, 0}, 0};
  reeval.UpdateFocus(focus);
  incr.UpdateFocus(focus);
  for (Micros t = 0; t <= 20 * kMicrosPerSecond; t += 200 * kMicrosPerMilli) {
    reeval.Evaluate(t);
    incr.Evaluate(t);
  }
  EXPECT_EQ(reeval.index_queries(), reeval.evaluations());
  EXPECT_LT(incr.index_queries(), reeval.index_queries() / 4);
}

TEST_F(MovingQueryTest, FastFocusInvalidatesCacheMoreOften) {
  ContinuousRangeQuery slow(index_.get(), 100.0,
                            MovingQueryStrategy::kIncremental, 50.0);
  ContinuousRangeQuery fast(index_.get(), 100.0,
                            MovingQueryStrategy::kIncremental, 50.0);
  slow.UpdateFocus({{1000, 1000, 50}, {0.5, 0, 0}, 0});
  fast.UpdateFocus({{1000, 1000, 50}, {9, 0, 0}, 0});
  for (Micros t = 0; t <= 30 * kMicrosPerSecond; t += kMicrosPerSecond) {
    slow.Evaluate(t);
    fast.Evaluate(t);
  }
  EXPECT_LE(slow.index_queries(), fast.index_queries());
}

TEST_F(MovingQueryTest, RemovedObjectDisappearsFromIncrementalResults) {
  ContinuousRangeQuery incr(index_.get(), 200.0,
                            MovingQueryStrategy::kIncremental, 100.0);
  incr.UpdateFocus({{1000, 1000, 50}, {0, 0, 0}, 0});
  auto before = incr.Evaluate(0);
  ASSERT_FALSE(before.empty());
  index::EntityId victim = before[0].id;
  index_->Remove(victim);
  auto after = incr.Evaluate(1);  // cache still valid; must skip removed
  for (const auto& h : after) EXPECT_NE(h.id, victim);
}

TEST_F(MovingQueryTest, KnnFollowsTheFocus) {
  ContinuousKnnQuery knn(index_.get(), 5);
  knn.UpdateFocus({{300, 300, 50}, {50, 0, 0}, 0});  // clamped to 10 m/s
  auto early = knn.Evaluate(0);
  auto late = knn.Evaluate(100 * kMicrosPerSecond);
  ASSERT_EQ(early.size(), 5u);
  ASSERT_EQ(late.size(), 5u);
  // After 100 s at 10 m/s the focus moved ~1000 m; neighbour sets differ.
  std::set<index::EntityId> se, sl;
  for (const auto& h : early) se.insert(h.id);
  for (const auto& h : late) sl.insert(h.id);
  EXPECT_NE(se, sl);
}

}  // namespace
}  // namespace deluge::query
