#include <gtest/gtest.h>

#include <string>

#include "runtime/buffer_pool.h"
#include "runtime/elastic_executor.h"
#include "runtime/serverless.h"

namespace deluge::runtime {
namespace {

using stream::Space;

// -------------------------------------------------------------- BufferPool

std::string SizedPage(size_t n) { return std::string(n, 'p'); }

TEST(BufferPoolTest, HitAfterMiss) {
  int fetches = 0;
  BufferPool pool(1024, [&](const std::string&) {
    ++fetches;
    return SizedPage(100);
  });
  std::string data;
  ASSERT_TRUE(pool.Get("a", Space::kPhysical, &data).ok());
  ASSERT_TRUE(pool.Get("a", Space::kPhysical, &data).ok());
  EXPECT_EQ(fetches, 1);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(pool.stats().HitRatio(), 0.5);
}

TEST(BufferPoolTest, LruEvictionWithinClass) {
  BufferPool pool(300, [](const std::string&) { return SizedPage(100); });
  std::string data;
  ASSERT_TRUE(pool.Get("a", Space::kVirtual, &data).ok());
  ASSERT_TRUE(pool.Get("b", Space::kVirtual, &data).ok());
  ASSERT_TRUE(pool.Get("c", Space::kVirtual, &data).ok());
  ASSERT_TRUE(pool.Get("a", Space::kVirtual, &data).ok());  // refresh a
  ASSERT_TRUE(pool.Get("d", Space::kVirtual, &data).ok());  // evicts b (LRU)
  EXPECT_TRUE(pool.Contains("a"));
  EXPECT_FALSE(pool.Contains("b"));
  EXPECT_TRUE(pool.Contains("c"));
  EXPECT_TRUE(pool.Contains("d"));
}

TEST(BufferPoolTest, VirtualPagesEvictedBeforePhysical) {
  BufferPool pool(300, [](const std::string&) { return SizedPage(100); },
                  /*virtual_share=*/0.0);
  std::string data;
  ASSERT_TRUE(pool.Get("phys1", Space::kPhysical, &data).ok());
  ASSERT_TRUE(pool.Get("virt1", Space::kVirtual, &data).ok());
  ASSERT_TRUE(pool.Get("phys2", Space::kPhysical, &data).ok());
  // Pool full; a new physical page must evict the virtual one.
  ASSERT_TRUE(pool.Get("phys3", Space::kPhysical, &data).ok());
  EXPECT_FALSE(pool.Contains("virt1"));
  EXPECT_TRUE(pool.Contains("phys1"));
  EXPECT_TRUE(pool.Contains("phys2"));
}

TEST(BufferPoolTest, ProtectedVirtualShareSurvivesPhysicalPressure) {
  // Capacity 400, half protected for virtual.
  BufferPool pool(400, [](const std::string&) { return SizedPage(100); },
                  /*virtual_share=*/0.5);
  std::string data;
  ASSERT_TRUE(pool.Get("v1", Space::kVirtual, &data).ok());
  ASSERT_TRUE(pool.Get("v2", Space::kVirtual, &data).ok());
  // Physical flood: may evict virtual only down to 200 bytes (2 pages).
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        pool.Get("p" + std::to_string(i), Space::kPhysical, &data).ok());
  }
  EXPECT_TRUE(pool.Contains("v1") || pool.Contains("v2"));
  int virtual_pages = int(pool.Contains("v1")) + int(pool.Contains("v2"));
  EXPECT_EQ(virtual_pages, 2);  // exactly at the protected share
}

TEST(BufferPoolTest, VirtualInsertsDoNotEvictPhysical) {
  BufferPool pool(300, [](const std::string&) { return SizedPage(100); });
  std::string data;
  ASSERT_TRUE(pool.Get("p1", Space::kPhysical, &data).ok());
  ASSERT_TRUE(pool.Get("p2", Space::kPhysical, &data).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        pool.Get("v" + std::to_string(i), Space::kVirtual, &data).ok());
  }
  EXPECT_TRUE(pool.Contains("p1"));
  EXPECT_TRUE(pool.Contains("p2"));
}

TEST(BufferPoolTest, PutAndInvalidate) {
  BufferPool pool(1024, nullptr);
  pool.Put("k", Space::kPhysical, "hello");
  std::string data;
  ASSERT_TRUE(pool.Get("k", Space::kPhysical, &data).ok());
  EXPECT_EQ(data, "hello");
  pool.Invalidate("k");
  EXPECT_FALSE(pool.Contains("k"));
  EXPECT_TRUE(pool.Get("k", Space::kPhysical, &data).IsNotFound());
}

TEST(BufferPoolTest, OversizePageNotCached) {
  BufferPool pool(50, [](const std::string&) { return SizedPage(100); });
  std::string data;
  ASSERT_TRUE(pool.Get("big", Space::kPhysical, &data).ok());
  EXPECT_EQ(data.size(), 100u);        // data still served
  EXPECT_FALSE(pool.Contains("big"));  // but not cached
  EXPECT_EQ(pool.used_bytes(), 0u);
}

// ---------------------------------------------------- ElasticExecutorPool

TEST(ElasticExecutorTest, CompletesAllTasks) {
  net::Simulator sim;
  ElasticOptions opts;
  ElasticExecutorPool pool(&sim, opts);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    pool.Submit(10 * kMicrosPerMilli, [&done] { ++done; });
  }
  sim.Run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(pool.stats().completed, 50u);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ElasticExecutorTest, ScalesOutUnderLoad) {
  net::Simulator sim;
  ElasticOptions opts;
  opts.min_executors = 1;
  opts.max_executors = 16;
  ElasticExecutorPool pool(&sim, opts);
  for (int i = 0; i < 400; ++i) pool.Submit(20 * kMicrosPerMilli);
  sim.Run();
  EXPECT_GT(pool.stats().scale_outs, 0u);
  EXPECT_GT(pool.executors(), 1u);
}

TEST(ElasticExecutorTest, ScalesBackInWhenIdle) {
  net::Simulator sim;
  ElasticOptions opts;
  opts.min_executors = 1;
  opts.max_executors = 8;
  opts.evaluate_every = 10 * kMicrosPerMilli;
  ElasticExecutorPool pool(&sim, opts);
  for (int i = 0; i < 200; ++i) pool.Submit(5 * kMicrosPerMilli);
  sim.Run();
  // Trickle some light work so the autoscaler keeps ticking and shrinks.
  for (int i = 0; i < 20; ++i) {
    pool.Submit(kMicrosPerMilli);
    sim.Run();
  }
  EXPECT_GT(pool.stats().scale_ins, 0u);
}

TEST(ElasticExecutorTest, MoreExecutorsCutLatencyUnderBacklog) {
  auto p99_with_max = [](size_t max_executors) {
    net::Simulator sim;
    ElasticOptions opts;
    opts.min_executors = 1;
    opts.max_executors = max_executors;
    opts.scale_out_delay = 10 * kMicrosPerMilli;
    opts.evaluate_every = 5 * kMicrosPerMilli;
    ElasticExecutorPool pool(&sim, opts);
    for (int i = 0; i < 300; ++i) pool.Submit(10 * kMicrosPerMilli);
    sim.Run();
    return pool.stats().task_latency.P99();
  };
  EXPECT_LT(p99_with_max(32), p99_with_max(1) * 0.5);
}

// ------------------------------------------------------- ServerlessRuntime

FunctionSpec Fn(const std::string& name) {
  FunctionSpec spec;
  spec.name = name;
  spec.cold_start = 200 * kMicrosPerMilli;
  spec.exec_time = 10 * kMicrosPerMilli;
  spec.memory_mb = 128;
  return spec;
}

TEST(ServerlessTest, FirstInvocationIsCold) {
  net::Simulator sim;
  ServerlessRuntime runtime(&sim, /*keep_alive=*/kMicrosPerSecond);
  runtime.Register(Fn("f"));
  runtime.Invoke("f");
  sim.RunUntil(kMicrosPerSecond * 10);
  const auto& stats = runtime.stats_for("f");
  EXPECT_EQ(stats.invocations, 1u);
  EXPECT_EQ(stats.cold_starts, 1u);
  EXPECT_GE(stats.latency.min(), 210 * kMicrosPerMilli);
}

TEST(ServerlessTest, WarmReuseAvoidsColdStart) {
  net::Simulator sim;
  ServerlessRuntime runtime(&sim, /*keep_alive=*/10 * kMicrosPerSecond);
  runtime.Register(Fn("f"));
  runtime.Invoke("f");
  sim.RunUntil(kMicrosPerSecond);  // completes; reclaim still pending
  // Second call shortly after: reuses the warm instance.
  runtime.Invoke("f");
  sim.RunUntil(2 * kMicrosPerSecond);
  const auto& stats = runtime.stats_for("f");
  EXPECT_EQ(stats.invocations, 2u);
  EXPECT_EQ(stats.cold_starts, 1u);
  EXPECT_DOUBLE_EQ(stats.ColdStartRatio(), 0.5);
}

TEST(ServerlessTest, KeepAliveExpiryForcesColdAgain) {
  net::Simulator sim;
  ServerlessRuntime runtime(&sim, /*keep_alive=*/kMicrosPerSecond);
  runtime.Register(Fn("f"));
  runtime.Invoke("f");
  sim.Run();  // completes; instance warm until +1 s
  sim.RunUntil(sim.Now() + 5 * kMicrosPerSecond);  // reclaim fires
  EXPECT_EQ(runtime.warm_instances("f"), 0u);
  runtime.Invoke("f");
  sim.Run();
  EXPECT_EQ(runtime.stats_for("f").cold_starts, 2u);
}

TEST(ServerlessTest, ZeroKeepAliveAlwaysCold) {
  net::Simulator sim;
  ServerlessRuntime runtime(&sim, /*keep_alive=*/0);
  runtime.Register(Fn("f"));
  for (int i = 0; i < 5; ++i) {
    runtime.Invoke("f");
    sim.Run();
  }
  EXPECT_EQ(runtime.stats_for("f").cold_starts, 5u);
  EXPECT_EQ(runtime.stats_for("f").idle_mb_ms, 0.0);
}

TEST(ServerlessTest, IdleCostAccruesWithKeepAlive) {
  net::Simulator sim;
  ServerlessRuntime runtime(&sim, /*keep_alive=*/5 * kMicrosPerSecond);
  runtime.Register(Fn("f"));
  runtime.Invoke("f");
  sim.Run();
  sim.RunUntil(sim.Now() + 10 * kMicrosPerSecond);
  const auto& stats = runtime.stats_for("f");
  // Instance idled ~5 s at 128 MB => ~640000 MB-ms.
  EXPECT_NEAR(stats.idle_mb_ms, 128.0 * 5000.0, 128.0 * 100.0);
  EXPECT_DOUBLE_EQ(stats.billed_mb_ms, 128.0 * 10.0);
}

TEST(ServerlessTest, UnknownFunctionDropped) {
  net::Simulator sim;
  ServerlessRuntime runtime(&sim, 0);
  runtime.Invoke("ghost");
  EXPECT_EQ(runtime.dropped(), 1u);
}

TEST(ServerlessTest, ConcurrentBurstSpawnsMultipleInstances) {
  net::Simulator sim;
  ServerlessRuntime runtime(&sim, /*keep_alive=*/10 * kMicrosPerSecond);
  runtime.Register(Fn("f"));
  // Burst of 4 with no gap: all cold (no instance is warm yet).
  for (int i = 0; i < 4; ++i) runtime.Invoke("f");
  sim.RunUntil(kMicrosPerSecond);  // all done; keep-alive still pending
  EXPECT_EQ(runtime.stats_for("f").cold_starts, 4u);
  EXPECT_EQ(runtime.warm_instances("f"), 4u);
  // Next burst of 4 reuses all warm instances.
  for (int i = 0; i < 4; ++i) runtime.Invoke("f");
  sim.RunUntil(2 * kMicrosPerSecond);
  EXPECT_EQ(runtime.stats_for("f").cold_starts, 4u);
}

}  // namespace
}  // namespace deluge::runtime
