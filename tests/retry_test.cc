// Edge-case tests for the shared retry/backoff policy and circuit
// breaker: zero-retry budgets, deadline expiry mid-backoff, jitter
// determinism under a fixed seed, and breaker state transitions.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/retry.h"

namespace deluge {
namespace {

// ------------------------------------------------------------ RetryState

TEST(RetryStateTest, ZeroRetryBudgetNeverRetries) {
  for (int budget : {0, 1}) {
    RetryPolicy policy;
    policy.max_attempts = budget;
    RetryState state(policy, /*start=*/0);
    Rng rng(7);
    EXPECT_EQ(state.NextBackoff(/*now=*/0, &rng), -1)
        << "max_attempts=" << budget;
  }
}

TEST(RetryStateTest, BudgetCountsTheInitialAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 3;  // initial try + 2 retries
  policy.jitter = RetryPolicy::Jitter::kNone;
  RetryState state(policy, 0);
  Rng rng(7);
  EXPECT_GE(state.NextBackoff(0, &rng), 0);
  EXPECT_GE(state.NextBackoff(0, &rng), 0);
  EXPECT_EQ(state.NextBackoff(0, &rng), -1);
}

TEST(RetryStateTest, PureExponentialGrowthIsCapped) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = 10 * kMicrosPerMilli;
  policy.max_backoff = 80 * kMicrosPerMilli;
  policy.multiplier = 2.0;
  policy.jitter = RetryPolicy::Jitter::kNone;
  RetryState state(policy, 0);
  Rng rng(7);
  std::vector<Micros> delays;
  for (int i = 0; i < 6; ++i) delays.push_back(state.NextBackoff(0, &rng));
  std::vector<Micros> want = {10 * kMicrosPerMilli, 20 * kMicrosPerMilli,
                              40 * kMicrosPerMilli, 80 * kMicrosPerMilli,
                              80 * kMicrosPerMilli, 80 * kMicrosPerMilli};
  EXPECT_EQ(delays, want);
}

TEST(RetryStateTest, DeadlineExpiryMidBackoffRefusesRetry) {
  RetryPolicy policy;
  policy.max_attempts = 100;  // attempts are not the limit here
  policy.initial_backoff = 10 * kMicrosPerMilli;
  policy.jitter = RetryPolicy::Jitter::kNone;
  policy.deadline = 25 * kMicrosPerMilli;
  RetryState state(policy, /*start=*/0);
  Rng rng(7);
  // First backoff (10 ms) lands at 10 ms: allowed.
  EXPECT_EQ(state.NextBackoff(0, &rng), 10 * kMicrosPerMilli);
  // Second backoff (20 ms) from now=10 ms would land at 30 ms, past the
  // 25 ms deadline: refused even though plenty of attempts remain.
  EXPECT_EQ(state.NextBackoff(10 * kMicrosPerMilli, &rng), -1);
}

TEST(RetryStateTest, CanRetryTracksDeadlineAndBudget) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.deadline = kMicrosPerSecond;
  RetryState state(policy, /*start=*/0);
  EXPECT_TRUE(state.CanRetry(0));
  EXPECT_FALSE(state.CanRetry(kMicrosPerSecond + 1));  // past deadline
  Rng rng(7);
  (void)state.NextBackoff(0, &rng);
  EXPECT_FALSE(state.CanRetry(0));  // budget consumed
}

TEST(RetryStateTest, JitterIsDeterministicUnderFixedSeed) {
  for (auto jitter : {RetryPolicy::Jitter::kFull,
                      RetryPolicy::Jitter::kDecorrelated}) {
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.jitter = jitter;
    std::vector<Micros> a, b;
    {
      RetryState state(policy, 0);
      Rng rng(0xFEED);
      for (int i = 0; i < 7; ++i) a.push_back(state.NextBackoff(0, &rng));
    }
    {
      RetryState state(policy, 0);
      Rng rng(0xFEED);
      for (int i = 0; i < 7; ++i) b.push_back(state.NextBackoff(0, &rng));
    }
    EXPECT_EQ(a, b) << "jitter mode " << int(jitter);
  }
}

TEST(RetryStateTest, JitteredDelaysStayInsideTheEnvelope) {
  RetryPolicy policy;
  policy.max_attempts = 32;
  policy.initial_backoff = 10 * kMicrosPerMilli;
  policy.max_backoff = 500 * kMicrosPerMilli;
  policy.jitter = RetryPolicy::Jitter::kDecorrelated;
  RetryState state(policy, 0);
  Rng rng(42);
  for (int i = 0; i < 31; ++i) {
    Micros d = state.NextBackoff(0, &rng);
    ASSERT_GE(d, policy.initial_backoff);
    ASSERT_LE(d, policy.max_backoff);
  }
}

// --------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  CircuitBreaker breaker(opts);
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0);
  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.Allow(1));  // fast-fail while open
  EXPECT_EQ(breaker.fast_fails(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 2;
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(0);
  breaker.RecordSuccess();  // streak broken
  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeSuccessCloses) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_duration = kMicrosPerSecond;
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(0);
  EXPECT_FALSE(breaker.Allow(kMicrosPerSecond - 1));  // still cooling down
  EXPECT_TRUE(breaker.Allow(kMicrosPerSecond));       // admitted as probe
  EXPECT_EQ(breaker.state(kMicrosPerSecond), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(kMicrosPerSecond));  // one probe at a time
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(kMicrosPerSecond), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(kMicrosPerSecond));
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_duration = kMicrosPerSecond;
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(0);
  ASSERT_TRUE(breaker.Allow(kMicrosPerSecond));  // probe
  breaker.RecordFailure(kMicrosPerSecond);
  EXPECT_EQ(breaker.state(kMicrosPerSecond), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  // The cooldown restarts from the probe failure.
  EXPECT_FALSE(breaker.Allow(2 * kMicrosPerSecond - 1));
  EXPECT_TRUE(breaker.Allow(2 * kMicrosPerSecond));
}

// Run under TSan: threads racing Allow() at the cooldown edge must admit
// exactly one half-open probe (the check-then-transition used to be two
// unsynchronized steps, letting several callers probe at once).
TEST(CircuitBreakerTest, ConcurrentCooldownAdmitsExactlyOneProbe) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_duration = kMicrosPerSecond;
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(0);
  ASSERT_EQ(breaker.state(0), CircuitBreaker::State::kOpen);

  constexpr int kThreads = 8;
  std::atomic<int> admitted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      if (breaker.Allow(kMicrosPerSecond)) {
        admitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 1);
  EXPECT_EQ(breaker.state(kMicrosPerSecond), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.fast_fails(), static_cast<uint64_t>(kThreads - 1));
}

// Also for TSan: concurrent outcome recording against concurrent
// admission checks and stat reads must be race-free.
TEST(CircuitBreakerTest, ConcurrentRecordingIsRaceFree) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.open_duration = 10;
  CircuitBreaker breaker(opts);

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const Micros now = static_cast<Micros>(op);
        if (breaker.Allow(now)) {
          if ((op + i) % 3 == 0) {
            breaker.RecordFailure(now);
          } else {
            breaker.RecordSuccess();
          }
        }
        (void)breaker.state(now);
        (void)breaker.trips();
        (void)breaker.fast_fails();
      }
    });
  }
  for (auto& t : threads) t.join();
  // No structural invariant to pin down beyond "no data race": the
  // interleaving is nondeterministic, but the counters must be sane.
  EXPECT_LE(breaker.trips(), static_cast<uint64_t>(kThreads * kOpsPerThread));
}

}  // namespace
}  // namespace deluge
