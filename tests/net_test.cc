#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.h"
#include "net/network.h"
#include "net/simulator.h"
#include "net/topology.h"

namespace deluge::net {
namespace {

// ------------------------------------------------------------- Simulator

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(300, [&] { order.push_back(3); });
  sim.At(100, [&] { order.push_back(1); });
  sim.At(200, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
}

TEST(SimulatorTest, FifoForEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.At(10, [&order, i] { order.push_back(i); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] {
    ++fired;
    sim.After(5, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 15);
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.At(100, [] {});
  sim.Run();
  bool ran = false;
  sim.At(50, [&] { ran = true; });  // in the past
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.At(10, [&] { ++count; });
  sim.At(20, [&] { ++count; });
  sim.At(30, [&] { ++count; });
  EXPECT_EQ(sim.RunUntil(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  EXPECT_TRUE(sim.empty());
}

// --------------------------------------------------------------- Network

class NetworkTest : public ::testing::Test {
 protected:
  Simulator sim_;
  Network net_{&sim_};
  std::vector<Message> received_;

  NodeId AddRecorder() {
    return net_.AddNode([this](const Message& m) { received_.push_back(m); });
  }
};

TEST_F(NetworkTest, DeliversWithLatency) {
  NodeId a = AddRecorder();
  NodeId b = AddRecorder();
  LinkOptions link;
  link.latency = 5 * kMicrosPerMilli;
  link.bandwidth_bytes_per_sec = 0;  // ignore serialization
  net_.SetLink(a, b, link);

  ASSERT_TRUE(net_.Send({a, b, 1, "hi", 0, 0}).ok());
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].payload, "hi");
  EXPECT_EQ(sim_.Now(), 5 * kMicrosPerMilli);
}

TEST_F(NetworkTest, UnknownNodeRejected) {
  NodeId a = AddRecorder();
  Status s = net_.Send({a, 99, 0, "", 0, 0});
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(NetworkTest, BandwidthAddsSerializationDelay) {
  NodeId a = AddRecorder();
  NodeId b = AddRecorder();
  LinkOptions link;
  link.latency = 0;
  link.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  net_.SetLink(a, b, link);

  Message m{a, b, 0, "", 1'000'000, 0};  // 1 MB => 1 s
  ASSERT_TRUE(net_.Send(m).ok());
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(sim_.Now(), kMicrosPerSecond);
}

TEST_F(NetworkTest, MessagesQueueBehindEachOther) {
  NodeId a = AddRecorder();
  NodeId b = AddRecorder();
  LinkOptions link;
  link.latency = 0;
  link.bandwidth_bytes_per_sec = 1e6;
  net_.SetLink(a, b, link);

  // Two 0.5 MB messages sent back-to-back: second finishes at 1 s.
  ASSERT_TRUE(net_.Send({a, b, 0, "", 500'000, 0}).ok());
  ASSERT_TRUE(net_.Send({a, b, 0, "", 500'000, 0}).ok());
  sim_.Run();
  EXPECT_EQ(received_.size(), 2u);
  EXPECT_EQ(sim_.Now(), kMicrosPerSecond);
}

TEST_F(NetworkTest, PartitionBlocksAndHealRestores) {
  NodeId a = AddRecorder();
  NodeId b = AddRecorder();
  net_.Partition(a, b);
  EXPECT_TRUE(net_.IsPartitioned(a, b));
  EXPECT_TRUE(net_.IsPartitioned(b, a));

  Status s = net_.Send({a, b, 0, "x", 0, 0});
  EXPECT_TRUE(s.IsUnavailable());
  sim_.Run();
  EXPECT_TRUE(received_.empty());

  net_.Heal(a, b);
  ASSERT_TRUE(net_.Send({a, b, 0, "x", 0, 0}).ok());
  sim_.Run();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, InFlightMessagesLostWhenPartitionStarts) {
  NodeId a = AddRecorder();
  NodeId b = AddRecorder();
  LinkOptions link;
  link.latency = 10 * kMicrosPerMilli;
  link.bandwidth_bytes_per_sec = 0;
  net_.SetLink(a, b, link);

  ASSERT_TRUE(net_.Send({a, b, 0, "x", 0, 0}).ok());
  sim_.At(1 * kMicrosPerMilli, [&] { net_.Partition(a, b); });
  sim_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, LossyLinkDropsSomeMessages) {
  NodeId a = AddRecorder();
  NodeId b = AddRecorder();
  LinkOptions link;
  link.latency = 1;
  link.drop_probability = 0.5;
  net_.SetLink(a, b, link);

  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(net_.Send({a, b, 0, "x", 0, 0}).ok());
  }
  sim_.Run();
  EXPECT_GT(received_.size(), 300u);
  EXPECT_LT(received_.size(), 700u);
  EXPECT_EQ(received_.size() + net_.stats().messages_dropped, 1000u);
}

TEST_F(NetworkTest, StatsCountBytes) {
  NodeId a = AddRecorder();
  NodeId b = AddRecorder();
  ASSERT_TRUE(net_.Send({a, b, 0, "", 1000, 0}).ok());
  sim_.Run();
  EXPECT_EQ(net_.stats().messages_sent, 1u);
  EXPECT_EQ(net_.stats().messages_delivered, 1u);
  EXPECT_EQ(net_.stats().bytes_sent, 1000u);
  EXPECT_EQ(net_.stats().bytes_delivered, 1000u);
}

TEST_F(NetworkTest, WireSizeFallsBackToPayload) {
  Message m{0, 0, 0, "abcd", 0, 0};
  EXPECT_EQ(m.WireSize(), 4u + 64u);
  Message big{0, 0, 0, "abcd", 5000, 0};
  EXPECT_EQ(big.WireSize(), 5000u);
}

// -------------------------------------------------------------- Topology

TEST(TopologyTest, StarRoutesThroughHub) {
  Simulator sim;
  Network net(&sim);
  int hub_got = 0;
  NodeId hub = net.AddNode([&](const Message&) { ++hub_got; });
  std::vector<NodeId> leaves;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(net.AddNode([](const Message&) {}));
  }
  BuildStar(&net, hub, leaves, LinkPresets::MobileEdge());
  for (NodeId leaf : leaves) {
    ASSERT_TRUE(net.Send({leaf, hub, 0, "ping", 0, 0}).ok());
  }
  sim.Run();
  EXPECT_EQ(hub_got, 3);
}

TEST(TopologyTest, MultiDcInterLatencyDominates) {
  Simulator sim;
  Network net(&sim);
  Micros local_delay = -1, remote_delay = -1;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(net.AddNode([&, i](const Message& m) {
      Micros d = sim.Now() - m.sent_at;
      if (i == 1) local_delay = d;
      if (i == 2) remote_delay = d;
    }));
  }
  BuildMultiDc(&net, {{nodes[0], nodes[1]}, {nodes[2], nodes[3]}},
               LinkPresets::IntraDc(),
               LinkPresets::InterDc(30 * kMicrosPerMilli));
  ASSERT_TRUE(net.Send({nodes[0], nodes[1], 0, "x", 100, 0}).ok());
  ASSERT_TRUE(net.Send({nodes[0], nodes[2], 0, "x", 100, 0}).ok());
  sim.Run();
  ASSERT_GE(local_delay, 0);
  ASSERT_GE(remote_delay, 0);
  EXPECT_LT(local_delay, kMicrosPerMilli);
  EXPECT_GE(remote_delay, 30 * kMicrosPerMilli);
}

TEST(TopologyTest, PresetsAreSane) {
  EXPECT_LT(LinkPresets::IntraDc().latency, LinkPresets::InterDc().latency);
  EXPECT_GT(LinkPresets::IntraDc().bandwidth_bytes_per_sec,
            LinkPresets::Constrained().bandwidth_bytes_per_sec);
  EXPECT_GT(LinkPresets::Constrained().drop_probability, 0.0);
}

// ----------------------------------------------------------------- Frame

Message MakeMessage(NodeId from, NodeId to, uint32_t type,
                    const std::string& payload, uint64_t size_bytes = 0) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.payload = payload;
  m.size_bytes = size_bytes;
  return m;
}

TEST(FrameTest, RoundTripsHeaderAndPayload) {
  const std::string wire =
      EncodeFrame(MakeMessage(3, 9, 42, "hello frame", /*size_bytes=*/4096));
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 11);
  FrameDecoder dec;
  std::vector<Message> out;
  ASSERT_TRUE(dec.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, 3u);
  EXPECT_EQ(out[0].to, 9u);
  EXPECT_EQ(out[0].type, 42u);
  EXPECT_EQ(out[0].size_bytes, 4096u);
  EXPECT_EQ(std::string_view(out[0].payload), "hello frame");
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameTest, ZeroLengthPayloadRoundTrips) {
  const std::string wire = EncodeFrame(MakeMessage(1, 2, 7, ""));
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);
  FrameDecoder dec;
  std::vector<Message> out;
  ASSERT_TRUE(dec.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, 7u);
  EXPECT_EQ(out[0].payload.size(), 0u);
}

TEST(FrameTest, ReassemblesAcrossPartialReads) {
  // Two frames delivered one byte at a time: every prefix of the stream
  // is a legal partial read, and no message may surface early.
  std::string wire = EncodeFrame(MakeMessage(1, 2, 10, "first payload"));
  wire += EncodeFrame(MakeMessage(2, 1, 11, "second"));
  FrameDecoder dec;
  std::vector<Message> out;
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(dec.Feed(wire.data() + i, 1, &out).ok());
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::string_view(out[0].payload), "first payload");
  EXPECT_EQ(std::string_view(out[1].payload), "second");
  EXPECT_EQ(dec.frames_decoded(), 2u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameTest, TornLengthPrefixReassembles) {
  // Split inside the 4-byte length prefix itself — the nastiest tear.
  const std::string wire = EncodeFrame(MakeMessage(5, 6, 3, "abc"));
  for (size_t split = 1; split < 4; ++split) {
    FrameDecoder dec;
    std::vector<Message> out;
    ASSERT_TRUE(dec.Feed(wire.data(), split, &out).ok());
    EXPECT_TRUE(out.empty()) << "message surfaced from a torn prefix";
    EXPECT_EQ(dec.buffered(), split);
    ASSERT_TRUE(dec.Feed(wire.data() + split, wire.size() - split, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(std::string_view(out[0].payload), "abc");
  }
}

TEST(FrameTest, MultipleFramesPerRead) {
  std::string wire;
  for (uint32_t i = 0; i < 5; ++i) {
    wire += EncodeFrame(MakeMessage(i, i + 1, i, std::string(i, 'x')));
  }
  FrameDecoder dec;
  std::vector<Message> out;
  ASSERT_TRUE(dec.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].payload.size(), i);
}

TEST(FrameTest, OversizedFrameRejectedBeforeAllocation) {
  // A hostile length prefix declaring a huge payload must be rejected
  // from the 4 prefix bytes alone — no buffering of a giant frame, and
  // the decoder stays poisoned afterwards.
  char prefix[4];
  const uint32_t huge = 1u << 30;  // 1 GiB declared payload
  prefix[0] = char(huge & 0xFF);
  prefix[1] = char((huge >> 8) & 0xFF);
  prefix[2] = char((huge >> 16) & 0xFF);
  prefix[3] = char((huge >> 24) & 0xFF);
  FrameDecoder dec(/*max_frame_bytes=*/1 << 20);
  std::vector<Message> out;
  Status s = dec.Feed(prefix, sizeof(prefix), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dec.buffered(), 0u) << "poisoned decoder must not buffer";
  // Sticky: a valid frame after the poison still fails.
  const std::string good = EncodeFrame(MakeMessage(1, 2, 3, "ok"));
  EXPECT_FALSE(dec.Feed(good.data(), good.size(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, ImpossiblyShortLengthRejected) {
  // length < header body can't be a frame (would imply negative payload).
  char prefix[4] = {1, 0, 0, 0};
  FrameDecoder dec;
  std::vector<Message> out;
  EXPECT_FALSE(dec.Feed(prefix, sizeof(prefix), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, MaxFrameBoundaryAccepted) {
  // Exactly max_frame_bytes of payload is legal; one more is not.
  FrameDecoder dec(/*max_frame_bytes=*/64);
  std::vector<Message> out;
  const std::string at_limit =
      EncodeFrame(MakeMessage(1, 2, 3, std::string(64, 'p')));
  ASSERT_TRUE(dec.Feed(at_limit.data(), at_limit.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload.size(), 64u);

  FrameDecoder dec2(/*max_frame_bytes=*/64);
  out.clear();
  const std::string over =
      EncodeFrame(MakeMessage(1, 2, 3, std::string(65, 'p')));
  EXPECT_FALSE(dec2.Feed(over.data(), over.size(), &out).ok());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace deluge::net
