#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geometry.h"
#include "geo/morton.h"
#include "geo/trajectory.h"

namespace deluge::geo {
namespace {

// ------------------------------------------------------------------ Vec3

TEST(Vec3Test, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  Vec3 sum = a + b;
  EXPECT_EQ(sum, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2, (Vec3{2, 4, 6}));
}

TEST(Vec3Test, LengthAndNormalize) {
  Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.Length(), 5.0);
  Vec3 n = v.Normalized();
  EXPECT_NEAR(n.Length(), 1.0, 1e-12);
  EXPECT_EQ(Vec3{}.Normalized(), Vec3{});
}

TEST(Vec3Test, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0, 0}, {1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0, 0}, {3, 4, 0}), 25.0);
}

// ------------------------------------------------------------------ AABB

TEST(AABBTest, DefaultEmpty) {
  AABB box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_FALSE(box.Contains(Vec3{0, 0, 0}));
}

TEST(AABBTest, ContainsPoints) {
  AABB box({0, 0, 0}, {10, 10, 10});
  EXPECT_TRUE(box.Contains(Vec3{5, 5, 5}));
  EXPECT_TRUE(box.Contains(Vec3{0, 0, 0}));   // boundary inclusive
  EXPECT_TRUE(box.Contains(Vec3{10, 10, 10}));
  EXPECT_FALSE(box.Contains(Vec3{10.001, 5, 5}));
}

TEST(AABBTest, Intersection) {
  AABB a({0, 0, 0}, {10, 10, 10});
  AABB b({5, 5, 5}, {15, 15, 15});
  AABB c({11, 11, 11}, {12, 12, 12});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(AABB{}));  // empty never intersects
}

TEST(AABBTest, TouchingBoxesIntersect) {
  AABB a({0, 0, 0}, {1, 1, 1});
  AABB b({1, 0, 0}, {2, 1, 1});
  EXPECT_TRUE(a.Intersects(b));
}

TEST(AABBTest, UnionCoversBoth) {
  AABB a({0, 0, 0}, {1, 1, 1});
  AABB b({5, 5, 5}, {6, 6, 6});
  AABB u = a.Union(b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_EQ(u.Union(AABB{}).ToString(), u.ToString());
}

TEST(AABBTest, ExpandGrows) {
  AABB box;
  box.Expand({1, 1, 1});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains(Vec3{1, 1, 1}));
  box.Expand({-1, 4, 0});
  EXPECT_TRUE(box.Contains(Vec3{-1, 4, 0}));
  EXPECT_TRUE(box.Contains(Vec3{0, 2, 0.5}));
}

TEST(AABBTest, VolumeAndMargin) {
  AABB box({0, 0, 0}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(box.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 2 * 3 + 3 * 4 + 4 * 2);
}

TEST(AABBTest, DistanceSquaredTo) {
  AABB box({0, 0, 0}, {1, 1, 1});
  EXPECT_DOUBLE_EQ(box.DistanceSquaredTo({0.5, 0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(box.DistanceSquaredTo({2, 0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(box.DistanceSquaredTo({2, 2, 0.5}), 2.0);
}

TEST(AABBTest, CubeCentredCorrectly) {
  AABB c = AABB::Cube({1, 2, 3}, 0.5);
  EXPECT_EQ(c.Center(), (Vec3{1, 2, 3}));
  EXPECT_DOUBLE_EQ(c.Volume(), 1.0);
}

// ------------------------------------------------------------ ViewRegion

TEST(ViewRegionTest, OmnidirectionalSphere) {
  ViewRegion view{{0, 0, 0}, 10.0, {1, 0, 0}, -1.0};
  EXPECT_TRUE(view.Contains({5, 5, 5}));
  EXPECT_FALSE(view.Contains({10, 10, 10}));
  EXPECT_TRUE(view.Contains({0, 0, 0}));  // eye itself
}

TEST(ViewRegionTest, ConeRestricts) {
  ViewRegion view{{0, 0, 0}, 10.0, {1, 0, 0}, 0.3};
  EXPECT_TRUE(view.Contains({5, 0, 0}));       // on-axis
  EXPECT_FALSE(view.Contains({-5, 0, 0}));     // behind
  EXPECT_FALSE(view.Contains({0.5, 5, 0}));    // far off-axis
}

TEST(ViewRegionTest, BoundsCoverSphere) {
  ViewRegion view{{1, 1, 1}, 2.0};
  AABB b = view.Bounds();
  EXPECT_TRUE(b.Contains(Vec3{3, 1, 1}));
  EXPECT_TRUE(b.Contains(Vec3{-1, 1, 1}));
}

// ---------------------------------------------------------------- Morton

TEST(MortonTest, InterleaveRoundTrip) {
  uint32_t xs[] = {0u, 1u, 12345u, (1u << 21) - 1};
  for (uint32_t x : xs) {
    for (uint32_t y : xs) {
      uint64_t code = MortonCodec::Interleave(x, y, 77);
      uint32_t rx, ry, rz;
      MortonCodec::Deinterleave(code, &rx, &ry, &rz);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
      EXPECT_EQ(rz, 77u);
    }
  }
}

TEST(MortonTest, EncodeDecodeClose) {
  AABB world({0, 0, 0}, {1000, 1000, 100});
  MortonCodec codec(world);
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    Vec3 p{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
           rng.UniformDouble(0, 100)};
    Vec3 q = codec.Decode(codec.Encode(p));
    // Cell sizes: 1000/2^21 < 0.0005m per axis horizontally.
    EXPECT_NEAR(p.x, q.x, 0.001);
    EXPECT_NEAR(p.y, q.y, 0.001);
    EXPECT_NEAR(p.z, q.z, 0.0001);
  }
}

TEST(MortonTest, PointsOutsideWorldClamped) {
  AABB world({0, 0, 0}, {10, 10, 10});
  MortonCodec codec(world);
  uint64_t lo = codec.Encode({-5, -5, -5});
  uint64_t hi = codec.Encode({50, 50, 50});
  EXPECT_EQ(lo, codec.Encode({0, 0, 0}));
  EXPECT_EQ(hi, codec.Encode({10, 10, 10}));
}

TEST(MortonTest, LocalityMonotoneAlongAxis) {
  AABB world({0, 0, 0}, {100, 100, 100});
  MortonCodec codec(world);
  // Nearby points should map to numerically close codes more often than
  // far ones; spot-check strict ordering along a single axis with other
  // coordinates fixed at cell boundaries.
  uint64_t prev = codec.Encode({0, 0, 0});
  for (int x = 1; x < 100; ++x) {
    uint64_t cur = codec.Encode({double(x), 0, 0});
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(MortonTest, DegenerateWorldAxis) {
  // A flat (2-D) world must not divide by zero.
  AABB world({0, 0, 5}, {10, 10, 5});
  MortonCodec codec(world);
  Vec3 p = codec.Decode(codec.Encode({3, 4, 5}));
  EXPECT_NEAR(p.x, 3, 0.01);
  EXPECT_NEAR(p.y, 4, 0.01);
  EXPECT_DOUBLE_EQ(p.z, 5);
}

// ------------------------------------------------------------ MotionState

TEST(MotionStateTest, LinearExtrapolation) {
  MotionState m{{0, 0, 0}, {2, 0, 0}, 0};
  Vec3 p = m.PositionAt(kMicrosPerSecond);  // 1 second later
  EXPECT_DOUBLE_EQ(p.x, 2.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
}

TEST(MotionStateTest, UncertaintyGrowsLinearly) {
  MotionState m{{0, 0, 0}, {1, 0, 0}, 0};
  EXPECT_DOUBLE_EQ(m.UncertaintyAt(2 * kMicrosPerSecond, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(m.UncertaintyAt(-kMicrosPerSecond, 3.0), 0.0);
}

// ------------------------------------------------------------ Trajectory

TEST(TrajectoryTest, EmptyBehaviour) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.At(123), Vec3{});
  EXPECT_EQ(t.Length(), 0.0);
  EXPECT_EQ(t.AverageSpeed(), 0.0);
}

TEST(TrajectoryTest, InterpolatesBetweenSamples) {
  Trajectory t;
  t.Append({0, 0, 0}, 0);
  t.Append({10, 0, 0}, 10 * kMicrosPerSecond);
  Vec3 mid = t.At(5 * kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
}

TEST(TrajectoryTest, ClampsOutsideRange) {
  Trajectory t;
  t.Append({1, 1, 1}, 100);
  t.Append({2, 2, 2}, 200);
  EXPECT_EQ(t.At(0), (Vec3{1, 1, 1}));
  EXPECT_EQ(t.At(500), (Vec3{2, 2, 2}));
}

TEST(TrajectoryTest, DropsOutOfOrderSamples) {
  Trajectory t;
  t.Append({0, 0, 0}, 100);
  t.Append({1, 0, 0}, 50);  // dropped
  EXPECT_EQ(t.size(), 1u);
}

TEST(TrajectoryTest, LengthAndSpeed) {
  Trajectory t;
  t.Append({0, 0, 0}, 0);
  t.Append({3, 4, 0}, kMicrosPerSecond);
  t.Append({3, 4, 12}, 2 * kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(t.Length(), 17.0);
  EXPECT_DOUBLE_EQ(t.AverageSpeed(), 8.5);
}

TEST(TrajectoryTest, BoundsCoverSamples) {
  Trajectory t;
  t.Append({-1, 0, 0}, 0);
  t.Append({5, 9, 2}, 10);
  AABB b = t.Bounds();
  EXPECT_TRUE(b.Contains(Vec3{-1, 0, 0}));
  EXPECT_TRUE(b.Contains(Vec3{5, 9, 2}));
}

}  // namespace
}  // namespace deluge::geo
