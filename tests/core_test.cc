#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/engine.h"
#include "core/sensors.h"
#include "core/world_space.h"

namespace deluge::core {
namespace {

const geo::AABB kWorld({0, 0, 0}, {1000, 1000, 100});

Entity MakeAvatar(EntityId id, geo::Vec3 pos) {
  Entity e;
  e.id = id;
  e.kind = EntityKind::kAvatar;
  e.position = pos;
  return e;
}

// -------------------------------------------------------------- WorldSpace

TEST(WorldSpaceTest, UpsertGetRemove) {
  WorldSpace space(stream::Space::kPhysical, kWorld);
  space.Upsert(MakeAvatar(1, {10, 10, 0}));
  ASSERT_NE(space.Get(1), nullptr);
  EXPECT_EQ(space.Get(1)->position, (geo::Vec3{10, 10, 0}));
  ASSERT_TRUE(space.Remove(1).ok());
  EXPECT_EQ(space.Get(1), nullptr);
  EXPECT_TRUE(space.Remove(1).IsNotFound());
}

TEST(WorldSpaceTest, MoveReindexes) {
  WorldSpace space(stream::Space::kPhysical, kWorld);
  space.Upsert(MakeAvatar(1, {10, 10, 0}));
  ASSERT_TRUE(space.Move(1, {900, 900, 0}, 100).ok());
  auto near_new = space.Range(geo::AABB::Cube({900, 900, 0}, 5));
  ASSERT_EQ(near_new.size(), 1u);
  EXPECT_EQ(near_new[0]->updated_at, 100);
  EXPECT_TRUE(space.Range(geo::AABB::Cube({10, 10, 0}, 5)).empty());
  EXPECT_TRUE(space.Move(42, {0, 0, 0}, 0).IsNotFound());
}

TEST(WorldSpaceTest, AttributesAndTypedAccess) {
  WorldSpace space(stream::Space::kVirtual, kWorld);
  space.Upsert(MakeAvatar(1, {1, 1, 0}));
  ASSERT_TRUE(space.SetAttribute(1, "hp", int64_t{90}).ok());
  ASSERT_TRUE(space.SetAttribute(1, "name", std::string("alpha")).ok());
  const Entity* e = space.Get(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->Attr<int64_t>("hp"), 90);
  EXPECT_EQ(e->Attr<std::string>("name"), "alpha");
  EXPECT_FALSE(e->Attr<double>("hp").has_value());  // wrong type
  EXPECT_TRUE(space.SetAttribute(9, "x", 1.0).IsNotFound());
}

TEST(WorldSpaceTest, NearestReturnsClosest) {
  WorldSpace space(stream::Space::kPhysical, kWorld);
  space.Upsert(MakeAvatar(1, {100, 100, 0}));
  space.Upsert(MakeAvatar(2, {110, 100, 0}));
  space.Upsert(MakeAvatar(3, {500, 500, 0}));
  auto nearest = space.Nearest({101, 100, 0}, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0]->id, 1u);
  EXPECT_EQ(nearest[1]->id, 2u);
}

// ------------------------------------------------------------ CoSpaceEngine

class EngineTest : public ::testing::Test {
 protected:
  EngineOptions DefaultOptions() {
    EngineOptions opts;
    opts.world_bounds = kWorld;
    opts.default_contract = {5.0, 10 * kMicrosPerSecond};
    return opts;
  }
  SimClock clock_;
};

TEST_F(EngineTest, SpawnMirrorsImmediately) {
  CoSpaceEngine engine(DefaultOptions(), &clock_);
  engine.SpawnPhysical(MakeAvatar(1, {100, 100, 0}));
  ASSERT_NE(engine.physical().Get(1), nullptr);
  ASSERT_NE(engine.virtual_space().Get(1), nullptr);
  EXPECT_EQ(engine.virtual_space().Get(1)->position, (geo::Vec3{100, 100, 0}));
}

TEST_F(EngineTest, CoherencySuppressesSmallMoves) {
  CoSpaceEngine engine(DefaultOptions(), &clock_);
  engine.SpawnPhysical(MakeAvatar(1, {100, 100, 0}));
  // 1 m move: physical tracks, mirror lags (bound is 5 m).
  EXPECT_FALSE(engine.IngestPhysicalPosition(1, {101, 100, 0}, 1000));
  EXPECT_EQ(engine.physical().Get(1)->position.x, 101);
  EXPECT_EQ(engine.virtual_space().Get(1)->position.x, 100);
  // 10 m total drift: mirror refreshes.
  EXPECT_TRUE(engine.IngestPhysicalPosition(1, {110, 100, 0}, 2000));
  EXPECT_EQ(engine.virtual_space().Get(1)->position.x, 110);
  EXPECT_EQ(engine.stats().suppressed_updates, 1u);
  EXPECT_EQ(engine.stats().mirrored_updates, 1u);
}

TEST_F(EngineTest, PerEntityContract) {
  CoSpaceEngine engine(DefaultOptions(), &clock_);
  engine.SpawnPhysical(MakeAvatar(1, {100, 100, 0}));
  engine.SpawnPhysical(MakeAvatar(2, {100, 100, 0}));
  engine.SetContract(2, {0.1, 10 * kMicrosPerSecond});  // VIP: tight
  EXPECT_FALSE(engine.IngestPhysicalPosition(1, {101, 100, 0}, 1000));
  EXPECT_TRUE(engine.IngestPhysicalPosition(2, {101, 100, 0}, 1000));
}

TEST_F(EngineTest, MirrorUpdatesReachRegionalWatchers) {
  CoSpaceEngine engine(DefaultOptions(), &clock_);
  engine.SpawnPhysical(MakeAvatar(1, {100, 100, 0}));
  std::vector<pubsub::Event> seen;
  engine.WatchRegion(7, geo::AABB({0, 0, 0}, {200, 200, 100}),
                     [&](net::NodeId, const pubsub::Event& e) {
                       seen.push_back(e);
                     });
  engine.IngestPhysicalPosition(1, {150, 150, 0}, 1000);  // big move: mirrors
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].topic, "mirror.position");
  // Moves outside the watched region do not notify this watcher.
  engine.IngestPhysicalPosition(1, {500, 500, 0}, 2000);
  EXPECT_EQ(seen.size(), 1u);
}

TEST_F(EngineTest, AttributesMirrorAndPublish) {
  CoSpaceEngine engine(DefaultOptions(), &clock_);
  engine.SpawnPhysical(MakeAvatar(1, {100, 100, 0}));
  ASSERT_TRUE(
      engine.IngestPhysicalAttribute(1, "casualties", int64_t{3}, 100).ok());
  EXPECT_EQ(engine.virtual_space().Get(1)->Attr<int64_t>("casualties"), 3);
  EXPECT_TRUE(engine.IngestPhysicalAttribute(9, "x", 1.0, 0).IsNotFound());
}

TEST_F(EngineTest, VirtualCommandReachesPhysicalEntities) {
  CoSpaceEngine engine(DefaultOptions(), &clock_);
  engine.SpawnPhysical(MakeAvatar(1, {100, 100, 0}));
  engine.SpawnPhysical(MakeAvatar(2, {500, 500, 0}));
  engine.SpawnVirtual(MakeAvatar(100, {110, 110, 0}));  // cyber user nearby

  std::vector<EntityId> hit;
  engine.OnPhysicalCommand(
      [&](EntityId target, const stream::Tuple& cmd) {
        if (cmd.Get<std::string>("type") == "air-raid") hit.push_back(target);
      });
  stream::Tuple raid;
  raid.Set("type", std::string("air-raid"));
  size_t affected =
      engine.IssueVirtualCommand(geo::AABB({0, 0, 0}, {200, 200, 100}), raid);
  // Both the soldier and the cyber avatar are in the region, but only
  // the physical-origin entity receives the relayed command.
  EXPECT_EQ(affected, 2u);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], 1u);
  EXPECT_EQ(engine.stats().relayed_commands, 1u);
}

TEST_F(EngineTest, CommandTargetsResolvedAgainstStaleMirror) {
  // The commander sees the VIRTUAL model; a soldier who physically left
  // the region but whose mirror is stale still gets hit — exactly the
  // consistency tension of Section IV-C.
  EngineOptions opts = DefaultOptions();
  opts.default_contract = {50.0, 100 * kMicrosPerSecond};  // very loose
  CoSpaceEngine engine(opts, &clock_);
  engine.SpawnPhysical(MakeAvatar(1, {100, 100, 0}));
  // Soldier moves 30 m: physical truth changes, mirror stays (bound 50).
  engine.IngestPhysicalPosition(1, {130, 100, 0}, 1000);
  ASSERT_EQ(engine.virtual_space().Get(1)->position.x, 100);

  int commands = 0;
  engine.OnPhysicalCommand(
      [&](EntityId, const stream::Tuple&) { ++commands; });
  stream::Tuple cmd;
  // Region covering the STALE mirror position only.
  engine.IssueVirtualCommand(geo::AABB({90, 90, 0}, {110, 110, 100}), cmd);
  EXPECT_EQ(commands, 1);  // mirror says they're there
}

// --------------------------------------------------------------- SensorFleet

TEST(SensorFleetTest, ProducesReadingsForAllEntities) {
  SensorFleetOptions opts;
  opts.num_entities = 50;
  opts.drop_probability = 0.0;
  opts.gps_noise_stddev = 0.0;
  SensorFleet fleet(kWorld, opts);
  auto readings = fleet.Tick(kMicrosPerSecond, kMicrosPerSecond);
  EXPECT_EQ(readings.size(), 50u);
  std::set<EntityId> ids;
  for (const auto& r : readings) {
    ids.insert(r.entity);
    EXPECT_TRUE(kWorld.Contains(r.position));
    EXPECT_EQ(r.t, kMicrosPerSecond);
  }
  EXPECT_EQ(ids.size(), 50u);
}

TEST(SensorFleetTest, DropsConfiguredFraction) {
  SensorFleetOptions opts;
  opts.num_entities = 1000;
  opts.drop_probability = 0.3;
  SensorFleet fleet(kWorld, opts);
  auto readings = fleet.Tick(kMicrosPerSecond, 0);
  EXPECT_GT(readings.size(), 600u);
  EXPECT_LT(readings.size(), 800u);
}

TEST(SensorFleetTest, NoiseBoundedAroundTruth) {
  SensorFleetOptions opts;
  opts.num_entities = 100;
  opts.gps_noise_stddev = 1.0;
  SensorFleet fleet(kWorld, opts);
  auto readings = fleet.Tick(kMicrosPerSecond, 0);
  double total_err = 0;
  for (const auto& r : readings) {
    total_err += geo::Distance(r.position, fleet.TruePosition(r.entity));
  }
  double mean_err = total_err / double(readings.size());
  EXPECT_GT(mean_err, 0.3);
  EXPECT_LT(mean_err, 3.0);
}

TEST(SensorFleetTest, EntitiesStayInWorld) {
  SensorFleetOptions opts;
  opts.num_entities = 20;
  opts.max_speed = 50.0;  // fast: exercise bouncing
  opts.gps_noise_stddev = 0.0;
  SensorFleet fleet(kWorld, opts);
  for (int tick = 0; tick < 200; ++tick) {
    fleet.Tick(kMicrosPerSecond, tick * kMicrosPerSecond);
  }
  for (EntityId id = 1; id <= 20; ++id) {
    EXPECT_TRUE(kWorld.Contains(fleet.TruePosition(id))) << id;
  }
}

TEST(SensorFleetTest, DeterministicGivenSeed) {
  SensorFleetOptions opts;
  opts.num_entities = 10;
  SensorFleet a(kWorld, opts), b(kWorld, opts);
  auto ra = a.Tick(kMicrosPerSecond, 0);
  auto rb = b.Tick(kMicrosPerSecond, 0);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].position, rb[i].position);
  }
}

// ------------------------------------------------- End-to-end ingest loop

TEST(EndToEndTest, FleetThroughEngineKeepsMirrorWithinBound) {
  EngineOptions opts;
  opts.world_bounds = kWorld;
  const double kBound = 5.0;
  opts.default_contract = {kBound, 3600 * kMicrosPerSecond};
  SimClock clock;
  CoSpaceEngine engine(opts, &clock);

  SensorFleetOptions fleet_opts;
  fleet_opts.num_entities = 100;
  fleet_opts.gps_noise_stddev = 0.0;
  fleet_opts.max_speed = 3.0;
  SensorFleet fleet(kWorld, fleet_opts);
  for (EntityId id = 1; id <= 100; ++id) {
    engine.SpawnPhysical(MakeAvatar(id, fleet.TruePosition(id)));
  }
  Micros now = 0;
  for (int tick = 0; tick < 100; ++tick) {
    now += 100 * kMicrosPerMilli;
    for (const auto& r : fleet.Tick(100 * kMicrosPerMilli, now)) {
      engine.IngestPhysicalPosition(r.entity, r.position, r.t);
    }
  }
  // Invariant: every mirror within the coherency bound of ground truth.
  for (EntityId id = 1; id <= 100; ++id) {
    double err = geo::Distance(engine.virtual_space().Get(id)->position,
                               engine.physical().Get(id)->position);
    EXPECT_LE(err, kBound + 1e-9) << id;
  }
  // And plenty of updates were suppressed (that's the point).
  EXPECT_GT(engine.stats().suppressed_updates,
            engine.stats().mirrored_updates);
}

}  // namespace
}  // namespace deluge::core
