#include <gtest/gtest.h>

#include <vector>

#include "net/aggregation_tree.h"

namespace deluge::net {
namespace {

class AggregationTest : public ::testing::Test {
 protected:
  Simulator sim_;
  Network net_{&sim_};
  std::vector<EpochResult> results_;

  std::unique_ptr<AggregationTree> MakeTree(size_t sensors, size_t fanout,
                                            AggregateFn fn,
                                            Micros timeout = 50 *
                                                             kMicrosPerMilli) {
    return std::make_unique<AggregationTree>(
        &net_, &sim_, sensors, fanout, fn,
        [this](const EpochResult& r) { results_.push_back(r); }, timeout);
  }
};

TEST_F(AggregationTest, SumOfAllSensors) {
  auto tree = MakeTree(10, 3, AggregateFn::kSum);
  for (size_t s = 0; s < 10; ++s) {
    ASSERT_TRUE(tree->Report(s, 1, double(s + 1)).ok());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].epoch, 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 55.0);  // 1+...+10
  EXPECT_EQ(results_[0].contributors, 10u);
}

TEST_F(AggregationTest, MaxAggregation) {
  auto tree = MakeTree(20, 4, AggregateFn::kMax);
  for (size_t s = 0; s < 20; ++s) {
    ASSERT_TRUE(tree->Report(s, 7, s == 13 ? 99.5 : double(s)).ok());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 99.5);
}

TEST_F(AggregationTest, CountAggregation) {
  auto tree = MakeTree(16, 4, AggregateFn::kCount);
  for (size_t s = 0; s < 16; ++s) {
    ASSERT_TRUE(tree->Report(s, 1, 0.0).ok());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 16.0);
}

TEST_F(AggregationTest, EpochsAreIndependent) {
  auto tree = MakeTree(4, 2, AggregateFn::kSum);
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(tree->Report(s, 1, 1.0).ok());
    ASSERT_TRUE(tree->Report(s, 2, 2.0).ok());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 2u);
  double total = results_[0].value + results_[1].value;
  EXPECT_DOUBLE_EQ(total, 4.0 + 8.0);
}

TEST_F(AggregationTest, TimeoutForwardsPartialAggregate) {
  auto tree = MakeTree(10, 5, AggregateFn::kSum, 20 * kMicrosPerMilli);
  // Only 7 of 10 sensors report this epoch.
  for (size_t s = 0; s < 7; ++s) {
    ASSERT_TRUE(tree->Report(s, 1, 1.0).ok());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 7.0);
  EXPECT_EQ(results_[0].contributors, 7u);
}

TEST_F(AggregationTest, InNetworkAggregationSavesSinkMessages) {
  // Claim under test (paper Section III): aggregation in the tree means
  // the sink-side link carries O(1) messages per epoch, not O(sensors).
  const size_t kSensors = 128;
  auto tree = MakeTree(kSensors, 4, AggregateFn::kSum);
  net_.ResetStats();
  for (size_t s = 0; s < kSensors; ++s) {
    ASSERT_TRUE(tree->Report(s, 1, 1.0).ok());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, double(kSensors));
  // Total messages = sensor reports + one per interior node, far fewer
  // than sensors * depth that direct-relay flooding would cost; and the
  // root received exactly its fan-in, not 128.
  uint64_t total_msgs = net_.stats().messages_sent;
  EXPECT_LT(total_msgs, kSensors + kSensors / 2);
  EXPECT_GE(total_msgs, kSensors + 1);
}

TEST_F(AggregationTest, DeepTreeStructure) {
  auto tree = MakeTree(64, 2, AggregateFn::kSum);
  EXPECT_GE(tree->depth(), 6);  // 64 leaves at fan-in 2
  for (size_t s = 0; s < 64; ++s) {
    ASSERT_TRUE(tree->Report(s, 1, 1.0).ok());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 64.0);
}

TEST_F(AggregationTest, InvalidSensorRejected) {
  auto tree = MakeTree(4, 2, AggregateFn::kSum);
  EXPECT_TRUE(tree->Report(99, 1, 1.0).IsInvalidArgument());
}

TEST_F(AggregationTest, SingleSensorTree) {
  auto tree = MakeTree(1, 4, AggregateFn::kSum);
  ASSERT_TRUE(tree->Report(0, 1, 42.0).ok());
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 42.0);
}

}  // namespace
}  // namespace deluge::net
