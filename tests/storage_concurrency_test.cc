// Concurrency stress tests for the LSM storage engine: parallel
// committers (group commit), readers racing background flushes and
// compactions, snapshot iterators under churn, and write backpressure.
// Suite name matches the CI TSan filter (*StorageConcurrency*); op
// counts are sized so the suite stays fast under instrumentation.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/kv_store.h"

namespace deluge::storage {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("deluge_conc_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string Key(int writer, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%02d-%06d", writer, i);
  return buf;
}

TEST(StorageConcurrencyTest, ParallelWritersAllAcknowledgedWritesReadable) {
  KVStoreOptions opts;
  opts.dir = TempDir("writers");
  opts.memtable_max_bytes = 32 << 10;  // force background flushes
  opts.l0_compaction_trigger = 3;      // ...and background compactions
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 400;
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    KVStore* db = store.value().get();

    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([db, w, &failures] {
        for (int i = 0; i < kOpsPerWriter; ++i) {
          if (!db->Put(Key(w, i), "v" + std::to_string(i)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);

    // stats().flushes counts *completed* flushes; wait out the background
    // task so the assertion doesn't race a starved pool thread.
    ASSERT_TRUE(db->Flush().ok());
    auto stats = db->stats();
    EXPECT_EQ(stats.puts, uint64_t(kWriters) * kOpsPerWriter);
    EXPECT_GT(stats.flushes, 0u);

    std::string v;
    for (int w = 0; w < kWriters; ++w) {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ASSERT_TRUE(db->Get(Key(w, i), &v).ok()) << Key(w, i);
        EXPECT_EQ(v, "v" + std::to_string(i));
      }
    }
  }
  // Durability across reopen: every acknowledged write recovers.
  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  std::string v;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kOpsPerWriter; ++i) {
      ASSERT_TRUE(reopened.value()->Get(Key(w, i), &v).ok()) << Key(w, i);
    }
  }
}

TEST(StorageConcurrencyTest, ReadersNeverObserveTornValues) {
  KVStoreOptions opts;
  opts.dir = TempDir("readers");
  opts.memtable_max_bytes = 16 << 10;
  opts.l0_compaction_trigger = 3;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  // Self-validating values: value == key repeated.  A racing reader
  // must see either NotFound or a fully consistent version.
  constexpr int kKeys = 32;
  constexpr int kRounds = 150;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::thread writer([db, &done] {
    for (int r = 0; r < kRounds; ++r) {
      for (int k = 0; k < kKeys; ++k) {
        std::string key = "shared" + std::to_string(k);
        std::string value;
        for (int rep = 0; rep <= r % 7; ++rep) value += key;
        db->Put(key, value);
      }
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([db, &done, &violations] {
      std::string v;
      while (!done.load()) {
        for (int k = 0; k < kKeys; ++k) {
          std::string key = "shared" + std::to_string(k);
          Status s = db->Get(key, &v);
          if (s.IsNotFound()) continue;
          if (!s.ok() || v.empty() || v.size() % key.size() != 0 ||
              v.substr(0, key.size()) != key) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(StorageConcurrencyTest, SnapshotIteratorStableUnderConcurrentWrites) {
  KVStoreOptions opts;
  opts.dir = TempDir("iter");
  opts.memtable_max_bytes = 16 << 10;
  opts.l0_compaction_trigger = 3;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put(Key(0, i), "base").ok());
  }

  std::atomic<bool> done{false};
  std::thread writer([db, &done] {
    for (int i = 0; i < 600; ++i) db->Put(Key(1, i), "churn");
    done.store(true);
  });
  // Snapshot iterators taken mid-churn: each must be internally
  // consistent (strictly ascending unique keys) and contain at least
  // the 200 pre-churn keys.
  while (!done.load()) {
    auto it = db->NewIterator();
    std::string prev;
    size_t count = 0;
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      if (count > 0) EXPECT_LT(prev, it.key());
      prev = it.key();
      ++count;
    }
    EXPECT_GE(count, 200u);
  }
  writer.join();
}

TEST(StorageConcurrencyTest, GroupCommitSharesWalSyncs) {
  KVStoreOptions opts;
  opts.dir = TempDir("group");
  opts.sync_wal = true;
  opts.group_commit = true;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 100;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([db, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ASSERT_TRUE(db->Put(Key(w, i), "v").ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  auto stats = db->stats();
  EXPECT_EQ(stats.puts, uint64_t(kWriters) * kOpsPerWriter);
  // The whole point of group commit: strictly fewer fdatasyncs than
  // commits — while one leader syncs, later arrivals pile into the next
  // group.  (Equality would mean zero batching across 800 overlapping
  // syncing commits.)
  EXPECT_LT(stats.wal_syncs, stats.puts);
  EXPECT_GT(stats.wal_syncs, 0u);
}

TEST(StorageConcurrencyTest, WriteBatchCommitsAtomicallyAcrossThreads) {
  KVStoreOptions opts;
  opts.dir = TempDir("batch");
  opts.memtable_max_bytes = 32 << 10;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  constexpr int kWriters = 4;
  constexpr int kBatches = 60;
  constexpr int kOpsPerBatch = 5;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([db, w] {
      WriteBatch batch;
      for (int b = 0; b < kBatches; ++b) {
        batch.Clear();
        for (int i = 0; i < kOpsPerBatch; ++i) {
          batch.Put(Key(w, b * kOpsPerBatch + i), std::to_string(b));
        }
        ASSERT_TRUE(db->Write(batch).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every batch landed whole, with all ops carrying the batch's value.
  std::string v;
  for (int w = 0; w < kWriters; ++w) {
    for (int b = 0; b < kBatches; ++b) {
      for (int i = 0; i < kOpsPerBatch; ++i) {
        ASSERT_TRUE(db->Get(Key(w, b * kOpsPerBatch + i), &v).ok());
        EXPECT_EQ(v, std::to_string(b));
      }
    }
  }
  EXPECT_EQ(db->stats().puts,
            uint64_t(kWriters) * kBatches * kOpsPerBatch);
}

TEST(StorageConcurrencyTest, BackpressureBoundsMemoryAndLosesNothing) {
  KVStoreOptions opts;
  opts.dir = TempDir("stall");
  opts.memtable_max_bytes = 4 << 10;  // tiny: writers outrun the flusher
  opts.l0_compaction_trigger = 4;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 150;
  const std::string value(256, 'x');
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([db, w, &value] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ASSERT_TRUE(db->Put(Key(w, i), value).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  auto stats = db->stats();
  EXPECT_GT(stats.flushes, 1u);
  std::string v;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kOpsPerWriter; ++i) {
      ASSERT_TRUE(db->Get(Key(w, i), &v).ok()) << Key(w, i);
    }
  }
}

TEST(StorageConcurrencyTest, ReadsRaceCompactionFileReplacement) {
  KVStoreOptions opts;
  opts.dir = TempDir("compact_race");
  opts.memtable_max_bytes = 8 << 10;
  opts.l0_compaction_trigger = 2;  // compact aggressively
  opts.block_cache_bytes = 256 << 10;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(Key(0, i), std::string(64, 'a')).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Readers hammer table files while the writer churns enough data to
  // drive repeated background compactions that unlink those files.
  std::atomic<bool> done{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([db, &done, &read_errors] {
      std::string v;
      while (!done.load()) {
        for (int i = 0; i < kKeys; i += 7) {
          if (!db->Get(Key(0, i), &v).ok()) read_errors.fetch_add(1);
        }
      }
    });
  }
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE(db->Put(Key(2, i), std::string(64, char('b' + round))).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_errors.load(), 0);
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->l0_file_count(), 0u);
  // Leveled compaction keeps the disjoint key families (and any
  // flush-boundary fragments a racing seal left behind) as separate
  // non-overlapping L1 tables instead of one run; the exact count is
  // timing-dependent, but it must stay a handful, not per-flush.
  EXPECT_GE(db->l1_file_count(), 1u);
  EXPECT_LE(db->l1_file_count(), 4u);
  auto stats = db->stats();
  EXPECT_GT(stats.compactions, 0u);
  // Every key of both families is readable through the compacted level.
  std::string v;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Get(Key(0, i), &v).ok()) << Key(0, i);
  }
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(db->Get(Key(2, i), &v).ok()) << Key(2, i);
  }
}

}  // namespace
}  // namespace deluge::storage
