#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/rng.h"
#include "index/bptree.h"
#include "index/grid_index.h"
#include "index/hdov_tree.h"
#include "index/morton_index.h"
#include "index/moving_index.h"
#include "index/rtree.h"

namespace deluge::index {
namespace {

const geo::AABB kWorld({0, 0, 0}, {1000, 1000, 100});

// ---------------------------------------------------------------- BPTree

TEST(BPTreeTest, InsertFindErase) {
  BPTree<int, std::string> tree;
  EXPECT_TRUE(tree.Insert(5, "five"));
  EXPECT_TRUE(tree.Insert(3, "three"));
  EXPECT_FALSE(tree.Insert(5, "FIVE"));  // overwrite
  ASSERT_NE(tree.Find(5), nullptr);
  EXPECT_EQ(*tree.Find(5), "FIVE");
  EXPECT_EQ(tree.Find(99), nullptr);
  EXPECT_TRUE(tree.Erase(5));
  EXPECT_FALSE(tree.Erase(5));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPTreeTest, LargeInsertMatchesStdMap) {
  BPTree<uint64_t, uint64_t, 8> tree;  // small fanout: exercise splits
  std::map<uint64_t, uint64_t> reference;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.Uniform(2000);
    uint64_t v = rng.Next();
    tree.Insert(k, v);
    reference[k] = v;
  }
  EXPECT_EQ(tree.size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_NE(tree.Find(k), nullptr) << k;
    EXPECT_EQ(*tree.Find(k), v);
  }
}

TEST(BPTreeTest, ScanReturnsSortedRange) {
  BPTree<int, int, 8> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i * 2, i);
  std::vector<int> keys;
  tree.Scan(10, 30, [&](int k, int) {
    keys.push_back(k);
    return true;
  });
  std::vector<int> expected;
  for (int k = 10; k <= 30; k += 2) expected.push_back(k);
  EXPECT_EQ(keys, expected);
}

TEST(BPTreeTest, ScanEarlyStop) {
  BPTree<int, int> tree;
  for (int i = 0; i < 50; ++i) tree.Insert(i, i);
  int count = 0;
  tree.Scan(0, 49, [&](int, int) { return ++count < 5; });
  EXPECT_EQ(count, 5);
}

TEST(BPTreeTest, EraseHeavyThenScanConsistent) {
  BPTree<int, int, 8> tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(i, i);
  for (int i = 0; i < 1000; i += 2) EXPECT_TRUE(tree.Erase(i));
  EXPECT_EQ(tree.size(), 500u);
  std::vector<int> keys;
  tree.Scan(0, 999, [&](int k, int) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 500u);
  for (size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(keys[i], int(i) * 2 + 1);
}

TEST(BPTreeTest, HeightGrowsLogarithmically) {
  BPTree<int, int, 8> tree;
  for (int i = 0; i < 10000; ++i) tree.Insert(i, i);
  EXPECT_LE(tree.height(), 8);  // 8^8 >> 10000
  EXPECT_GE(tree.height(), 3);
}

// ------------------------------------------- SpatialIndex (parameterized)

enum class IndexKind { kGrid, kRTree, kMorton };

std::unique_ptr<SpatialIndex> MakeIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kGrid:
      return std::make_unique<GridIndex>(kWorld, 25.0);
    case IndexKind::kRTree:
      return std::make_unique<RTree>(16);
    case IndexKind::kMorton:
      return std::make_unique<MortonIndex>(kWorld, 64);
  }
  return nullptr;
}

class SpatialIndexTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  std::unique_ptr<SpatialIndex> index_ = MakeIndex(GetParam());
  Rng rng_{1234};

  geo::Vec3 RandomPoint() {
    return {rng_.UniformDouble(0, 1000), rng_.UniformDouble(0, 1000),
            rng_.UniformDouble(0, 100)};
  }
};

TEST_P(SpatialIndexTest, InsertAndRangeBasic) {
  index_->Insert(1, {10, 10, 10});
  index_->Insert(2, {500, 500, 50});
  index_->Insert(3, {990, 990, 90});
  auto hits = index_->Range(geo::AABB({0, 0, 0}, {100, 100, 100}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(index_->size(), 3u);
}

TEST_P(SpatialIndexTest, RemoveEliminatesEntity) {
  index_->Insert(1, {10, 10, 10});
  index_->Remove(1);
  EXPECT_EQ(index_->size(), 0u);
  EXPECT_TRUE(index_->Range(geo::AABB({0, 0, 0}, {1000, 1000, 100})).empty());
  index_->Remove(42);  // absent: no-op
}

TEST_P(SpatialIndexTest, UpdateMovesEntity) {
  index_->Insert(7, {10, 10, 10});
  index_->Update(7, {900, 900, 90});
  auto near_old = index_->Range(geo::AABB::Cube({10, 10, 10}, 5));
  auto near_new = index_->Range(geo::AABB::Cube({900, 900, 90}, 5));
  EXPECT_TRUE(near_old.empty());
  ASSERT_EQ(near_new.size(), 1u);
  EXPECT_EQ(near_new[0].id, 7u);
  EXPECT_EQ(index_->size(), 1u);
}

TEST_P(SpatialIndexTest, InsertExistingActsAsUpdate) {
  index_->Insert(7, {10, 10, 10});
  index_->Insert(7, {20, 20, 20});
  EXPECT_EQ(index_->size(), 1u);
  auto hits = index_->Range(geo::AABB::Cube({20, 20, 20}, 1));
  ASSERT_EQ(hits.size(), 1u);
}

TEST_P(SpatialIndexTest, RangeMatchesBruteForce) {
  std::map<EntityId, geo::Vec3> truth;
  for (EntityId id = 0; id < 500; ++id) {
    geo::Vec3 p = RandomPoint();
    truth[id] = p;
    index_->Insert(id, p);
  }
  for (int q = 0; q < 50; ++q) {
    geo::Vec3 c = RandomPoint();
    double r = rng_.UniformDouble(10, 200);
    geo::AABB box = geo::AABB::Cube(c, r);
    std::set<EntityId> expected;
    for (const auto& [id, p] : truth) {
      if (box.Contains(p)) expected.insert(id);
    }
    auto hits = index_->Range(box);
    std::set<EntityId> got;
    for (const auto& h : hits) got.insert(h.id);
    EXPECT_EQ(got, expected) << "query " << q << " on " << index_->name();
  }
}

TEST_P(SpatialIndexTest, RangeAfterChurnMatchesBruteForce) {
  std::map<EntityId, geo::Vec3> truth;
  for (EntityId id = 0; id < 300; ++id) {
    geo::Vec3 p = RandomPoint();
    truth[id] = p;
    index_->Insert(id, p);
  }
  // Heavy churn: moves and removals.
  for (int op = 0; op < 2000; ++op) {
    EntityId id = rng_.Uniform(300);
    if (rng_.Bernoulli(0.15)) {
      index_->Remove(id);
      truth.erase(id);
    } else {
      geo::Vec3 p = RandomPoint();
      index_->Update(id, p);
      truth[id] = p;
    }
  }
  EXPECT_EQ(index_->size(), truth.size());
  for (int q = 0; q < 25; ++q) {
    geo::AABB box = geo::AABB::Cube(RandomPoint(), 150);
    std::set<EntityId> expected;
    for (const auto& [id, p] : truth) {
      if (box.Contains(p)) expected.insert(id);
    }
    auto hits = index_->Range(box);
    std::set<EntityId> got;
    for (const auto& h : hits) got.insert(h.id);
    EXPECT_EQ(got, expected) << index_->name();
  }
}

TEST_P(SpatialIndexTest, NearestMatchesBruteForce) {
  std::map<EntityId, geo::Vec3> truth;
  for (EntityId id = 0; id < 400; ++id) {
    geo::Vec3 p = RandomPoint();
    truth[id] = p;
    index_->Insert(id, p);
  }
  for (int q = 0; q < 20; ++q) {
    geo::Vec3 c = RandomPoint();
    size_t k = 1 + rng_.Uniform(10);
    auto hits = index_->Nearest(c, k);
    ASSERT_EQ(hits.size(), k) << index_->name();
    // Compute the true k-th smallest distance.
    std::vector<double> dists;
    for (const auto& [id, p] : truth) dists.push_back(geo::Distance(c, p));
    std::sort(dists.begin(), dists.end());
    double kth = dists[k - 1];
    for (const auto& h : hits) {
      EXPECT_LE(geo::Distance(c, h.position), kth + 1e-9) << index_->name();
    }
  }
}

TEST_P(SpatialIndexTest, NearestWithKLargerThanSize) {
  index_->Insert(1, {1, 1, 1});
  index_->Insert(2, {2, 2, 2});
  auto hits = index_->Nearest({0, 0, 0}, 10);
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);  // nearest first
}

TEST_P(SpatialIndexTest, EmptyIndexQueries) {
  EXPECT_TRUE(index_->Range(geo::AABB::Cube({0, 0, 0}, 10)).empty());
  EXPECT_TRUE(index_->Nearest({0, 0, 0}, 3).empty());
  EXPECT_TRUE(index_->Range(geo::AABB{}).empty());  // empty box
}

TEST_P(SpatialIndexTest, DuplicatePositionsAllSurvive) {
  geo::Vec3 p{100, 100, 50};
  for (EntityId id = 0; id < 20; ++id) index_->Insert(id, p);
  auto hits = index_->Range(geo::AABB::Cube(p, 1));
  EXPECT_EQ(hits.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, SpatialIndexTest,
                         ::testing::Values(IndexKind::kGrid,
                                           IndexKind::kRTree,
                                           IndexKind::kMorton),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           switch (info.param) {
                             case IndexKind::kGrid:
                               return "Grid";
                             case IndexKind::kRTree:
                               return "RTree";
                             case IndexKind::kMorton:
                               return "Morton";
                           }
                           return "Unknown";
                         });

// ----------------------------------------------------------------- RTree

TEST(RTreeTest, InvariantsHoldUnderChurn) {
  RTree tree(8);
  Rng rng(77);
  for (int op = 0; op < 3000; ++op) {
    EntityId id = rng.Uniform(400);
    if (rng.Bernoulli(0.3)) {
      tree.Remove(id);
    } else {
      tree.Insert(id, {rng.UniformDouble(0, 1000),
                       rng.UniformDouble(0, 1000),
                       rng.UniformDouble(0, 100)});
    }
    if (op % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << op;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, HeightStaysLogarithmic) {
  RTree tree(16);
  Rng rng(3);
  for (EntityId id = 0; id < 5000; ++id) {
    tree.Insert(id, {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
                     rng.UniformDouble(0, 100)});
  }
  EXPECT_LE(tree.height(), 6);
}

// ----------------------------------------------------------- MortonIndex

TEST(MortonIndexTest, FalsePositiveCounterTracksOverScan) {
  MortonIndex index(kWorld, 8);  // coarse decomposition: more FPs
  Rng rng(9);
  for (EntityId id = 0; id < 1000; ++id) {
    index.Insert(id, {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
                      rng.UniformDouble(0, 100)});
  }
  index.Range(geo::AABB({100, 100, 0}, {300, 300, 100}));
  uint64_t coarse_fp = index.last_false_positives();

  MortonIndex fine(kWorld, 4096);  // fine decomposition: fewer FPs
  Rng rng2(9);
  for (EntityId id = 0; id < 1000; ++id) {
    fine.Insert(id, {rng2.UniformDouble(0, 1000), rng2.UniformDouble(0, 1000),
                     rng2.UniformDouble(0, 100)});
  }
  fine.Range(geo::AABB({100, 100, 0}, {300, 300, 100}));
  EXPECT_LE(fine.last_false_positives(), coarse_fp);
}

// -------------------------------------------------------------- HdovTree

SceneObject MakeObj(EntityId id, geo::Vec3 pos, double radius) {
  SceneObject o;
  o.id = id;
  o.position = pos;
  o.radius = radius;
  o.full_bytes = 1 << 20;
  o.low_bytes = 1 << 12;
  return o;
}

TEST(HdovTreeTest, VisibleObjectsSortedByDov) {
  HdovTree tree(kWorld);
  tree.Insert(MakeObj(1, {10, 0, 0}, 1.0));   // dov = 0.1
  tree.Insert(MakeObj(2, {10, 0, 0}, 5.0));   // dov = 0.5
  tree.Insert(MakeObj(3, {100, 0, 0}, 1.0));  // dov = 0.01

  geo::ViewRegion view{{0, 0, 0}, 500.0};
  auto visible = tree.QueryVisible(view, 0.005);
  ASSERT_EQ(visible.size(), 3u);
  EXPECT_EQ(visible[0].object.id, 2u);
  EXPECT_EQ(visible[1].object.id, 1u);
  EXPECT_EQ(visible[2].object.id, 3u);
}

TEST(HdovTreeTest, ThresholdFiltersSmallDistantObjects) {
  HdovTree tree(kWorld);
  tree.Insert(MakeObj(1, {10, 0, 0}, 5.0));
  tree.Insert(MakeObj(2, {400, 0, 0}, 0.5));  // dov ~0.00125
  geo::ViewRegion view{{0, 0, 0}, 500.0};
  auto visible = tree.QueryVisible(view, 0.01);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible[0].object.id, 1u);
}

TEST(HdovTreeTest, OutOfViewExcluded) {
  HdovTree tree(kWorld);
  tree.Insert(MakeObj(1, {900, 900, 0}, 50.0));
  geo::ViewRegion view{{0, 0, 0}, 100.0};
  EXPECT_TRUE(tree.QueryVisible(view, 0.0001).empty());
}

TEST(HdovTreeTest, PruningVisitsFewNodes) {
  HdovTree tree(kWorld, 8, 8);
  Rng rng(12);
  for (EntityId id = 0; id < 5000; ++id) {
    tree.Insert(MakeObj(id,
                        {rng.UniformDouble(0, 1000),
                         rng.UniformDouble(0, 1000),
                         rng.UniformDouble(0, 100)},
                        rng.UniformDouble(0.1, 2.0)));
  }
  geo::ViewRegion view{{500, 500, 50}, 50.0};
  tree.QueryVisible(view, 0.01);
  uint64_t visited = tree.last_nodes_visited();
  // A 50 m view in a 1000 m world must not touch most of the tree.
  EXPECT_LT(visited, 2000u);
  EXPECT_GT(visited, 0u);
}

TEST(HdovTreeTest, DynamicMoveChangesVisibility) {
  HdovTree tree(kWorld);
  tree.Insert(MakeObj(1, {900, 900, 0}, 5.0));
  geo::ViewRegion view{{0, 0, 0}, 100.0};
  EXPECT_TRUE(tree.QueryVisible(view, 0.001).empty());
  tree.Move(1, {50, 0, 0});
  auto visible = tree.QueryVisible(view, 0.001);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_NEAR(visible[0].dov, 0.1, 1e-9);
}

TEST(HdovTreeTest, RemoveAndRebuild) {
  HdovTree tree(kWorld);
  for (EntityId id = 0; id < 100; ++id) {
    tree.Insert(MakeObj(id, {double(id * 10 % 1000), 50, 0}, 1.0));
  }
  for (EntityId id = 0; id < 50; ++id) tree.Remove(id);
  EXPECT_EQ(tree.size(), 50u);
  tree.Rebuild();
  EXPECT_EQ(tree.size(), 50u);
  geo::ViewRegion view{{500, 50, 0}, 2000.0};
  EXPECT_EQ(tree.QueryVisible(view, 0.0).size(), 50u);
}

TEST(HdovTreeTest, ReinsertReplacesObject) {
  HdovTree tree(kWorld);
  tree.Insert(MakeObj(1, {10, 10, 10}, 1.0));
  tree.Insert(MakeObj(1, {10, 10, 10}, 9.0));  // replace with bigger
  EXPECT_EQ(tree.size(), 1u);
  geo::ViewRegion view{{0, 0, 0}, 100.0};
  auto visible = tree.QueryVisible(view, 0.0);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_DOUBLE_EQ(visible[0].object.radius, 9.0);
}

// ------------------------------------------------------ MovingObjectIndex

TEST(MovingIndexTest, PredictsPositionsAtQueryTime) {
  MovingObjectIndex index(kWorld, 50.0, 10.0);
  geo::MotionState s{{100, 100, 0}, {5, 0, 0}, 0};
  index.Upsert(1, s);
  // At t=10 s the object should be at x=150.
  auto hits = index.RangeAt(geo::AABB::Cube({150, 100, 0}, 2),
                            10 * kMicrosPerSecond);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0].predicted_position.x, 150.0, 1e-9);
  // The object is NOT at its original spot anymore.
  EXPECT_TRUE(index.RangeAt(geo::AABB::Cube({100, 100, 0}, 2),
                            10 * kMicrosPerSecond)
                  .empty());
}

TEST(MovingIndexTest, VelocityClampedToMaxSpeed) {
  MovingObjectIndex index(kWorld, 50.0, 2.0);
  index.Upsert(1, {{0, 0, 0}, {100, 0, 0}, 0});  // absurd speed
  const geo::MotionState* s = index.GetState(1);
  ASSERT_NE(s, nullptr);
  EXPECT_NEAR(s->velocity.Length(), 2.0, 1e-9);
}

TEST(MovingIndexTest, RangeMatchesBruteForceOverTime) {
  MovingObjectIndex index(kWorld, 50.0, 10.0);
  Rng rng(21);
  std::map<EntityId, geo::MotionState> truth;
  for (EntityId id = 0; id < 300; ++id) {
    geo::MotionState s;
    s.position = {rng.UniformDouble(100, 900), rng.UniformDouble(100, 900),
                  rng.UniformDouble(0, 100)};
    s.velocity = {rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5), 0};
    s.t = Micros(rng.Uniform(5)) * kMicrosPerSecond;
    truth[id] = s;
    index.Upsert(id, s);
  }
  for (Micros t : {Micros(6), Micros(10), Micros(20)}) {
    Micros qt = t * kMicrosPerSecond;
    geo::AABB box = geo::AABB::Cube(
        {rng.UniformDouble(200, 800), rng.UniformDouble(200, 800), 50}, 120);
    std::set<EntityId> expected;
    for (const auto& [id, s] : truth) {
      if (box.Contains(s.PositionAt(qt))) expected.insert(id);
    }
    std::set<EntityId> got;
    for (const auto& h : index.RangeAt(box, qt)) got.insert(h.id);
    EXPECT_EQ(got, expected) << "t=" << t;
  }
}

TEST(MovingIndexTest, NearestAtRanksByPredictedDistance) {
  MovingObjectIndex index(kWorld, 50.0, 10.0);
  // Object 1 starts far but moves toward the query point; object 2 starts
  // near but moves away.
  index.Upsert(1, {{200, 500, 0}, {10, 0, 0}, 0});
  index.Upsert(2, {{480, 500, 0}, {-10, 0, 0}, 0});
  // At t=25 s: obj1 at 450, obj2 at 230. Query at (500,500,0).
  auto hits = index.NearestAt({500, 500, 0}, 1, 25 * kMicrosPerSecond);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
}

TEST(MovingIndexTest, RemoveDropsObject) {
  MovingObjectIndex index(kWorld, 50.0, 5.0);
  index.Upsert(1, {{100, 100, 0}, {0, 0, 0}, 0});
  index.Remove(1);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.RangeAt(geo::AABB::Cube({100, 100, 0}, 10), 0).empty());
}

TEST(MovingIndexTest, RefreshReducesOverScan) {
  MovingObjectIndex index(kWorld, 25.0, 10.0);
  Rng rng(31);
  for (EntityId id = 0; id < 500; ++id) {
    index.Upsert(id, {{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
                       50},
                      {rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5), 0},
                      0});
  }
  geo::AABB box = geo::AABB::Cube({500, 500, 50}, 50);
  index.RangeAt(box, 60 * kMicrosPerSecond);  // stale: large expansion
  uint64_t stale_candidates = index.last_candidates();

  // Refresh all states at t=60 s: uncertainty collapses.
  for (EntityId id = 0; id < 500; ++id) {
    const geo::MotionState* s = index.GetState(id);
    geo::MotionState fresh = *s;
    fresh.position = s->PositionAt(60 * kMicrosPerSecond);
    fresh.t = 60 * kMicrosPerSecond;
    index.Upsert(id, fresh);
  }
  index.RangeAt(box, 60 * kMicrosPerSecond);
  EXPECT_LT(index.last_candidates(), stale_candidates);
}

}  // namespace
}  // namespace deluge::index
