#include <gtest/gtest.h>

#include "common/rng.h"
#include "consistency/coherency.h"
#include "consistency/lod.h"
#include "consistency/priority_scheduler.h"
#include "consistency/session.h"
#include "net/simulator.h"

namespace deluge::consistency {
namespace {

// -------------------------------------------------------- CoherencyFilter

TEST(CoherencyFilterTest, FirstUpdateAlwaysSends) {
  CoherencyFilter filter({/*value_bound=*/10.0, /*max_staleness=*/1000000});
  EXPECT_TRUE(filter.Offer(1, {0, 0, 0}, 0));
  EXPECT_EQ(filter.stats().updates_sent, 1u);
}

TEST(CoherencyFilterTest, SmallChangesSuppressed) {
  CoherencyFilter filter({5.0, 100 * kMicrosPerSecond});
  EXPECT_TRUE(filter.Offer(1, {0, 0, 0}, 0));
  EXPECT_FALSE(filter.Offer(1, {1, 0, 0}, 1000));
  EXPECT_FALSE(filter.Offer(1, {3, 0, 0}, 2000));
  EXPECT_TRUE(filter.Offer(1, {10, 0, 0}, 3000));  // 10 m > bound
  EXPECT_EQ(filter.stats().updates_suppressed, 2u);
  EXPECT_EQ(filter.stats().updates_sent, 2u);
}

TEST(CoherencyFilterTest, DeviationMeasuredFromLastSentNotLastOffered) {
  CoherencyFilter filter({5.0, 100 * kMicrosPerSecond});
  ASSERT_TRUE(filter.Offer(1, {0, 0, 0}, 0));
  // Creep by 2 m per offer: each step is small but cumulative drift
  // crosses the bound on the third offer.
  EXPECT_FALSE(filter.Offer(1, {2, 0, 0}, 1));
  EXPECT_FALSE(filter.Offer(1, {4, 0, 0}, 2));
  EXPECT_TRUE(filter.Offer(1, {6, 0, 0}, 3));
}

TEST(CoherencyFilterTest, StalenessForcesRefresh) {
  CoherencyFilter filter({1000.0, kMicrosPerSecond});
  ASSERT_TRUE(filter.Offer(1, {0, 0, 0}, 0));
  EXPECT_FALSE(filter.Offer(1, {0.1, 0, 0}, 100));
  // Value barely moved, but a second has passed.
  EXPECT_TRUE(filter.Offer(1, {0.2, 0, 0}, kMicrosPerSecond + 1));
}

TEST(CoherencyFilterTest, ZeroBoundTransmitsEveryChange) {
  CoherencyFilter filter({0.0, 100 * kMicrosPerSecond});
  EXPECT_TRUE(filter.Offer(1, {0, 0, 0}, 0));
  EXPECT_TRUE(filter.Offer(1, {0.001, 0, 0}, 1));
  EXPECT_EQ(filter.stats().SuppressionRatio(), 0.0);
}

TEST(CoherencyFilterTest, PerEntityContracts) {
  CoherencyFilter filter({100.0, 100 * kMicrosPerSecond});
  filter.SetContract(2, {0.5, 100 * kMicrosPerSecond});  // tight
  ASSERT_TRUE(filter.Offer(1, {0, 0, 0}, 0));
  ASSERT_TRUE(filter.Offer(2, {0, 0, 0}, 0));
  EXPECT_FALSE(filter.Offer(1, {3, 0, 0}, 1));  // loose contract holds
  EXPECT_TRUE(filter.Offer(2, {3, 0, 0}, 1));   // tight contract violated
}

TEST(CoherencyFilterTest, MirrorValueTracksLastSent) {
  CoherencyFilter filter({5.0, 100 * kMicrosPerSecond});
  geo::Vec3 mirror;
  EXPECT_FALSE(filter.MirrorValue(1, &mirror));
  filter.Offer(1, {1, 2, 3}, 0);
  filter.Offer(1, {2, 2, 3}, 1);  // suppressed
  ASSERT_TRUE(filter.MirrorValue(1, &mirror));
  EXPECT_EQ(mirror, (geo::Vec3{1, 2, 3}));
}

TEST(CoherencyFilterTest, ScalarVariant) {
  CoherencyFilter filter({2.0, 100 * kMicrosPerSecond});
  EXPECT_TRUE(filter.OfferScalar(7, 10.0, 0));
  EXPECT_FALSE(filter.OfferScalar(7, 11.0, 1));
  EXPECT_TRUE(filter.OfferScalar(7, 13.0, 2));
}

TEST(CoherencyFilterTest, DeviationErrorIsBoundedByContract) {
  CoherencyFilter filter({5.0, 1000 * kMicrosPerSecond});
  Rng rng(3);
  geo::Vec3 pos{0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    pos += {rng.Gaussian(0, 0.2), rng.Gaussian(0, 0.2), 0};
    filter.Offer(1, pos, i);
  }
  // The mirror's error at every suppression decision stayed <= bound.
  EXPECT_LE(filter.stats().deviation_max, 5.0);
  EXPECT_GT(filter.stats().SuppressionRatio(), 0.5);
}

// ------------------------------------------------------------ LodSelector

TEST(LodSelectorTest, InfiniteBudgetPicksAllFull) {
  LodSelector selector;
  std::vector<LodCandidate> cands = {{1, 100, 10, 1.0}, {2, 200, 20, 2.0}};
  auto choices = selector.Select(cands, 1u << 30);
  EXPECT_EQ(choices[0].resolution, Resolution::kFull);
  EXPECT_EQ(choices[1].resolution, Resolution::kFull);
  EXPECT_EQ(LodSelector::TotalBytes(choices), 300u);
}

TEST(LodSelectorTest, ZeroBudgetSkipsAll) {
  LodSelector selector;
  auto choices = selector.Select({{1, 100, 10, 1.0}}, 0);
  EXPECT_EQ(choices[0].resolution, Resolution::kSkip);
  EXPECT_EQ(choices[0].bytes, 0u);
}

TEST(LodSelectorTest, TightBudgetDegradesToLow) {
  LodSelector selector(0.5);
  std::vector<LodCandidate> cands = {{1, 1000, 50, 1.0}};
  auto choices = selector.Select(cands, 100);
  EXPECT_EQ(choices[0].resolution, Resolution::kLow);
  EXPECT_EQ(choices[0].bytes, 50u);
}

TEST(LodSelectorTest, ImportantAssetsWinTheBudget) {
  LodSelector selector(0.4);
  std::vector<LodCandidate> cands = {
      {1, 100, 10, 10.0},  // important
      {2, 100, 10, 0.1},   // unimportant
  };
  auto choices = selector.Select(cands, 110);
  EXPECT_EQ(choices[0].resolution, Resolution::kFull);
  EXPECT_EQ(choices[1].resolution, Resolution::kLow);
}

TEST(LodSelectorTest, BudgetNeverExceeded) {
  LodSelector selector;
  Rng rng(7);
  std::vector<LodCandidate> cands;
  for (uint64_t i = 0; i < 100; ++i) {
    uint64_t low = 10 + rng.Uniform(100);
    cands.push_back({i, low + rng.Uniform(1000), low,
                     rng.UniformDouble(0.1, 5.0)});
  }
  for (uint64_t budget : {0ull, 100ull, 1000ull, 10000ull, 100000ull}) {
    auto choices = selector.Select(cands, budget);
    EXPECT_LE(LodSelector::TotalBytes(choices), budget);
  }
}

TEST(LodSelectorTest, MoreBudgetNeverLowersUtility) {
  LodSelector selector;
  Rng rng(11);
  std::vector<LodCandidate> cands;
  for (uint64_t i = 0; i < 50; ++i) {
    uint64_t low = 10 + rng.Uniform(50);
    cands.push_back({i, low + rng.Uniform(500), low,
                     rng.UniformDouble(0.1, 3.0)});
  }
  double prev = -1.0;
  for (uint64_t budget = 0; budget <= 20000; budget += 1000) {
    double u = LodSelector::TotalUtility(selector.Select(cands, budget));
    EXPECT_GE(u, prev - 1e-9);
    prev = u;
  }
}

// --------------------------------------------------- TransmissionScheduler

TEST(TxSchedulerTest, FifoDeliversInOrder) {
  net::Simulator sim;
  TransmissionScheduler sched(&sim, 1000.0, TxPolicy::kFifo);  // 1 KB/s
  std::vector<uint64_t> order;
  for (uint64_t i = 0; i < 3; ++i) {
    PendingUpdate u;
    u.id = i;
    u.bytes = 100;  // 100 ms each
    u.qos = QosClass::kBulk;
    u.on_delivered = [&order, i](Micros) { order.push_back(i); };
    sched.Submit(std::move(u));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(sched.total_delivered(), 3u);
  EXPECT_EQ(sim.Now(), 300 * kMicrosPerMilli);
}

TEST(TxSchedulerTest, StrictPriorityJumpsBulkBacklog) {
  net::Simulator sim;
  TransmissionScheduler sched(&sim, 1000.0, TxPolicy::kStrictPriority);
  Micros critical_delivery = -1;
  // 10 bulk updates of 1000 bytes each = 10 s of backlog.
  for (int i = 0; i < 10; ++i) {
    PendingUpdate u;
    u.bytes = 1000;
    u.qos = QosClass::kBulk;
    sched.Submit(std::move(u));
  }
  PendingUpdate critical;
  critical.bytes = 100;
  critical.qos = QosClass::kRealtime;
  critical.on_delivered = [&](Micros t) { critical_delivery = t; };
  sched.Submit(std::move(critical));
  sim.Run();
  // The critical update waits only for the in-flight bulk item, not the
  // whole backlog: <= 1 s (current transfer) + 0.1 s (its own).
  EXPECT_LE(critical_delivery, Micros(1.2 * kMicrosPerSecond));
}

TEST(TxSchedulerTest, FifoMakesCriticalWaitBehindBacklog) {
  net::Simulator sim;
  TransmissionScheduler sched(&sim, 1000.0, TxPolicy::kFifo);
  Micros critical_delivery = -1;
  for (int i = 0; i < 10; ++i) {
    PendingUpdate u;
    u.bytes = 1000;
    u.qos = QosClass::kBulk;
    sched.Submit(std::move(u));
  }
  PendingUpdate critical;
  critical.bytes = 100;
  critical.qos = QosClass::kRealtime;
  critical.deadline = 2 * kMicrosPerSecond;
  critical.on_delivered = [&](Micros t) { critical_delivery = t; };
  sched.Submit(std::move(critical));
  sim.Run();
  EXPECT_GE(critical_delivery, Micros(10 * kMicrosPerSecond));
  EXPECT_EQ(sched.stats_for(QosClass::kRealtime).deadline_misses, 1u);
}

TEST(TxSchedulerTest, EdfOrdersWithinClass) {
  net::Simulator sim;
  TransmissionScheduler sched(&sim, 1000.0, TxPolicy::kEdfWithinClass);
  std::vector<uint64_t> order;
  // Seed one dummy so the interesting items queue behind it and the
  // scheduler must choose among them.
  PendingUpdate dummy;
  dummy.bytes = 100;
  dummy.qos = QosClass::kInteractive;
  sched.Submit(std::move(dummy));

  for (uint64_t i = 0; i < 3; ++i) {
    PendingUpdate u;
    u.id = i;
    u.bytes = 100;
    u.qos = QosClass::kInteractive;
    u.deadline = Micros((3 - i) * kMicrosPerSecond);  // later items more urgent
    u.on_delivered = [&order, i](Micros) { order.push_back(i); };
    sched.Submit(std::move(u));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<uint64_t>{2, 1, 0}));
}

TEST(TxSchedulerTest, StatsPerClass) {
  net::Simulator sim;
  TransmissionScheduler sched(&sim, 1e6, TxPolicy::kStrictPriority);
  for (int i = 0; i < 5; ++i) {
    PendingUpdate u;
    u.bytes = 1000;
    u.qos = i % 2 == 0 ? QosClass::kInteractive : QosClass::kTelemetry;
    sched.Submit(std::move(u));
  }
  sim.Run();
  EXPECT_EQ(sched.stats_for(QosClass::kInteractive).delivered, 3u);
  EXPECT_EQ(sched.stats_for(QosClass::kTelemetry).delivered, 2u);
  EXPECT_EQ(sched.queued(), 0u);
}

// ---------------------------------------------------- session guarantees

TEST(WriteStampTest, TotalOrderByCounterThenWriter) {
  WriteStamp a{1, 1};
  WriteStamp b{1, 2};
  WriteStamp c{2, 1};
  EXPECT_TRUE(a < b);   // same counter: writer id breaks the tie
  EXPECT_TRUE(b < c);   // counter dominates the writer id
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(c < a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a == (WriteStamp{1, 1}));
  EXPECT_TRUE(a != b);
}

TEST(SessionTest, FloorIsZeroUntilObserved) {
  Session session;
  EXPECT_TRUE(session.FloorFor("k").IsZero());
  EXPECT_TRUE(session.Satisfies("k", WriteStamp{}));  // trivially met
}

TEST(SessionTest, WriteRaisesTheFloorPerKey) {
  Session session;
  session.ObserveWrite("a", {3, 1});
  EXPECT_EQ(session.FloorFor("a").counter, 3u);
  EXPECT_TRUE(session.FloorFor("b").IsZero());  // floors are per key
  EXPECT_TRUE(session.Satisfies("a", {3, 1}));
  EXPECT_TRUE(session.Satisfies("a", {4, 1}));  // anything newer is fine
  EXPECT_FALSE(session.Satisfies("a", {2, 9}));
}

TEST(SessionTest, FloorIsMonotoneUnderStaleObservations) {
  Session session;
  session.ObserveWrite("k", {5, 1});
  session.ObserveRead("k", {3, 1});  // a stale read must not lower it
  EXPECT_EQ(session.FloorFor("k").counter, 5u);
  session.ObserveRead("k", {7, 2});  // a fresher read raises it
  EXPECT_EQ(session.FloorFor("k").counter, 7u);
  EXPECT_FALSE(session.Satisfies("k", {6, 9}));
}

TEST(SessionTest, ReadModeNamesAreStable) {
  EXPECT_EQ(ReadModeName(ReadMode::kEventual), "eventual");
  EXPECT_EQ(ReadModeName(ReadMode::kReadYourWrites), "read_your_writes");
}

}  // namespace
}  // namespace deluge::consistency
