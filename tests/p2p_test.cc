#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "p2p/chord.h"

namespace deluge::p2p {
namespace {

class ChordTest : public ::testing::Test {
 protected:
  net::Simulator sim_;
  net::Network net_{&sim_};
  net::SimTransport transport_{&net_, &sim_};
  ChordRing ring_{&transport_};

  std::vector<RingId> AddPeers(int n) {
    std::vector<RingId> ids;
    for (int i = 0; i < n; ++i) {
      ids.push_back(ring_.AddPeer("peer" + std::to_string(i)));
    }
    return ids;
  }

  LookupResult GetSync(RingId origin, const std::string& key) {
    LookupResult out;
    ring_.Get(origin, key, [&](const LookupResult& r) { out = r; });
    sim_.Run();
    return out;
  }

  LookupResult PutSync(RingId origin, const std::string& key,
                       const std::string& value) {
    LookupResult out;
    ring_.Put(origin, key, value, [&](const LookupResult& r) { out = r; });
    sim_.Run();
    return out;
  }
};

TEST_F(ChordTest, SingleNodeOwnsEverything) {
  auto ids = AddPeers(1);
  auto put = PutSync(ids[0], "k", "v");
  EXPECT_TRUE(put.found);
  EXPECT_EQ(put.owner, ids[0]);
  EXPECT_EQ(put.hops, 0u);
  auto get = GetSync(ids[0], "k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "v");
}

TEST_F(ChordTest, PutThenGetFromAnyOrigin) {
  auto ids = AddPeers(32);
  ASSERT_TRUE(PutSync(ids[0], "avatar:alice", "state1").found);
  for (RingId origin : {ids[3], ids[17], ids[31]}) {
    auto r = GetSync(origin, "avatar:alice");
    EXPECT_TRUE(r.found) << origin;
    EXPECT_EQ(r.value, "state1");
  }
}

TEST_F(ChordTest, MissingKeyReportsOwnerButNotFound) {
  auto ids = AddPeers(8);
  auto r = GetSync(ids[0], "ghost");
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.owner, ring_.OwnerOf(ChordRing::KeyId("ghost")));
}

TEST_F(ChordTest, LookupReachesTheResponsiblePeer) {
  auto ids = AddPeers(64);
  for (int i = 0; i < 50; ++i) {
    std::string key = "key" + std::to_string(i);
    auto r = GetSync(ids[size_t(i) % ids.size()], key);
    EXPECT_EQ(r.owner, ring_.OwnerOf(ChordRing::KeyId(key))) << key;
  }
}

TEST_F(ChordTest, HopsAreLogarithmic) {
  auto ids = AddPeers(256);
  for (int i = 0; i < 200; ++i) {
    GetSync(ids[size_t(i) % ids.size()], "key" + std::to_string(i));
  }
  // log2(256) = 8; greedy Chord averages ~0.5 log2(n).
  EXPECT_LT(ring_.hop_histogram().mean(), 8.0);
  EXPECT_LE(ring_.hop_histogram().max(), 16);
  EXPECT_GT(ring_.hop_histogram().mean(), 1.0);
}

TEST_F(ChordTest, KeysMigrateWhenPeerJoins) {
  auto ids = AddPeers(4);
  ASSERT_TRUE(PutSync(ids[0], "durable", "gold").found);
  // 60 more peers join; the key must still be found.
  for (int i = 0; i < 60; ++i) {
    ring_.AddPeer("late" + std::to_string(i));
  }
  auto r = GetSync(ids[0], "durable");
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "gold");
  EXPECT_EQ(r.owner, ring_.OwnerOf(ChordRing::KeyId("durable")));
}

TEST_F(ChordTest, KeysMigrateWhenPeerLeaves) {
  auto ids = AddPeers(16);
  ASSERT_TRUE(PutSync(ids[0], "persistent", "data").found);
  // Remove the current owner of the key.
  RingId owner = ring_.OwnerOf(ChordRing::KeyId("persistent"));
  // Pick a surviving origin different from the owner.
  RingId origin = ids[0] == owner ? ids[1] : ids[0];
  ASSERT_TRUE(ring_.RemovePeer(owner).ok());
  auto r = GetSync(origin, "persistent");
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "data");
}

TEST_F(ChordTest, RemoveLastPeerRejected) {
  auto ids = AddPeers(1);
  EXPECT_TRUE(ring_.RemovePeer(ids[0]).IsInvalidArgument());
  EXPECT_TRUE(ring_.RemovePeer(12345).IsNotFound());
}

TEST_F(ChordTest, ChurnStorm) {
  auto ids = AddPeers(32);
  // Store 50 keys.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        PutSync(ids[0], "k" + std::to_string(i), "v" + std::to_string(i))
            .found);
  }
  // Heavy churn: 20 joins and 20 leaves interleaved.
  std::vector<RingId> added;
  for (int i = 0; i < 20; ++i) {
    added.push_back(ring_.AddPeer("churn" + std::to_string(i)));
    if (i < int(ids.size()) - 1) {
      ASSERT_TRUE(ring_.RemovePeer(ids[size_t(i) + 1]).ok());
    }
  }
  // Every key survives, reachable from a stable origin.
  for (int i = 0; i < 50; ++i) {
    auto r = GetSync(ids[0], "k" + std::to_string(i));
    EXPECT_TRUE(r.found) << "k" << i;
    EXPECT_EQ(r.value, "v" + std::to_string(i));
  }
}

TEST_F(ChordTest, LatencyReflectsNetworkAndHops) {
  net_.default_link().latency = 10 * kMicrosPerMilli;
  net_.default_link().bandwidth_bytes_per_sec = 0;
  auto ids = AddPeers(64);
  auto r = GetSync(ids[0], "somekey");
  // Each overlay hop pays at least one network traversal.
  EXPECT_GE(r.latency, Micros(r.hops) * 10 * kMicrosPerMilli);
}

TEST(ChordKeyTest, KeyIdDeterministic) {
  EXPECT_EQ(ChordRing::KeyId("a"), ChordRing::KeyId("a"));
  EXPECT_NE(ChordRing::KeyId("a"), ChordRing::KeyId("b"));
}

TEST_F(ChordTest, SuccessorsOfWalksTheRingInOrder) {
  auto ids = AddPeers(8);
  std::vector<RingId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  const RingId target = ChordRing::KeyId("some object");
  auto succ = ring_.SuccessorsOf(target, 3);
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_EQ(succ[0], ring_.OwnerOf(target));
  // Expected: the owner and the next peers clockwise, wrapping.
  auto it = std::lower_bound(sorted.begin(), sorted.end(), target);
  if (it == sorted.end()) it = sorted.begin();
  for (size_t i = 0; i < succ.size(); ++i) {
    EXPECT_EQ(succ[i], *it) << "position " << i;
    if (++it == sorted.end()) it = sorted.begin();
  }
  // Asking for more successors than peers returns every peer once.
  auto all = ring_.SuccessorsOf(target, 100);
  EXPECT_EQ(all.size(), ids.size());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, sorted);
}

TEST_F(ChordTest, LookupCompletesWhenTheOwnerIsDead) {
  auto ids = AddPeers(32);
  const RingId owner = ring_.OwnerOf(ChordRing::KeyId("hot-key"));
  ASSERT_TRUE(PutSync(ids[0], "hot-key", "v").found);
  // Fail-stop the owner's node without removing it from the overlay:
  // fingers and successor pointers still reference it, as they would
  // between a real crash and the next stabilization round.
  net_.SetNodeUp(ring_.NodeIdOf(owner), false);

  RingId origin = ids[0] == owner ? ids[1] : ids[0];
  auto r = GetSync(origin, "hot-key");
  // The successor-list fallback answers from the next live peer instead
  // of dropping the lookup: the value (stored only on the dead owner) is
  // gone, but the routing layer still terminates.
  EXPECT_FALSE(r.found);
  EXPECT_NE(r.owner, owner);
  EXPECT_GT(r.hops, 0u);
}

}  // namespace
}  // namespace deluge::p2p
