// The QoS class model (DESIGN.md §13): taxonomy invariants, the
// policy table, wire compatibility of class-tagged encodings (frames,
// events, tuples) with the pre-QoS formats, the SLO-attainment query,
// RTT-tuned replica timeouts, and the E25 mixed-scenario composition.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/qos.h"
#include "core/scenarios.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "pubsub/subscription.h"
#include "replica/replicated_store.h"
#include "stream/tuple.h"

namespace {

using namespace deluge;  // NOLINT

TEST(QosTaxonomyTest, RankOrdersClassesMostImportantFirst) {
  // Numeric order is rank order; QosRank bridges "bigger wins" sites.
  EXPECT_GT(QosRank(QosClass::kRealtime), QosRank(QosClass::kInteractive));
  EXPECT_GT(QosRank(QosClass::kInteractive), QosRank(QosClass::kTelemetry));
  EXPECT_GT(QosRank(QosClass::kTelemetry), QosRank(QosClass::kBulk));
  EXPECT_EQ(QosRank(QosClass::kBulk), 0);
  EXPECT_EQ(kAllQosClasses.front(), QosClass::kRealtime);
  EXPECT_EQ(kAllQosClasses.back(), QosClass::kBulk);
}

TEST(QosTaxonomyTest, ByteClampAndWireTagRoundTrip) {
  for (QosClass c : kAllQosClasses) {
    EXPECT_EQ(QosClassFromByte(uint8_t(c)), c);
    EXPECT_EQ(QosFromWireTag(QosWireTag(c)), c);
  }
  // Out-of-range bytes and unknown future wire tags degrade to kBulk.
  EXPECT_EQ(QosClassFromByte(4), QosClass::kBulk);
  EXPECT_EQ(QosClassFromByte(255), QosClass::kBulk);
  EXPECT_EQ(QosFromWireTag(0), QosClass::kBulk);  // legacy untagged
  EXPECT_EQ(QosFromWireTag(5), QosClass::kBulk);
  EXPECT_EQ(QosFromWireTag(255), QosClass::kBulk);
  // kBulk is the identity tag: default-class encodings stay
  // byte-identical to the legacy format.
  EXPECT_EQ(QosWireTag(QosClass::kBulk), 0);
}

TEST(QosPolicyTest, DefaultTableMatchesTheApplicationMix) {
  const QosPolicy& policy = QosPolicy::Default();
  const QosTarget& rt = policy.target(QosClass::kRealtime);
  const QosTarget& ia = policy.target(QosClass::kInteractive);
  const QosTarget& tm = policy.target(QosClass::kTelemetry);
  const QosTarget& bk = policy.target(QosClass::kBulk);

  // Freshness and delivery tighten with importance.
  EXPECT_LT(rt.freshness_us, ia.freshness_us);
  EXPECT_LT(ia.freshness_us, tm.freshness_us);
  EXPECT_LT(rt.delivery_p99_us, ia.delivery_p99_us);
  EXPECT_LT(ia.delivery_p99_us, tm.delivery_p99_us);
  EXPECT_LT(tm.delivery_p99_us, bk.delivery_p99_us);
  // Only telemetry demands durable commits; realtime never does (a
  // fresher update supersedes a lost one).
  EXPECT_FALSE(rt.durable_commit);
  EXPECT_TRUE(tm.durable_commit);
  EXPECT_FALSE(bk.durable_commit);
  // Retry budgets grow as urgency drops: kRealtime fails fast.
  EXPECT_LT(rt.max_retry_attempts, ia.max_retry_attempts);
  EXPECT_LT(ia.max_retry_attempts, bk.max_retry_attempts);
  // Weighted-fair shares decrease monotonically.
  EXPECT_GT(rt.weight, ia.weight);
  EXPECT_GT(ia.weight, tm.weight);
  EXPECT_GT(tm.weight, bk.weight);
  // Out-of-range classes clamp instead of reading past the table.
  EXPECT_EQ(policy.target(QosClass(200)).weight, bk.weight);
}

// --- Wire compatibility -----------------------------------------------

TEST(QosWireCompatTest, FrameHeaderRoundTripsEveryClass) {
  for (QosClass c : kAllQosClasses) {
    net::Message m;
    m.from = 1;
    m.to = 2;
    m.type = 0x77;
    m.payload = common::Buffer(std::string("hello"));
    m.size_bytes = 4096;
    m.qos = c;
    const std::string frame = net::EncodeFrame(m);

    net::FrameDecoder decoder;
    std::vector<net::Message> out;
    ASSERT_TRUE(decoder.Feed(frame.data(), frame.size(), &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].qos, c);
    EXPECT_EQ(out[0].size_bytes, 4096u);
    EXPECT_EQ(out[0].payload.view(), "hello");
  }
}

TEST(QosWireCompatTest, LegacyUntaggedFrameDecodesAsBulk) {
  net::Message m;
  m.from = 3;
  m.to = 4;
  m.type = 9;
  m.payload = common::Buffer(std::string("payload"));
  m.size_bytes = 123;
  m.qos = QosClass::kBulk;
  std::string frame = net::EncodeFrame(m);
  // The default class writes tag 0 into the size field's top byte —
  // exactly what legacy encoders (sizes < 2^56, zero top bits) wrote.
  // Offset 23 is the most-significant byte of the little-endian
  // u64 at bytes 16..23 (after length/from/to/type).
  ASSERT_EQ(frame[23], 0);

  // A frame from a *newer* sender with an unknown tag still decodes,
  // degrading to kBulk rather than failing.
  frame[23] = char(0x09);
  net::FrameDecoder decoder;
  std::vector<net::Message> out;
  ASSERT_TRUE(decoder.Feed(frame.data(), frame.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].qos, QosClass::kBulk);
  EXPECT_EQ(out[0].size_bytes, 123u);
}

TEST(QosWireCompatTest, EventEncodingRoundTripsEveryClass) {
  for (QosClass c : kAllQosClasses) {
    pubsub::Event e;
    e.topic = "mirror.position";
    e.position = geo::Vec3{1, 2, 3};
    e.bytes = 512;
    e.qos = c;
    e.published_at = 777;
    e.payload.key = "42";
    pubsub::Event back;
    ASSERT_TRUE(pubsub::Event::Decode(e.EnsureEncoded().slice(), &back));
    EXPECT_EQ(back.qos, c);
    EXPECT_EQ(back.published_at, 777);
    EXPECT_EQ(back.topic, "mirror.position");
  }
}

TEST(QosWireCompatTest, LegacyEventPriorityByteDecodesAsBulk) {
  pubsub::Event e;  // empty topic, no position: fixed layout
  e.bytes = 99;
  e.qos = QosClass::kBulk;
  std::string wire(e.EnsureEncoded().view());
  // Layout: varint topic_len (1) | flags (1) | bytes fixed64 (8) |
  // qos tag (1) | published_at (8) | payload.  The tag byte sits at
  // offset 10 — and the default class leaves it 0, the legacy value.
  ASSERT_EQ(wire[10], 0);

  wire[10] = char(0xC8);  // unknown future tag
  pubsub::Event back;
  ASSERT_TRUE(pubsub::Event::Decode(common::Slice(wire), &back));
  EXPECT_EQ(back.qos, QosClass::kBulk);
  EXPECT_EQ(back.bytes, 99u);
}

TEST(QosWireCompatTest, TupleSpaceByteRoundTripsSpaceAndClass) {
  for (QosClass c : kAllQosClasses) {
    for (stream::Space space :
         {stream::Space::kPhysical, stream::Space::kVirtual}) {
      stream::Tuple t;
      t.event_time = 1234;
      t.space = space;
      t.qos = c;
      t.key = "k";
      stream::Tuple back;
      ASSERT_TRUE(stream::Tuple::Decode(t.Encode().slice(), &back));
      EXPECT_EQ(back.space, space);
      EXPECT_EQ(back.qos, c);
    }
  }
}

TEST(QosWireCompatTest, LegacyTupleSpaceByteDecodesAsBulk) {
  stream::Tuple t;
  t.event_time = 5;
  t.space = stream::Space::kVirtual;
  t.qos = QosClass::kBulk;
  std::string wire;
  t.EncodeTo(&wire);
  // space_qos byte follows the fixed64 event_time; legacy encoders
  // wrote only 0/1 (the space bit), which is what kBulk emits.
  ASSERT_EQ(uint8_t(wire[8]), 1u);

  wire[8] = char(uint8_t(6 << 1) | 1);  // unknown tag, same space bit
  stream::Tuple back;
  ASSERT_TRUE(stream::Tuple::Decode(common::Slice(wire), &back));
  EXPECT_EQ(back.space, stream::Space::kVirtual);
  EXPECT_EQ(back.qos, QosClass::kBulk);
}

// --- SLO attainment ---------------------------------------------------

TEST(HistogramFractionBelowTest, EmptyHistogramIsVacuouslyMet) {
  Histogram h;
  EXPECT_EQ(h.FractionBelow(1000), 1.0);
}

TEST(HistogramFractionBelowTest, CountsObservationsAtOrBelowThreshold) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(5);
  for (int i = 0; i < 50; ++i) h.Record(2000);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5), 0.5);
  EXPECT_NEAR(h.FractionBelow(1000), 0.5, 0.01);
  EXPECT_EQ(h.FractionBelow(1 << 20), 1.0);
  EXPECT_EQ(h.FractionBelow(1), 0.0);
  EXPECT_EQ(h.FractionBelow(-1), 0.0);
}

TEST(HistogramFractionBelowTest, AgreesWithPercentileAtTheTail) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const double p99 = h.Percentile(99.0);
  // At the p99 value, ~99% of observations sit at or below.
  EXPECT_NEAR(h.FractionBelow(int64_t(p99)), 0.99, 0.02);
}

// --- RTT-tuned replica timeouts ---------------------------------------

TEST(RttTimeoutTuningTest, TimeoutsTrackMeasuredRttWithinClamps) {
  replica::ReplicaOptions untouched;
  const Micros default_write = untouched.write_timeout;
  // A floor above any plausible 4×p99 in this process isolates the
  // test from RTT samples other tests may have recorded.
  replica::TuneTimeoutsFromRtt(&untouched, /*floor=*/0,
                               /*cap=*/10 * kMicrosPerSecond);

  obs::StatsScope scope("transport");
  auto* rtt = scope.histogram("rtt_us");
  for (int i = 0; i < 1000; ++i) rtt->Record(2000);  // steady 2 ms RTT

  replica::ReplicaOptions tuned;
  replica::TuneTimeoutsFromRtt(&tuned, /*floor=*/kMicrosPerMilli,
                               /*cap=*/10 * kMicrosPerSecond);
  // 4×p99 of a (possibly pre-polluted) distribution whose new mass
  // sits at 2 ms: the timeout must leave the static default and land
  // in the clamp window.
  EXPECT_GE(tuned.write_timeout, kMicrosPerMilli);
  EXPECT_LE(tuned.write_timeout, 10 * kMicrosPerSecond);
  EXPECT_EQ(tuned.write_timeout, tuned.read_timeout);
  EXPECT_NE(tuned.write_timeout, default_write);

  // The floor and cap clamp both ways.
  replica::ReplicaOptions floored;
  replica::TuneTimeoutsFromRtt(&floored, /*floor=*/kMicrosPerSecond,
                               /*cap=*/2 * kMicrosPerSecond);
  EXPECT_GE(floored.write_timeout, kMicrosPerSecond);
  replica::ReplicaOptions capped;
  replica::TuneTimeoutsFromRtt(&capped, /*floor=*/1, /*cap=*/100);
  EXPECT_LE(capped.write_timeout, 100);
}

// --- E25 composition --------------------------------------------------

TEST(ScenarioTest, MixedScenarioExercisesEveryTierAndMeetsSlos) {
  core::ScenarioOptions options;
  options.ticks = 12;
  options.crowd_entities = 96;
  options.ar_entities = 48;
  options.patients = 16;
  options.num_shards = 2;
  // No storage_dir: the storage leg is optional and skipped.
  core::MixedScenario scenario(options);
  const core::ScenarioTotals totals = scenario.Run();

  EXPECT_GT(totals.updates_ingested, 0u);
  EXPECT_GT(totals.mirror_refreshes, 0u);
  EXPECT_GT(totals.broker_deliveries, 0u);
  EXPECT_GT(totals.nav_completed, 0u);
  EXPECT_GT(totals.remote_forwarded, 0u);
  EXPECT_GT(totals.remote_received, 0u);
  EXPECT_EQ(totals.telemetry_commits, 0u);  // storage leg skipped

  const core::SloReport report = core::ComputeSloReport();
  const core::LegSlo* delivery =
      report.leg(QosClass::kRealtime, "broker.delivery_us");
  ASSERT_NE(delivery, nullptr);
  EXPECT_GT(delivery->samples, 0u);
  EXPECT_TRUE(delivery->met);
  // Every class has a full row of legs, and the report is printable.
  for (QosClass c : kAllQosClasses) {
    EXPECT_EQ(report.for_class(c).legs.size(), 5u);
  }
  EXPECT_NE(report.ToString().find("realtime"), std::string::npos);
}

}  // namespace
