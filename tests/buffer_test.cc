#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.h"
#include "common/small_vec.h"
#include "obs/metrics.h"
#include "pubsub/broker.h"
#include "pubsub/delivery_queue.h"
#include "runtime/buffer_pool.h"
#include "stream/tuple.h"

namespace deluge {
namespace {

using common::Buffer;
using common::BufferArena;
using common::BufferWriter;
using common::Slice;

// ------------------------------------------------------------------ Slice

TEST(SliceTest, ViewsAndSubslices) {
  std::string s = "hello world";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 11u);
  EXPECT_EQ(sl.view(), "hello world");
  EXPECT_EQ(sl.subslice(6, 5).ToString(), "world");
  sl.remove_prefix(6);
  EXPECT_EQ(sl, Slice("world"));
}

// ----------------------------------------------------------------- Buffer

TEST(BufferTest, StringMoveWrapDoesNotCopyBytes) {
  std::string s(1000, 'x');
  const char* original = s.data();
  Buffer b(std::move(s));
  EXPECT_EQ(b.data(), original);  // moved, not copied
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(b.use_count(), 1u);
}

TEST(BufferTest, CopiesShareBytesAndRefcount) {
  Buffer a(std::string("payload"));
  Buffer b = a;
  Buffer c;
  c = b;
  EXPECT_EQ(a.data(), b.data());  // same backing bytes, no duplication
  EXPECT_EQ(a.data(), c.data());
  EXPECT_EQ(a.use_count(), 3u);
  b.Reset();
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_TRUE(b.empty());
  c = Buffer();
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(a, "payload");
}

TEST(BufferTest, MoveTransfersWithoutRefcountChange) {
  Buffer a(std::string("abc"));
  Buffer b = std::move(a);
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b, "abc");
}

TEST(BufferTest, CopyOfCountsBytesCopiedSharingDoesNot) {
  obs::Counter* copied =
      obs::MetricsRegistry::Global().GetCounter("buffer.bytes_copied");
  const uint64_t before = copied->Value();

  Buffer original(std::string(500, 'a'));
  Buffer shared1 = original;  // refcount bump — must not count
  Buffer shared2 = original;
  EXPECT_EQ(copied->Value(), before);

  Buffer duplicate = Buffer::CopyOf(original.slice());
  EXPECT_EQ(copied->Value(), before + 500);
  EXPECT_NE(duplicate.data(), original.data());
  EXPECT_EQ(duplicate, original.view());
}

TEST(BufferTest, RefcountDropToZeroReturnsSlabToArena) {
  BufferArena arena;
  const char* slab_bytes = nullptr;
  {
    Buffer b = Buffer::CopyOf(Slice("0123456789"), &arena);
    slab_bytes = b.data();
    EXPECT_EQ(arena.slabs_created(), 1u);
    EXPECT_EQ(arena.slabs_recycled(), 0u);
    Buffer c = b;  // second ref: drop of one handle must not recycle
    c.Reset();
    EXPECT_EQ(arena.slabs_recycled(), 0u);
  }
  // Last ref dropped: slab is on the free list, not freed to the heap.
  EXPECT_EQ(arena.slabs_recycled(), 1u);
  EXPECT_EQ(arena.free_slabs(), 1u);

  // Next same-class allocation reuses the identical slab.
  Buffer reused = Buffer::CopyOf(Slice("abcdefghij"), &arena);
  EXPECT_EQ(arena.slabs_reused(), 1u);
  EXPECT_EQ(arena.slabs_created(), 1u);
  EXPECT_EQ(reused.data(), slab_bytes);
}

TEST(BufferTest, OversizedAllocationsBypassTheFreeLists) {
  BufferArena arena;
  { Buffer b = Buffer::CopyOf(Slice(std::string(100 * 1024, 'z')), &arena); }
  EXPECT_EQ(arena.slabs_created(), 1u);
  EXPECT_EQ(arena.slabs_recycled(), 0u);  // destroyed, not pooled
  EXPECT_EQ(arena.free_slabs(), 0u);
}

TEST(BufferTest, BufferPoolPayloadAllocationDrawsFromDefaultArena) {
  BufferArena& arena = runtime::BufferPool::payload_arena();
  const uint64_t recycled_before = arena.slabs_recycled();
  const uint64_t reused_before = arena.slabs_reused();
  { Buffer b = runtime::BufferPool::AllocatePayload(Slice("pool payload")); }
  EXPECT_EQ(arena.slabs_recycled(), recycled_before + 1);
  Buffer again = runtime::BufferPool::AllocatePayload(Slice("pool payload"));
  EXPECT_EQ(arena.slabs_reused(), reused_before + 1);
}

TEST(BufferWriterTest, SealsExactSizeBuffer) {
  BufferArena arena;
  BufferWriter w(5, &arena);
  std::memcpy(w.data(), "horse", 5);
  Buffer b = w.Finish();
  EXPECT_EQ(b, "horse");
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_TRUE(w.Finish().empty());  // writer is spent
}

TEST(BufferWriterTest, AbandonedWriterReturnsSlab) {
  BufferArena arena;
  { BufferWriter w(64, &arena); }
  EXPECT_EQ(arena.slabs_created(), 1u);
  EXPECT_EQ(arena.free_slabs(), 1u);
}

// Cross-thread lifetime: each thread owns a Buffer handle onto one
// shared backing slab (a handle is thread-local; the refcounted bytes
// are what threads share), makes and drops further copies while reading
// the bytes, and the slab must survive until the globally-last handle —
// on whichever thread — drops.  Run under TSan in CI.
TEST(BufferTest, CrossThreadShareAndRelease) {
  BufferArena arena;
  Buffer shared = Buffer::CopyOf(Slice(std::string(256, 'q')), &arena);
  std::atomic<int> checksum_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([seed = shared, &checksum_failures] {
      for (int i = 0; i < 1000; ++i) {
        Buffer local = seed;  // refcount bump on this thread
        if (local.size() != 256 || local.data()[255] != 'q') {
          checksum_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }  // refcount drop on this thread
    });
  }
  // Main thread drops its handle while workers still hold theirs: the
  // slab may be released from any thread, whoever drops last.
  shared.Reset();
  for (auto& th : threads) th.join();
  EXPECT_EQ(checksum_failures.load(), 0);
  EXPECT_EQ(arena.free_slabs(), 1u);  // slab came home after all threads
}

// ---------------------------------------------------------------- SmallVec

TEST(SmallVecTest, InlineThenHeapGrowth) {
  common::SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  const int* inline_data = v.data();
  v.push_back(4);  // spills to the heap
  EXPECT_NE(v.data(), inline_data);
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, MoveStealsHeapBlock) {
  common::SmallVec<std::string, 2> v;
  for (int i = 0; i < 6; ++i) v.push_back(std::string(100, char('a' + i)));
  const std::string* heap_data = v.data();
  common::SmallVec<std::string, 2> w = std::move(v);
  EXPECT_EQ(w.data(), heap_data);  // pointer steal, no element moves
  EXPECT_EQ(w.size(), 6u);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVecTest, CopyIsDeep) {
  common::SmallVec<std::string, 2> v;
  v.push_back("one");
  v.push_back("two");
  common::SmallVec<std::string, 2> w = v;
  w[0] = "changed";
  EXPECT_EQ(v[0], "one");
  EXPECT_EQ(w[1], "two");
}

// -------------------------------------------------------------- FieldTable

TEST(FieldTableTest, InternIsIdempotentAndStable) {
  stream::FieldId a = stream::FieldTable::Intern("ft_test_alpha");
  stream::FieldId b = stream::FieldTable::Intern("ft_test_beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(stream::FieldTable::Intern("ft_test_alpha"), a);
  EXPECT_EQ(stream::FieldTable::Name(a), "ft_test_alpha");
  EXPECT_EQ(stream::FieldTable::Name(b), "ft_test_beta");
}

TEST(FieldTableTest, FindDoesNotInsert) {
  const size_t before = stream::FieldTable::size();
  EXPECT_EQ(stream::FieldTable::Find("ft_test_never_interned"), std::nullopt);
  EXPECT_EQ(stream::FieldTable::size(), before);  // probe left no trace
  stream::FieldId id = stream::FieldTable::Intern("ft_test_present");
  EXPECT_EQ(stream::FieldTable::Find("ft_test_present"), id);
}

TEST(FieldTableTest, ConcurrentInternAgreesOnIds) {
  std::vector<std::thread> threads;
  std::vector<stream::FieldId> ids(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &ids] {
      for (int i = 0; i < 100; ++i) {
        ids[t] = stream::FieldTable::Intern("ft_test_contended");
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(ids[t], ids[0]);
}

// --------------------------------------------------------- Tuple wire form

TEST(TupleFlatTest, EncodeDecodeRoundTripAllTypes) {
  stream::Tuple t;
  t.event_time = 123456789;
  t.space = stream::Space::kVirtual;
  t.key = "entity-42";
  t.Set("count", int64_t{-7});
  t.Set("temp", 21.5);
  t.Set("name", std::string("kiosk"));
  t.Set("armed", true);

  common::Buffer wire = t.Encode();
  EXPECT_EQ(wire.size(), t.EncodedSize());

  stream::Tuple back;
  ASSERT_TRUE(stream::Tuple::Decode(wire.slice(), &back));
  EXPECT_EQ(back.event_time, t.event_time);
  EXPECT_EQ(back.space, t.space);
  EXPECT_EQ(back.key, t.key);
  EXPECT_EQ(back.field_count(), 4u);
  EXPECT_EQ(back.Get<int64_t>("count"), -7);
  EXPECT_EQ(back.Get<double>("temp"), 21.5);
  EXPECT_EQ(back.Get<std::string>("name"), "kiosk");
  EXPECT_EQ(back.Get<bool>("armed"), true);
}

TEST(TupleFlatTest, SetOverwritesInPlace) {
  stream::Tuple t;
  t.Set("x", 1.0);
  t.Set("x", 2.0);
  EXPECT_EQ(t.field_count(), 1u);
  EXPECT_EQ(t.Get<double>("x"), 2.0);
}

TEST(TupleFlatTest, IdAndNameAccessAgree) {
  stream::FieldId id = stream::FieldTable::Intern("tuple_test_speed");
  stream::Tuple t;
  t.Set(id, 88.0);
  EXPECT_EQ(t.Get<double>("tuple_test_speed"), 88.0);
  EXPECT_EQ(t.GetNumeric(id), 88.0);
  EXPECT_EQ(t.Find(id), &t.fields()[0].value);
}

TEST(TupleFlatTest, DecodeRejectsMalformedInput) {
  stream::Tuple t;
  t.Set("f", int64_t{1});
  std::string wire = t.Encode().ToString();

  stream::Tuple out;
  // Truncations at every length must fail cleanly, never crash.
  for (size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(
        stream::Tuple::Decode(common::Slice(wire.data(), n), &out))
        << "accepted truncation to " << n << " bytes";
  }
  // Trailing garbage is also rejected (full-consume contract).
  std::string padded = wire + "!";
  EXPECT_FALSE(stream::Tuple::Decode(common::Slice(padded), &out));
}

// --------------------------------------------------------- Event wire form

TEST(EventWireTest, EncodeDecodeRoundTrip) {
  pubsub::Event e;
  e.topic = "alerts";
  e.position = geo::Vec3{1.5, -2.5, 10.0};
  e.bytes = 2048;
  e.qos = QosClass::kInteractive;
  e.published_at = 42;
  e.payload.key = "sensor-9";
  e.payload.Set("reading", 3.25);

  const common::Buffer& wire = e.EnsureEncoded();
  EXPECT_EQ(wire.size(), e.EncodedSize());
  // Cached: a second call returns the same Buffer bytes, no re-encode.
  EXPECT_EQ(e.EnsureEncoded().data(), wire.data());

  pubsub::Event back;
  ASSERT_TRUE(pubsub::Event::Decode(wire.slice(), &back));
  EXPECT_EQ(back.topic, "alerts");
  ASSERT_TRUE(back.position.has_value());
  EXPECT_EQ(back.position->x, 1.5);
  EXPECT_EQ(back.position->y, -2.5);
  EXPECT_EQ(back.position->z, 10.0);
  EXPECT_EQ(back.bytes, 2048u);
  EXPECT_EQ(back.qos, QosClass::kInteractive);
  EXPECT_EQ(back.published_at, 42);
  EXPECT_EQ(back.payload.key, "sensor-9");
  EXPECT_EQ(back.payload.Get<double>("reading"), 3.25);
}

TEST(EventWireTest, RoundTripWithoutPosition) {
  pubsub::Event e;
  e.topic = "t";
  pubsub::Event back;
  ASSERT_TRUE(pubsub::Event::Decode(e.EnsureEncoded().slice(), &back));
  EXPECT_FALSE(back.position.has_value());
}

// --------------------------------------- Shed slots release payload refs

// Regression for the seed's "drop payload early" hack: shedding or
// popping a queue slot must release the slot's EventRef immediately —
// not when the slot is reused — so a shed event's payload Buffer frees
// as soon as the last queue reference is gone.
TEST(DeliveryHeapShedTest, ShedAndPopSlotsReleaseEventRefs) {
  auto event = std::make_shared<const pubsub::Event>();
  ASSERT_EQ(event.use_count(), 1);

  pubsub::DeliveryHeap heap;
  for (uint64_t i = 0; i < 4; ++i) heap.Push(net::NodeId(i), event, i);
  EXPECT_EQ(event.use_count(), 5);  // ours + 4 queue slots

  heap.PopWorst();  // shed path
  EXPECT_EQ(event.use_count(), 4) << "shed slot kept its payload ref";
  (void)heap.PopBest();  // drain path (returned Item dropped here)
  EXPECT_EQ(event.use_count(), 3);
  heap.TruncateNewest(1);  // queue-shrink path
  EXPECT_EQ(event.use_count(), 2);
  (void)heap.PopBest();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(event.use_count(), 1) << "emptied heap still pins the event";
}

TEST(DeliveryHeapShedTest, BrokerSheddingFreesPayloadBuffers) {
  obs::Gauge* live =
      obs::MetricsRegistry::Global().GetGauge("buffer.buffers_live");
  const geo::AABB world({0, 0, 0}, {100, 100, 100});
  size_t delivered = 0;
  pubsub::Broker broker(world, 10.0,
                        [&](net::NodeId, const pubsub::Event&) { delivered++; });
  pubsub::Subscription sub;
  sub.subscriber = 1;
  broker.Subscribe(std::move(sub));
  broker.SetQueueLimit(2);

  const double live_before = live->Value();
  // Each published event pre-encodes a payload Buffer; the queue holds
  // two, so the flood sheds the rest and must free their Buffers.
  for (int i = 0; i < 50; ++i) {
    pubsub::Event e;
    e.topic = "bulk";
    e.qos = kAllQosClasses[i % 3];
    e.payload.Set("seq", int64_t{i});
    e.EnsureEncoded();  // give the event a live payload Buffer
    broker.Publish(e);
  }
  EXPECT_LE(live->Value() - live_before, 2.0)
      << "shed events leaked payload Buffers";
  EXPECT_GE(broker.stats().deliveries_shed, 48u);
  broker.Drain();
  EXPECT_EQ(delivered, 2u);
  EXPECT_LE(live->Value(), live_before)
      << "drained queue still pins payload Buffers";
}

}  // namespace
}  // namespace deluge
