#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "fusion/event_detector.h"
#include "fusion/fuser.h"

namespace deluge::fusion {
namespace {

Observation PosObs(const std::string& entity, uint32_t source, SourceType type,
                   Micros t, geo::Vec3 pos, double conf = 1.0) {
  Observation o;
  o.entity = entity;
  o.source_id = source;
  o.type = type;
  o.t = t;
  o.position = pos;
  o.has_position = true;
  o.confidence = conf;
  return o;
}

Observation AttrObs(const std::string& entity, uint32_t source, Micros t,
                    const std::string& attr, const std::string& value,
                    double conf = 1.0) {
  Observation o;
  o.entity = entity;
  o.source_id = source;
  o.type = SourceType::kText;
  o.t = t;
  o.attribute = attr;
  o.value = value;
  o.confidence = conf;
  return o;
}

// ----------------------------------------------------- ReliabilityTracker

TEST(ReliabilityTrackerTest, UnseenSourceHasPrior) {
  ReliabilityTracker tracker(0.1, 0.5);
  EXPECT_DOUBLE_EQ(tracker.reliability(42), 0.5);
}

TEST(ReliabilityTrackerTest, AgreementRaisesDisagreementLowers) {
  ReliabilityTracker tracker(0.2, 0.5);
  for (int i = 0; i < 20; ++i) tracker.Observe(1, 0.0);    // perfect
  for (int i = 0; i < 20; ++i) tracker.Observe(2, 100.0);  // terrible
  EXPECT_GT(tracker.reliability(1), 0.9);
  EXPECT_LT(tracker.reliability(2), 0.1);
}

TEST(ReliabilityTrackerTest, ScaleControlsSeverity) {
  ReliabilityTracker a(1.0, 0.5), b(1.0, 0.5);
  a.Observe(1, 5.0, /*scale=*/5.0);    // e^-1
  b.Observe(1, 5.0, /*scale=*/50.0);   // e^-0.1
  EXPECT_LT(a.reliability(1), b.reliability(1));
}

// ------------------------------------------------------------ EntityFuser

TEST(EntityFuserTest, SingleSourcePassThrough) {
  EntityFuser fuser;
  fuser.Add(PosObs("book1", 1, SourceType::kRfid, 0, {10, 20, 0}));
  auto est = fuser.EstimatePosition("book1", 0);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value().position, (geo::Vec3{10, 20, 0}));
  EXPECT_EQ(est.value().supporting_observations, 1u);
}

TEST(EntityFuserTest, UnknownEntityNotFound) {
  EntityFuser fuser;
  EXPECT_TRUE(fuser.EstimatePosition("ghost", 0).status().IsNotFound());
  EXPECT_TRUE(
      fuser.EstimateAttribute("ghost", "x", 0).status().IsNotFound());
}

TEST(EntityFuserTest, FusionAveragesAgreeingSources) {
  EntityFuser fuser;
  fuser.Add(PosObs("e", 1, SourceType::kRfid, 0, {10, 0, 0}));
  fuser.Add(PosObs("e", 2, SourceType::kCamera, 0, {12, 0, 0}));
  auto est = fuser.EstimatePosition("e", 0);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().position.x, 11.0, 0.5);
}

TEST(EntityFuserTest, RecencyDecayFavoursFreshObservations) {
  FuserOptions opts;
  opts.window = 100 * kMicrosPerSecond;
  opts.half_life = kMicrosPerSecond;
  EntityFuser fuser(opts);
  fuser.Add(PosObs("e", 1, SourceType::kGps, 0, {0, 0, 0}));
  fuser.Add(PosObs("e", 2, SourceType::kGps, 10 * kMicrosPerSecond,
                   {100, 0, 0}));
  auto est = fuser.EstimatePosition("e", 10 * kMicrosPerSecond);
  ASSERT_TRUE(est.ok());
  // The 10-half-life-old observation carries ~2^-10 of the weight.
  EXPECT_GT(est.value().position.x, 99.0);
}

TEST(EntityFuserTest, WindowExpiryDropsStaleData) {
  FuserOptions opts;
  opts.window = kMicrosPerSecond;
  EntityFuser fuser(opts);
  fuser.Add(PosObs("e", 1, SourceType::kGps, 0, {1, 1, 0}));
  auto est = fuser.EstimatePosition("e", 10 * kMicrosPerSecond);
  EXPECT_TRUE(est.status().IsNotFound());
}

TEST(EntityFuserTest, UnreliableSourceLearnsLowWeight) {
  FuserOptions opts;
  opts.window = 1000 * kMicrosPerSecond;
  opts.half_life = 1000 * kMicrosPerSecond;  // isolate reliability effect
  EntityFuser fuser(opts);
  Rng rng(5);
  // Sources 1 & 2 agree near (0,0,0); source 3 claims wildly wrong spots.
  Micros t = 0;
  for (int i = 0; i < 50; ++i) {
    t += kMicrosPerMilli;
    fuser.Add(PosObs("e", 1, SourceType::kRfid, t,
                     {rng.Gaussian(0, 0.1), rng.Gaussian(0, 0.1), 0}));
    t += kMicrosPerMilli;
    fuser.Add(PosObs("e", 2, SourceType::kCamera, t,
                     {rng.Gaussian(0, 0.1), rng.Gaussian(0, 0.1), 0}));
    t += kMicrosPerMilli;
    fuser.Add(PosObs("e", 3, SourceType::kText, t,
                     {rng.Gaussian(80, 5.0), rng.Gaussian(80, 5.0), 0}));
  }
  EXPECT_LT(fuser.reliability().reliability(3),
            fuser.reliability().reliability(1));
  auto est = fuser.EstimatePosition("e", t);
  ASSERT_TRUE(est.ok());
  // Fused estimate pulled far closer to the honest consensus than to the
  // liar's claims (unweighted mean would sit near x = 26.7).
  EXPECT_LT(est.value().position.x, 15.0);
}

TEST(EntityFuserTest, AttributeWeightedVote) {
  EntityFuser fuser;
  fuser.Add(AttrObs("book", 1, 0, "shelf", "A3", 1.0));
  fuser.Add(AttrObs("book", 2, 0, "shelf", "A3", 1.0));
  fuser.Add(AttrObs("book", 3, 0, "shelf", "B7", 0.5));
  double support = 0.0;
  auto value = fuser.EstimateAttribute("book", "shelf", 0, &support);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), "A3");
  EXPECT_GT(support, 0.6);
}

TEST(EntityFuserTest, AttributeMissingNotFound) {
  EntityFuser fuser;
  fuser.Add(AttrObs("book", 1, 0, "shelf", "A3"));
  EXPECT_TRUE(
      fuser.EstimateAttribute("book", "color", 0).status().IsNotFound());
}

// -------------------------------------------------------- TruthDiscovery

TEST(TruthDiscoveryTest, PerfectConsensusConverges) {
  std::vector<TruthDiscovery::Claim> claims;
  for (uint32_t s = 0; s < 3; ++s) {
    for (size_t item = 0; item < 4; ++item) {
      claims.push_back({s, item, double(item) * 10.0});
    }
  }
  auto sol = TruthDiscovery::Solve(claims, 4);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(sol.truths[i], i * 10.0, 1e-9);
}

TEST(TruthDiscoveryTest, DownweightsOutlierSource) {
  Rng rng(17);
  const size_t kItems = 50;
  std::vector<double> truth(kItems);
  for (size_t i = 0; i < kItems; ++i) truth[i] = rng.UniformDouble(0, 100);

  std::vector<TruthDiscovery::Claim> claims;
  // Sources 0-2: small noise.  Source 3: big systematic error.
  for (size_t i = 0; i < kItems; ++i) {
    for (uint32_t s = 0; s < 3; ++s) {
      claims.push_back({s, i, truth[i] + rng.Gaussian(0, 1.0)});
    }
    claims.push_back({3, i, truth[i] + rng.Gaussian(0, 25.0)});
  }
  auto sol = TruthDiscovery::Solve(claims, kItems);
  EXPECT_LT(sol.weights[3], sol.weights[0]);

  // Fused RMSE must beat the best single source's RMSE.
  auto rmse_of_source = [&](uint32_t sid) {
    double sum = 0;
    size_t n = 0;
    for (const auto& c : claims) {
      if (c.source_id != sid) continue;
      sum += (c.value - truth[c.item]) * (c.value - truth[c.item]);
      ++n;
    }
    return std::sqrt(sum / double(n));
  };
  double best_single = std::min(
      {rmse_of_source(0), rmse_of_source(1), rmse_of_source(2)});
  double fused = 0;
  for (size_t i = 0; i < kItems; ++i) {
    fused += (sol.truths[i] - truth[i]) * (sol.truths[i] - truth[i]);
  }
  fused = std::sqrt(fused / double(kItems));
  EXPECT_LT(fused, best_single);
}

TEST(TruthDiscoveryTest, EmptyAndDegenerateInputs) {
  auto sol = TruthDiscovery::Solve({}, 0);
  EXPECT_TRUE(sol.truths.empty());
  auto sol2 = TruthDiscovery::Solve({{0, 5, 1.0}}, 3);  // item out of range
  EXPECT_EQ(sol2.truths.size(), 3u);
}

// --------------------------------------------------------- EventDetector

TEST(EventDetectorTest, RequiresMultipleSourceTypes) {
  EventDetector detector;
  std::vector<DetectedEvent> events;
  EventRule rule;
  rule.name = "book-moved";
  rule.min_source_types = 2;
  rule.window = kMicrosPerSecond;
  detector.AddRule(rule, [&](const DetectedEvent& e) { events.push_back(e); });

  // RFID alone: not corroborated.
  detector.Ingest(PosObs("book", 1, SourceType::kRfid, 0, {1, 1, 0}));
  detector.Ingest(PosObs("book", 1, SourceType::kRfid, 100, {1, 1, 0}));
  EXPECT_TRUE(events.empty());
  // Camera confirms within the window: fires.
  detector.Ingest(PosObs("book", 2, SourceType::kCamera, 200, {1, 1, 0}));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rule, "book-moved");
  EXPECT_EQ(events[0].entity, "book");
}

TEST(EventDetectorTest, WindowExpiryBlocksStaleCorroboration) {
  EventDetector detector;
  std::vector<DetectedEvent> events;
  EventRule rule;
  rule.name = "r";
  rule.min_source_types = 2;
  rule.window = kMicrosPerMilli;
  detector.AddRule(rule, [&](const DetectedEvent& e) { events.push_back(e); });
  detector.Ingest(PosObs("e", 1, SourceType::kRfid, 0, {0, 0, 0}));
  detector.Ingest(
      PosObs("e", 2, SourceType::kCamera, 10 * kMicrosPerSecond, {0, 0, 0}));
  EXPECT_TRUE(events.empty());
}

TEST(EventDetectorTest, RefractorySuppressesRefires) {
  EventDetector detector;
  std::vector<DetectedEvent> events;
  EventRule rule;
  rule.name = "r";
  rule.min_source_types = 2;
  rule.window = 10 * kMicrosPerSecond;
  rule.refractory = 5 * kMicrosPerSecond;
  detector.AddRule(rule, [&](const DetectedEvent& e) { events.push_back(e); });
  detector.Ingest(PosObs("e", 1, SourceType::kRfid, 0, {0, 0, 0}));
  detector.Ingest(PosObs("e", 2, SourceType::kCamera, 100, {0, 0, 0}));
  detector.Ingest(PosObs("e", 2, SourceType::kCamera, 200, {0, 0, 0}));
  detector.Ingest(PosObs("e", 1, SourceType::kRfid, 300, {0, 0, 0}));
  EXPECT_EQ(events.size(), 1u);
  // After the refractory period, a new corroborated burst fires again.
  detector.Ingest(
      PosObs("e", 1, SourceType::kRfid, 6 * kMicrosPerSecond, {0, 0, 0}));
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(detector.events_fired(), 2u);
}

TEST(EventDetectorTest, PredicateFiltersIrrelevantObservations) {
  EventDetector detector;
  std::vector<DetectedEvent> events;
  EventRule rule;
  rule.name = "hot";
  rule.min_source_types = 2;
  rule.window = kMicrosPerSecond;
  rule.predicate = [](const Observation& o) { return o.confidence > 0.8; };
  detector.AddRule(rule, [&](const DetectedEvent& e) { events.push_back(e); });
  detector.Ingest(PosObs("e", 1, SourceType::kRfid, 0, {0, 0, 0}, 0.5));
  detector.Ingest(PosObs("e", 2, SourceType::kCamera, 10, {0, 0, 0}, 0.9));
  EXPECT_TRUE(events.empty());  // the low-confidence read was filtered
  detector.Ingest(PosObs("e", 1, SourceType::kRfid, 20, {0, 0, 0}, 0.95));
  EXPECT_EQ(events.size(), 1u);
}

TEST(EventDetectorTest, EntitiesTrackedIndependently) {
  EventDetector detector;
  std::vector<DetectedEvent> events;
  EventRule rule;
  rule.name = "r";
  rule.min_source_types = 2;
  rule.window = kMicrosPerSecond;
  detector.AddRule(rule, [&](const DetectedEvent& e) { events.push_back(e); });
  detector.Ingest(PosObs("a", 1, SourceType::kRfid, 0, {0, 0, 0}));
  detector.Ingest(PosObs("b", 2, SourceType::kCamera, 10, {0, 0, 0}));
  EXPECT_TRUE(events.empty());  // different entities never corroborate
}

}  // namespace
}  // namespace deluge::fusion
