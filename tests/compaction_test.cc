// Range-partitioned leveled compaction: k-way merge iterator units,
// streaming sub-compactions (tombstone shadowing, roll-at-threshold,
// parallel vs. serial equivalence), L1 range-pruned reads, SSTable
// footer-format compatibility, and old-manifest upgrade.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/merge_iter.h"
#include "common/thread_pool.h"
#include "storage/bloom.h"
#include "storage/compaction.h"
#include "storage/fault_injection.h"
#include "storage/format.h"
#include "storage/kv_store.h"
#include "storage/sstable.h"

namespace deluge::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("deluge_compaction_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string Key(int family, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "f%02d-%06d", family, i);
  return buf;
}

InternalEntry MakeEntry(std::string key, uint64_t seq, std::string value,
                        ValueType type = ValueType::kValue) {
  InternalEntry e;
  e.user_key = std::move(key);
  e.seq = seq;
  e.type = type;
  e.value = std::move(value);
  return e;
}

// The data-region record encoding (mirrors the SSTable writer): the
// reference byte stream for parallel-vs-serial equivalence checks.
void EncodeEntryRef(const InternalEntry& e, std::string* out) {
  PutVarint32(out, uint32_t(e.user_key.size()));
  out->append(e.user_key);
  PutFixed64(out, e.seq);
  out->push_back(char(e.type));
  PutVarint32(out, uint32_t(e.value.size()));
  out->append(e.value);
}

// Concatenated encoded entries of `tables`, in order — table framing
// (index/bloom/footer) excluded, so groupings that differ only in where
// outputs rolled compare equal iff the merged content is identical.
std::string DrainTables(
    const std::vector<std::shared_ptr<SSTable>>& tables) {
  std::string out;
  for (const auto& t : tables) {
    SSTable::Iterator it(t.get());
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      EncodeEntryRef(it.entry(), &out);
    }
    EXPECT_TRUE(it.status().ok());
  }
  return out;
}

// ------------------------------------------------- k-way merge iterator

// Minimal sorted source over (key, tag) pairs; `tag` identifies which
// source an emitted element came from.
struct VecSource {
  const std::vector<std::pair<int, int>>* v;
  size_t i = 0;
  bool Valid() const { return i < v->size(); }
  void Next() { ++i; }
  const std::pair<int, int>& entry() const { return (*v)[i]; }
};

struct PairOrder {
  int operator()(const std::pair<int, int>& a,
                 const std::pair<int, int>& b) const {
    return a.first - b.first;
  }
};

TEST(MergeIteratorTest, YieldsGloballySortedOrder) {
  std::vector<std::pair<int, int>> a{{1, 0}, {4, 0}, {9, 0}};
  std::vector<std::pair<int, int>> b{{2, 1}, {3, 1}, {10, 1}};
  std::vector<std::pair<int, int>> c{{0, 2}, {5, 2}};
  VecSource sa{&a}, sb{&b}, sc{&c};
  KWayMergeIterator<VecSource, PairOrder> merge({&sa, &sb, &sc},
                                                PairOrder{});
  std::vector<int> got;
  for (; merge.Valid(); merge.Next()) got.push_back(merge.entry().first);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 9, 10}));
}

TEST(MergeIteratorTest, TieBreaksTowardLowerSourceIndex) {
  // Equal keys in several sources must surface lowest-source-first:
  // with sources ordered newest-first that IS the LSM shadowing rule.
  std::vector<std::pair<int, int>> newer{{5, 0}, {7, 0}};
  std::vector<std::pair<int, int>> older{{5, 1}, {6, 1}, {7, 1}};
  VecSource sn{&newer}, so{&older};
  KWayMergeIterator<VecSource, PairOrder> merge({&sn, &so}, PairOrder{});
  std::vector<std::pair<int, int>> got;
  for (; merge.Valid(); merge.Next()) got.push_back(merge.entry());
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0], (std::pair<int, int>{5, 0}));  // newer 5 first
  EXPECT_EQ(got[1], (std::pair<int, int>{5, 1}));
  EXPECT_EQ(got[2], (std::pair<int, int>{6, 1}));
  EXPECT_EQ(got[3], (std::pair<int, int>{7, 0}));  // newer 7 first
  EXPECT_EQ(got[4], (std::pair<int, int>{7, 1}));
}

TEST(MergeIteratorTest, EmptySourcesAndEmptyMerge) {
  std::vector<std::pair<int, int>> empty;
  std::vector<std::pair<int, int>> one{{3, 1}};
  {
    VecSource s0{&empty}, s1{&one}, s2{&empty};
    KWayMergeIterator<VecSource, PairOrder> merge({&s0, &s1, &s2},
                                                  PairOrder{});
    ASSERT_TRUE(merge.Valid());
    EXPECT_EQ(merge.entry().first, 3);
    EXPECT_EQ(merge.source_index(), 1u);
    merge.Next();
    EXPECT_FALSE(merge.Valid());
  }
  {
    VecSource s0{&empty};
    KWayMergeIterator<VecSource, PairOrder> merge({&s0}, PairOrder{});
    EXPECT_FALSE(merge.Valid());
  }
}

// --------------------------------------------------- sub-compaction core

// Builds a table at `dir/name` from `entries` (sorted internally first).
std::shared_ptr<SSTable> BuildTable(const std::string& dir,
                                    const std::string& name,
                                    std::vector<InternalEntry> entries) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const InternalEntry& a, const InternalEntry& b) {
                     return InternalEntryComparator()(a, b) < 0;
                   });
  auto t = SSTable::Build(dir + "/" + name, entries);
  EXPECT_TRUE(t.ok());
  return t.value();
}

// A job writing outputs to `dir` with a process-local output counter.
CompactionJob MakeJob(const std::string& dir,
                      std::vector<std::shared_ptr<SSTable>> inputs,
                      uint64_t target_bytes) {
  CompactionJob job;
  job.inputs = std::move(inputs);
  job.target_table_bytes = target_bytes;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  job.next_output_path = [dir, counter] {
    return dir + "/out" +
           std::to_string(counter->fetch_add(1, std::memory_order_relaxed)) +
           ".sst";
  };
  return job;
}

TEST(SubcompactionTest, TombstoneShadowingAcrossLevels) {
  std::string dir = TempDir("shadow");
  // Older (L1-like) table: values for k0..k3.
  auto old_table = BuildTable(dir, "old.sst",
                              {MakeEntry(Key(0, 0), 1, "old0"),
                               MakeEntry(Key(0, 1), 2, "old1"),
                               MakeEntry(Key(0, 2), 3, "old2"),
                               MakeEntry(Key(0, 3), 4, "old3")});
  // Newer (L0-like) table: deletes k1, rewrites k2.
  auto new_table =
      BuildTable(dir, "new.sst",
                 {MakeEntry(Key(0, 1), 10, "", ValueType::kTombstone),
                  MakeEntry(Key(0, 2), 11, "new2")});

  auto job = MakeJob(dir, {new_table, old_table}, 1 << 20);  // newest first
  auto result = RunSubcompaction(job, KeySpan{});
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.entries_read, 6u);
  ASSERT_EQ(result.outputs.size(), 1u);

  std::map<std::string, std::string> got;
  SSTable::Iterator it(result.outputs[0].get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.entry().type, ValueType::kValue);  // no tombstones emitted
    got[it.entry().user_key] = it.entry().value;
  }
  ASSERT_TRUE(it.status().ok());
  // k1 deleted (tombstone shadowed the old value AND was itself
  // dropped); k2 shows the newer value; k0/k3 survive untouched.
  EXPECT_EQ(got, (std::map<std::string, std::string>{{Key(0, 0), "old0"},
                                                     {Key(0, 2), "new2"},
                                                     {Key(0, 3), "old3"}}));
}

TEST(SubcompactionTest, RollsOutputsAtSizeThreshold) {
  std::string dir = TempDir("roll");
  std::vector<InternalEntry> entries;
  const std::string value(100, 'v');
  for (int i = 0; i < 200; ++i) {
    entries.push_back(MakeEntry(Key(0, i), uint64_t(i + 1), value));
  }
  auto input = BuildTable(dir, "in.sst", entries);

  const uint64_t target = 2048;
  auto job = MakeJob(dir, {input}, target);
  auto result = RunSubcompaction(job, KeySpan{});
  ASSERT_TRUE(result.status.ok());
  ASSERT_GT(result.outputs.size(), 1u);

  // Each output's data region stops within one record of the threshold,
  // outputs are non-overlapping and ascending, and nothing was lost.
  const uint64_t record_size = 1 + Key(0, 0).size() + 8 + 1 + 1 + value.size();
  int total = 0;
  std::string prev_max;
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    const auto& t = result.outputs[i];
    EXPECT_LE(t->file_size(), target + record_size);
    if (i + 1 < result.outputs.size()) {
      EXPECT_GE(t->file_size(), target);  // only the tail may be short
    }
    if (i > 0) EXPECT_LT(prev_max, t->min_key());
    prev_max = t->max_key();
    total += int(t->entry_count());
  }
  EXPECT_EQ(total, 200);
}

TEST(SubcompactionTest, SpanBoundariesPartitionExactly) {
  std::string dir = TempDir("spans");
  std::vector<InternalEntry> entries;
  for (int i = 0; i < 400; ++i) {
    entries.push_back(MakeEntry(Key(0, i), uint64_t(i + 1), "v"));
  }
  auto input = BuildTable(dir, "in.sst", entries);
  std::vector<std::shared_ptr<SSTable>> inputs{input};

  auto boundaries = PickSubcompactionBoundaries(inputs, 4);
  ASSERT_GE(boundaries.size(), 1u);
  auto spans = SpansFromBoundaries(boundaries);
  ASSERT_EQ(spans.size(), boundaries.size() + 1);

  auto job = MakeJob(dir, inputs, 1 << 20);
  uint64_t consumed = 0;
  std::set<std::string> keys;
  for (const auto& span : spans) {
    auto r = RunSubcompaction(job, span);
    ASSERT_TRUE(r.status.ok());
    consumed += r.entries_read;
    for (const auto& t : r.outputs) {
      SSTable::Iterator it(t.get());
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        EXPECT_TRUE(keys.insert(it.entry().user_key).second)
            << "key emitted by two spans: " << it.entry().user_key;
      }
    }
  }
  // Every input entry consumed exactly once across the partition.
  EXPECT_EQ(consumed, 400u);
  EXPECT_EQ(keys.size(), 400u);
}

TEST(SubcompactionTest, ParallelSpansMatchSingleThreadedReference) {
  std::string dir = TempDir("parallel_ref");
  // Three overlapping L0-style tables with interleaved updates and
  // deletes, newest first.
  std::vector<InternalEntry> newest, mid, oldest;
  for (int i = 0; i < 300; ++i) {
    oldest.push_back(MakeEntry(Key(0, i), uint64_t(i + 1), "old"));
  }
  for (int i = 0; i < 300; i += 2) {
    mid.push_back(MakeEntry(Key(0, i), uint64_t(1000 + i), "mid"));
  }
  for (int i = 0; i < 300; i += 3) {
    newest.push_back(i % 2 == 0
                         ? MakeEntry(Key(0, i), uint64_t(2000 + i), "",
                                     ValueType::kTombstone)
                         : MakeEntry(Key(0, i), uint64_t(2000 + i), "new"));
  }
  std::vector<std::shared_ptr<SSTable>> inputs{
      BuildTable(dir, "l0a.sst", newest), BuildTable(dir, "l0b.sst", mid),
      BuildTable(dir, "l1.sst", oldest)};

  // Reference: one span, one thread.
  std::string ref_dir = TempDir("parallel_ref_serial");
  auto ref_job = MakeJob(ref_dir, inputs, 4096);
  auto ref = RunSubcompaction(ref_job, KeySpan{});
  ASSERT_TRUE(ref.status.ok());

  // Partitioned: the same merge cut into >= 2 spans, run concurrently.
  auto boundaries = PickSubcompactionBoundaries(inputs, 4);
  ASSERT_GE(boundaries.size(), 1u);
  auto spans = SpansFromBoundaries(boundaries);
  auto job = MakeJob(dir, inputs, 4096);
  std::vector<SubcompactionResult> results(spans.size());
  std::vector<std::thread> threads;
  threads.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    threads.emplace_back(
        [&, i] { results[i] = RunSubcompaction(job, spans[i]); });
  }
  for (auto& t : threads) t.join();

  std::vector<std::shared_ptr<SSTable>> parallel_outputs;
  uint64_t consumed = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.status.ok());
    consumed += r.entries_read;
    parallel_outputs.insert(parallel_outputs.end(), r.outputs.begin(),
                            r.outputs.end());
  }
  EXPECT_EQ(consumed, ref.entries_read);
  // The concatenated merged byte streams are identical: partitioning
  // changed only WHERE the work ran, not WHAT was produced.
  EXPECT_EQ(DrainTables(parallel_outputs), DrainTables(ref.outputs));
}

// ------------------------------------------------------ engine behavior

TEST(LeveledCompactionTest, CompactionRewritesOnlyOverlappingTables) {
  KVStoreOptions opts;
  opts.dir = TempDir("overlap_only");
  opts.memtable_max_bytes = 16 << 10;
  opts.l0_compaction_trigger = 100;  // only explicit compactions
  opts.l1_target_table_bytes = 8 << 10;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  const std::string value(128, 'a');
  // Family 0 -> L1.
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(db->Put(Key(0, i), value).ok());
  ASSERT_TRUE(db->CompactAll().ok());
  ASSERT_EQ(db->l0_file_count(), 0u);
  ASSERT_GT(db->l1_file_count(), 1u);  // small target => partitioned L1

  std::set<std::string> family0_files;
  for (const auto& e : fs::directory_iterator(opts.dir)) {
    if (e.path().extension() == ".sst") {
      family0_files.insert(e.path().filename().string());
    }
  }
  const uint64_t bytes_after_first = db->stats().bytes_compacted;

  // Family 9 has a disjoint key range: compacting it must leave every
  // family-0 table file in place and rewrite only family-9 data.
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(db->Put(Key(9, i), value).ok());
  ASSERT_TRUE(db->CompactAll().ok());
  for (const auto& f : family0_files) {
    EXPECT_TRUE(fs::exists(opts.dir + "/" + f))
        << "non-overlapping table was rewritten: " << f;
  }
  const uint64_t delta = db->stats().bytes_compacted - bytes_after_first;
  // The second compaction's rewrite cost is bounded by family 9's size,
  // not the database size (families are the same size, so rewriting
  // both would roughly double the delta).
  EXPECT_LT(delta, bytes_after_first + bytes_after_first / 2);
  EXPECT_GT(delta, 0u);

  // Both families fully readable through the partitioned level.
  std::string v;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db->Get(Key(0, i), &v).ok());
    ASSERT_TRUE(db->Get(Key(9, i), &v).ok());
  }
}

TEST(LeveledCompactionTest, RangePruningProbesOneL1Table) {
  KVStoreOptions opts;
  opts.dir = TempDir("range_prune");
  opts.memtable_max_bytes = 16 << 10;
  opts.l0_compaction_trigger = 100;
  opts.l1_target_table_bytes = 4 << 10;  // many small L1 tables
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  const std::string value(64, 'a');
  for (int i = 0; i < 600; ++i) ASSERT_TRUE(db->Put(Key(0, i), value).ok());
  ASSERT_TRUE(db->CompactAll().ok());
  ASSERT_EQ(db->l0_file_count(), 0u);
  const size_t l1_tables = db->l1_file_count();
  ASSERT_GT(l1_tables, 3u);

  const uint64_t checks_before = db->stats().bloom_checks;
  const int kProbes = 200;
  std::string v;
  for (int i = 0; i < kProbes; ++i) {
    ASSERT_TRUE(db->Get(Key(0, i * 3), &v).ok());
  }
  const uint64_t checks = db->stats().bloom_checks - checks_before;
  // Binary search on the L1 ranges probes exactly one table per read;
  // without pruning this would be ~l1_tables bloom checks per read.
  EXPECT_EQ(checks, uint64_t(kProbes));

  // A key below every range and one above it probe no table at all.
  EXPECT_TRUE(db->Get("a-before-everything", &v).IsNotFound());
  EXPECT_TRUE(db->Get("zz-after-everything", &v).IsNotFound());
  EXPECT_EQ(db->stats().bloom_checks - checks_before, uint64_t(kProbes));
}

TEST(LeveledCompactionTest, AbortedSubcompactionLeavesNoOrphans) {
  ScriptedIoFaults faults;
  KVStoreOptions opts;
  opts.dir = TempDir("abort_orphans");
  opts.memtable_max_bytes = 16 << 10;
  opts.l0_compaction_trigger = 100;
  opts.l1_target_table_bytes = 8 << 10;  // forces several sub-compactions
  opts.table_faults = &faults;

  auto live_sst_files = [&opts] {
    std::set<std::string> files;
    for (const auto& e : fs::directory_iterator(opts.dir)) {
      if (e.path().extension() == ".sst") {
        files.insert(e.path().filename().string());
      }
    }
    return files;
  };

  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    KVStore* db = store.value().get();
    const std::string value(128, 'a');
    for (int i = 0; i < 500; ++i) ASSERT_TRUE(db->Put(Key(0, i), value).ok());
    ASSERT_TRUE(db->Flush().ok());
    const auto before = live_sst_files();

    // Tear the first output write of the compaction: one sub-compaction
    // aborts while its siblings may have finished whole tables.
    faults.TearWriteAfter(0, /*keep_bytes=*/512);
    Status s = db->CompactAll();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(faults.torn_writes(), 1u);

    // All-or-nothing: the failed compaction's outputs (finished and
    // torn alike) are gone; the input tables are exactly what remains.
    EXPECT_EQ(live_sst_files(), before);
    EXPECT_GT(db->l0_file_count(), 0u);
  }

  // After recovery no orphan outputs exist either, the data is intact,
  // and a retried compaction (without the fault) succeeds.
  opts.table_faults = nullptr;
  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  KVStore* db = reopened.value().get();
  std::string v;
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(db->Get(Key(0, i), &v).ok());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->l0_file_count(), 0u);
  EXPECT_GT(db->l1_file_count(), 0u);
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(db->Get(Key(0, i), &v).ok());
}

TEST(LeveledCompactionTest, SubcompactionsRunInParallelOnSharedPool) {
  ThreadPool pool(4);
  KVStoreOptions opts;
  opts.dir = TempDir("parallel_subs");
  opts.memtable_max_bytes = 32 << 10;
  opts.l0_compaction_trigger = 100;
  opts.l1_target_table_bytes = 8 << 10;
  opts.max_subcompactions = 4;
  opts.background_pool = &pool;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  const std::string value(200, 'a');
  for (int i = 0; i < 800; ++i) ASSERT_TRUE(db->Put(Key(0, i), value).ok());
  ASSERT_TRUE(db->CompactAll().ok());

  auto stats = db->stats();
  EXPECT_GE(stats.compactions, 1u);
  // Input size (~170 KB) over the 8 KB table target caps well above
  // max_subcompactions, so the compaction split into 4 slices.
  EXPECT_GE(stats.subcompactions, 4u);
  EXPECT_GT(db->l1_file_count(), 3u);
  std::string v;
  for (int i = 0; i < 800; ++i) ASSERT_TRUE(db->Get(Key(0, i), &v).ok());
}

TEST(LeveledCompactionTest, NewOptionsValidatedAtOpen) {
  {
    KVStoreOptions opts;
    opts.dir = TempDir("bad_target");
    opts.l1_target_table_bytes = 0;
    auto store = KVStore::Open(opts);
    ASSERT_FALSE(store.ok());
    EXPECT_TRUE(store.status().IsInvalidArgument());
  }
  for (int subs : {0, -2}) {
    KVStoreOptions opts;
    opts.dir = TempDir("bad_subs");
    opts.max_subcompactions = subs;
    auto store = KVStore::Open(opts);
    ASSERT_FALSE(store.ok());
    EXPECT_TRUE(store.status().IsInvalidArgument());
  }
}

// ------------------------------------------------- format compatibility

TEST(FormatCompatTest, OpensLegacyV1FooterTables) {
  std::string dir = TempDir("v1_footer");
  // Hand-craft a v1-format table: data + index + bloom + 6-word footer
  // ending in the legacy magic, no range block.
  std::vector<InternalEntry> entries;
  for (int i = 0; i < 50; ++i) {
    entries.push_back(MakeEntry(Key(0, i), uint64_t(i + 1), "v1value"));
  }
  std::string data, index;
  uint64_t index_count = 0;
  BloomFilter bloom(entries.size(), 10);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i % SSTable::kIndexInterval == 0) {
      PutVarint32(&index, uint32_t(entries[i].user_key.size()));
      index.append(entries[i].user_key);
      PutFixed64(&index, data.size());
      ++index_count;
    }
    bloom.Add(entries[i].user_key);
    EncodeEntryRef(entries[i], &data);
  }
  const std::string bloom_bytes = bloom.Serialize();
  std::string footer;
  PutFixed64(&footer, data.size());
  PutFixed64(&footer, index_count);
  PutFixed64(&footer, data.size() + index.size());
  PutFixed64(&footer, bloom_bytes.size());
  PutFixed64(&footer, entries.size());
  PutFixed64(&footer, SSTable::kMagic);
  const std::string path = dir + "/legacy.sst";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data << index << bloom_bytes << footer;
    ASSERT_TRUE(out.good());
  }

  // The v1 table opens (max key recovered by the legacy tail scan) and
  // serves reads; a freshly built table uses the v2 footer.
  auto legacy = SSTable::Open(path);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value()->entry_count(), entries.size());
  EXPECT_EQ(legacy.value()->min_key(), Key(0, 0));
  EXPECT_EQ(legacy.value()->max_key(), Key(0, 49));
  InternalEntry e;
  ASSERT_TRUE(legacy.value()->Get(Key(0, 17), ~SequenceNumber{0}, &e).ok());
  EXPECT_EQ(e.value, "v1value");

  auto modern = SSTable::Build(dir + "/modern.sst", entries);
  ASSERT_TRUE(modern.ok());
  EXPECT_EQ(modern.value()->min_key(), Key(0, 0));
  EXPECT_EQ(modern.value()->max_key(), Key(0, 49));
}

TEST(FormatCompatTest, UpgradesOldSingleRunManifest) {
  KVStoreOptions opts;
  opts.dir = TempDir("old_manifest");
  opts.memtable_max_bytes = 16 << 10;
  opts.l0_compaction_trigger = 100;
  {
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    KVStore* db = store.value().get();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db->Put(Key(0, i), "value" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
    ASSERT_TRUE(db->Put(Key(0, 500), "l0resident").ok());
    ASSERT_TRUE(db->Flush().ok());
  }

  // Rewrite the manifest in the pre-leveled format: no magic line, no
  // key ranges — exactly what the old engine left on disk.
  const std::string manifest_path = opts.dir + "/MANIFEST";
  std::vector<std::pair<int, uint64_t>> tables;
  uint64_t next_file = 0, next_seq = 0;
  {
    std::ifstream in(manifest_path);
    std::string magic;
    ASSERT_TRUE(bool(in >> magic));
    ASSERT_EQ(magic, "DELUGEMANIFEST2");
    ASSERT_TRUE(bool(in >> next_file >> next_seq));
    int level;
    uint64_t number;
    while (in >> level >> number) {
      if (level == 1) {
        std::string hex_min, hex_max;
        ASSERT_TRUE(bool(in >> hex_min >> hex_max));
      }
      tables.emplace_back(level, number);
    }
  }
  ASSERT_FALSE(tables.empty());
  {
    std::ofstream out(manifest_path, std::ios::trunc);
    out << next_file << " " << next_seq << "\n";
    for (const auto& [level, number] : tables) {
      out << level << " " << number << "\n";
    }
    ASSERT_TRUE(out.good());
  }

  // The old-format manifest recovers: every key readable, level shape
  // preserved, and the store keeps working (upgrading the manifest to
  // the range-aware format on its next write).
  auto reopened = KVStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  KVStore* db = reopened.value().get();
  std::string v;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Get(Key(0, i), &v).ok()) << i;
    EXPECT_EQ(v, "value" + std::to_string(i));
  }
  ASSERT_TRUE(db->Get(Key(0, 500), &v).ok());
  EXPECT_EQ(v, "l0resident");
  ASSERT_TRUE(db->CompactAll().ok());
  {
    std::ifstream in(manifest_path);
    std::string magic;
    ASSERT_TRUE(bool(in >> magic));
    EXPECT_EQ(magic, "DELUGEMANIFEST2");
  }
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(db->Get(Key(0, i), &v).ok());
}

}  // namespace
}  // namespace deluge::storage
