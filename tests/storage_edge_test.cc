// Edge-case and stress tests for the storage engine: large values,
// WAL sync mode, parameterized configurations, iterator stability.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/rng.h"
#include "storage/kv_store.h"

namespace deluge::storage {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("deluge_edge_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(KVStoreEdgeTest, InvalidOptionsRejectedAtOpen) {
  {
    KVStoreOptions opts;  // dir unset
    auto store = KVStore::Open(opts);
    ASSERT_FALSE(store.ok());
    EXPECT_TRUE(store.status().IsInvalidArgument());
  }
  {
    KVStoreOptions opts;
    opts.dir = TempDir("bad_mem");
    opts.memtable_max_bytes = 0;
    auto store = KVStore::Open(opts);
    ASSERT_FALSE(store.ok());
    EXPECT_TRUE(store.status().IsInvalidArgument());
  }
  for (int trigger : {0, -3}) {
    KVStoreOptions opts;
    opts.dir = TempDir("bad_trigger");
    opts.l0_compaction_trigger = trigger;
    auto store = KVStore::Open(opts);
    ASSERT_FALSE(store.ok());
    EXPECT_TRUE(store.status().IsInvalidArgument());
  }
  for (int bits : {0, -1}) {
    KVStoreOptions opts;
    opts.dir = TempDir("bad_bloom");
    opts.bloom_bits_per_key = bits;
    auto store = KVStore::Open(opts);
    ASSERT_FALSE(store.ok());
    EXPECT_TRUE(store.status().IsInvalidArgument());
  }
  // A rejected Open leaves nothing behind that blocks a valid retry.
  KVStoreOptions opts;
  opts.dir = TempDir("bad_then_good");
  opts.memtable_max_bytes = 0;
  ASSERT_FALSE(KVStore::Open(opts).ok());
  opts.memtable_max_bytes = 1 << 20;
  EXPECT_TRUE(KVStore::Open(opts).ok());
}

TEST(KVStoreEdgeTest, ZeroBlockCacheBytesDisablesCache) {
  KVStoreOptions opts;
  opts.dir = TempDir("nocache");
  opts.block_cache_bytes = 0;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  EXPECT_EQ(db->block_cache(), nullptr);
  ASSERT_TRUE(db->Put("k", "v").ok());
  ASSERT_TRUE(db->CompactAll().ok());
  std::string v;
  ASSERT_TRUE(db->Get("k", &v).ok());  // reads work uncached
  auto stats = db->stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(KVStoreEdgeTest, LargeValuesSurviveFlushAndCompaction) {
  KVStoreOptions opts;
  opts.dir = TempDir("large");
  opts.memtable_max_bytes = 64 << 10;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  // Values larger than the SSTable reader's 64 KB first-read chunk:
  // exercises the grow-and-retry path in the record decoder.
  Rng rng(3);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 8; ++i) {
    std::string value(150 * 1024 + size_t(rng.Uniform(50000)), char('a' + i));
    std::string key = "big" + std::to_string(i);
    reference[key] = value;
    ASSERT_TRUE(db->Put(key, value).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  for (const auto& [k, v] : reference) {
    std::string got;
    ASSERT_TRUE(db->Get(k, &got).ok()) << k;
    EXPECT_EQ(got.size(), v.size());
    EXPECT_EQ(got, v);
  }
  // Scan also decodes the big records.
  auto it = db->NewIterator();
  size_t count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, reference.size());
}

TEST(KVStoreEdgeTest, SyncWalModeWorks) {
  KVStoreOptions opts;
  opts.dir = TempDir("sync");
  opts.sync_wal = true;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Put("durable", "yes").ok());
  std::string v;
  ASSERT_TRUE(store.value()->Get("durable", &v).ok());
  EXPECT_EQ(v, "yes");
}

TEST(KVStoreEdgeTest, BinaryKeysAndValues) {
  KVStoreOptions opts;
  opts.dir = TempDir("binary");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  std::string key("\x00\x01\xff\x7f", 4);
  std::string value("\xde\xad\x00\xbe\xef", 5);
  ASSERT_TRUE(store.value()->Put(key, value).ok());
  ASSERT_TRUE(store.value()->Flush().ok());
  std::string got;
  ASSERT_TRUE(store.value()->Get(key, &got).ok());
  EXPECT_EQ(got, value);
}

TEST(KVStoreEdgeTest, IteratorSnapshotUnaffectedByLaterWrites) {
  KVStoreOptions opts;
  opts.dir = TempDir("snapshot");
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();
  ASSERT_TRUE(db->Put("a", "1").ok());
  auto it = db->NewIterator();
  ASSERT_TRUE(db->Put("b", "2").ok());
  ASSERT_TRUE(db->Delete("a").ok());
  size_t count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 1u);  // sees only "a" as of creation
}

TEST(KVStoreEdgeTest, ReopenAfterCompactionOnlyManifest) {
  std::string dir = TempDir("reopen");
  {
    KVStoreOptions opts;
    opts.dir = dir;
    auto store = KVStore::Open(opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(store.value()->Put("k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(store.value()->CompactAll().ok());
    EXPECT_EQ(store.value()->l0_file_count(), 0u);
    EXPECT_EQ(store.value()->l1_file_count(), 1u);
  }
  KVStoreOptions opts;
  opts.dir = dir;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->l1_file_count(), 1u);
  std::string v;
  ASSERT_TRUE(store.value()->Get("k50", &v).ok());
}

// Parameterized configuration sweep: the store must behave identically
// to a reference map under every (memtable size, trigger) combination.
struct ConfigCase {
  size_t memtable_bytes;
  int l0_trigger;
};

class KVStoreConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(KVStoreConfigTest, MatchesReferenceUnderChurn) {
  const ConfigCase& config = GetParam();
  KVStoreOptions opts;
  opts.dir = TempDir("cfg_" + std::to_string(config.memtable_bytes) + "_" +
                     std::to_string(config.l0_trigger));
  opts.memtable_max_bytes = config.memtable_bytes;
  opts.l0_compaction_trigger = config.l0_trigger;
  auto store = KVStore::Open(opts);
  ASSERT_TRUE(store.ok());
  KVStore* db = store.value().get();

  std::map<std::string, std::string> reference;
  Rng rng(config.memtable_bytes + uint64_t(config.l0_trigger));
  for (int op = 0; op < 1500; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(150));
    if (rng.Bernoulli(0.25)) {
      reference.erase(key);
      ASSERT_TRUE(db->Delete(key).ok());
    } else {
      std::string value = "v" + std::to_string(op);
      reference[key] = value;
      ASSERT_TRUE(db->Put(key, value).ok());
    }
  }
  for (const auto& [k, v] : reference) {
    std::string got;
    ASSERT_TRUE(db->Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  auto it = db->NewIterator();
  size_t count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, reference.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KVStoreConfigTest,
    ::testing::Values(ConfigCase{512, 2}, ConfigCase{2048, 2},
                      ConfigCase{2048, 8}, ConfigCase{16384, 4},
                      ConfigCase{1 << 20, 4}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return "mem" + std::to_string(info.param.memtable_bytes) + "_trig" +
             std::to_string(info.param.l0_trigger);
    });

}  // namespace
}  // namespace deluge::storage
