#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "pubsub/broker.h"

namespace deluge::pubsub {
namespace {

const geo::AABB kWorld({0, 0, 0}, {1000, 1000, 100});

Event MakeEvent(const std::string& topic,
                std::optional<geo::Vec3> pos = std::nullopt) {
  Event e;
  e.topic = topic;
  if (pos) e.position = pos;
  return e;
}

// -------------------------------------------------------------- Predicate

TEST(PredicateTest, NumericComparisons) {
  stream::Tuple t;
  t.Set("price", 42.0);
  EXPECT_TRUE((Predicate{"price", CmpOp::kEq, 42.0}).Matches(t));
  EXPECT_TRUE((Predicate{"price", CmpOp::kLt, 50.0}).Matches(t));
  EXPECT_TRUE((Predicate{"price", CmpOp::kGe, 42.0}).Matches(t));
  EXPECT_FALSE((Predicate{"price", CmpOp::kGt, 42.0}).Matches(t));
  EXPECT_TRUE((Predicate{"price", CmpOp::kNe, 0.0}).Matches(t));
}

TEST(PredicateTest, IntFieldComparesAgainstDoubleValue) {
  stream::Tuple t;
  t.Set("qty", int64_t{5});
  EXPECT_TRUE((Predicate{"qty", CmpOp::kLe, 5.0}).Matches(t));
  EXPECT_TRUE((Predicate{"qty", CmpOp::kGt, int64_t{4}}).Matches(t));
}

TEST(PredicateTest, StringEquality) {
  stream::Tuple t;
  t.Set("category", std::string("pastry"));
  EXPECT_TRUE(
      (Predicate{"category", CmpOp::kEq, std::string("pastry")}).Matches(t));
  EXPECT_TRUE(
      (Predicate{"category", CmpOp::kNe, std::string("tools")}).Matches(t));
  EXPECT_FALSE(
      (Predicate{"category", CmpOp::kLt, std::string("z")}).Matches(t));
}

TEST(PredicateTest, MissingFieldNeverMatches) {
  stream::Tuple t;
  EXPECT_FALSE((Predicate{"ghost", CmpOp::kEq, 1.0}).Matches(t));
  EXPECT_FALSE(
      (Predicate{"ghost", CmpOp::kNe, std::string("x")}).Matches(t));
}

// ------------------------------------------------------------ Subscription

TEST(SubscriptionTest, TopicAndRegionAndPredicatesAllRequired) {
  Subscription sub;
  sub.topic = "sale";
  sub.region = geo::AABB({0, 0, 0}, {10, 10, 10});
  sub.predicates = {{"discount", CmpOp::kGe, 0.5}};

  Event ok = MakeEvent("sale", geo::Vec3{5, 5, 5});
  ok.payload.Set("discount", 0.7);
  EXPECT_TRUE(sub.Matches(ok));

  Event wrong_topic = ok;
  wrong_topic.topic = "restock";
  EXPECT_FALSE(sub.Matches(wrong_topic));

  Event outside = ok;
  outside.position = geo::Vec3{500, 500, 50};
  EXPECT_FALSE(sub.Matches(outside));

  Event weak_discount = ok;
  weak_discount.payload.Set("discount", 0.1);
  EXPECT_FALSE(sub.Matches(weak_discount));

  Event no_position = ok;
  no_position.position.reset();
  EXPECT_FALSE(sub.Matches(no_position));  // regional needs a position
}

TEST(SubscriptionTest, EmptyTopicIsWildcard) {
  Subscription sub;
  EXPECT_TRUE(sub.Matches(MakeEvent("anything")));
}

// ----------------------------------------------------------------- Broker

class BrokerTest : public ::testing::Test {
 protected:
  std::map<net::NodeId, int> delivered_;
  Broker broker_{kWorld, 50.0, [this](net::NodeId node, const Event&) {
                   delivered_[node]++;
                 }};
};

TEST_F(BrokerTest, TopicRouting) {
  Subscription s1;
  s1.subscriber = 1;
  s1.topic = "sales";
  broker_.Subscribe(std::move(s1));
  Subscription s2;
  s2.subscriber = 2;
  s2.topic = "security";
  broker_.Subscribe(std::move(s2));

  EXPECT_EQ(broker_.Publish(MakeEvent("sales")), 1u);
  EXPECT_EQ(delivered_[1], 1);
  EXPECT_EQ(delivered_.count(2), 0u);
}

TEST_F(BrokerTest, WildcardReceivesEverything) {
  Subscription s;
  s.subscriber = 9;
  s.topic = "";
  broker_.Subscribe(std::move(s));
  broker_.Publish(MakeEvent("a"));
  broker_.Publish(MakeEvent("b"));
  EXPECT_EQ(delivered_[9], 2);
}

TEST_F(BrokerTest, RegionalSubscriptionMatchesByPosition) {
  Subscription s;
  s.subscriber = 3;
  s.region = geo::AABB({100, 100, 0}, {200, 200, 100});
  broker_.Subscribe(std::move(s));

  EXPECT_EQ(broker_.Publish(MakeEvent("t", geo::Vec3{150, 150, 50})), 1u);
  EXPECT_EQ(broker_.Publish(MakeEvent("t", geo::Vec3{500, 500, 50})), 0u);
  EXPECT_EQ(broker_.Publish(MakeEvent("t")), 0u);  // no position
  EXPECT_EQ(delivered_[3], 1);
}

TEST_F(BrokerTest, UnsubscribeStopsDelivery) {
  Subscription s;
  s.subscriber = 5;
  s.topic = "x";
  uint64_t id = broker_.Subscribe(std::move(s));
  broker_.Publish(MakeEvent("x"));
  EXPECT_TRUE(broker_.Unsubscribe(id));
  broker_.Publish(MakeEvent("x"));
  EXPECT_EQ(delivered_[5], 1);
  EXPECT_FALSE(broker_.Unsubscribe(id));  // already gone
  EXPECT_EQ(broker_.subscription_count(), 0u);
}

TEST_F(BrokerTest, UnsubscribeRegional) {
  Subscription s;
  s.subscriber = 6;
  s.region = geo::AABB({0, 0, 0}, {100, 100, 100});
  uint64_t id = broker_.Subscribe(std::move(s));
  EXPECT_TRUE(broker_.Unsubscribe(id));
  EXPECT_EQ(broker_.Publish(MakeEvent("t", geo::Vec3{50, 50, 50})), 0u);
}

TEST_F(BrokerTest, GridIndexPrunesCandidates) {
  // 200 regional subscriptions scattered over the world; an event in one
  // corner must only test the few whose regions touch its cell.
  for (int i = 0; i < 200; ++i) {
    Subscription s;
    s.subscriber = net::NodeId(i);
    double x = (i % 20) * 50.0;
    double y = (i / 20) * 100.0;
    s.region = geo::AABB({x, y, 0}, {x + 40, y + 40, 100});
    broker_.Subscribe(std::move(s));
  }
  broker_.ResetStats();
  broker_.Publish(MakeEvent("t", geo::Vec3{10, 10, 50}));
  EXPECT_LT(broker_.stats().candidates_checked, 20u);
}

TEST_F(BrokerTest, ContentPredicatesComposeWithTopic) {
  Subscription cheap;
  cheap.subscriber = 1;
  cheap.topic = "listing";
  cheap.predicates = {{"price", CmpOp::kLt, 100.0}};
  broker_.Subscribe(std::move(cheap));

  Event pricey = MakeEvent("listing");
  pricey.payload.Set("price", 500.0);
  Event bargain = MakeEvent("listing");
  bargain.payload.Set("price", 50.0);
  EXPECT_EQ(broker_.Publish(pricey), 0u);
  EXPECT_EQ(broker_.Publish(bargain), 1u);
}

TEST_F(BrokerTest, StatsCountDeliveries) {
  Subscription s;
  s.subscriber = 1;
  s.topic = "t";
  broker_.Subscribe(std::move(s));
  broker_.Publish(MakeEvent("t"));
  broker_.Publish(MakeEvent("t"));
  EXPECT_EQ(broker_.stats().events_published, 2u);
  EXPECT_EQ(broker_.stats().deliveries, 2u);
}

// ---------------------------------------------------------- BrokerOverlay

TEST(BrokerOverlayTest, TopicShardingIsConsistent) {
  int total = 0;
  BrokerOverlay overlay(4, kWorld, 50.0,
                        [&](net::NodeId, const Event&) { ++total; });
  Subscription s;
  s.subscriber = 1;
  s.topic = "alpha";
  overlay.Subscribe(std::move(s));
  // Publication routes to the same broker that holds the subscription.
  EXPECT_EQ(overlay.Publish(MakeEvent("alpha")), 1u);
  EXPECT_EQ(overlay.Publish(MakeEvent("beta")), 0u);
  EXPECT_EQ(total, 1);
  EXPECT_EQ(overlay.HomeOf("alpha"), overlay.HomeOf("alpha"));
}

TEST(BrokerOverlayTest, LoadSpreadsAcrossBrokers) {
  BrokerOverlay overlay(4, kWorld, 50.0, [](net::NodeId, const Event&) {});
  std::set<size_t> homes;
  for (int i = 0; i < 64; ++i) {
    homes.insert(overlay.HomeOf("topic" + std::to_string(i)));
  }
  EXPECT_EQ(homes.size(), 4u);  // all brokers get some topics
}

// The heap-backed delivery queue must drain in exactly the order the
// seed's linear scans produced: QoS rank descending, FIFO within a
// class — here across hundreds of interleaved classes, where a subtle
// heap bug (e.g. unstable ties) would scramble the sequence.
TEST(BrokerQueueTest, HeapDrainMatchesClassRankThenFifoOrder) {
  std::vector<std::pair<uint8_t, int>> delivered;  // (qos rank, payload id)
  Broker broker(kWorld, 50.0, [&](net::NodeId, const Event& e) {
    delivered.emplace_back(QosRank(e.qos),
                           int(*e.payload.Get<int64_t>("id")));
  });
  Subscription sub;
  sub.subscriber = 1;
  sub.topic = "t";
  broker.Subscribe(sub);
  broker.SetQueueLimit(512);

  deluge::Rng rng(17);
  std::vector<std::pair<uint8_t, int>> expected;
  for (int i = 0; i < 400; ++i) {
    Event e = MakeEvent("t");
    e.qos = kAllQosClasses[rng.Uniform(kQosClassCount)];
    e.payload.Set("id", int64_t(i));
    expected.emplace_back(QosRank(e.qos), i);
    broker.Publish(e);
  }
  // Rank descending; insertion (seq) order within each class.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  EXPECT_EQ(broker.Drain(), 400u);
  EXPECT_EQ(delivered, expected);
}

// Shedding through the worst-first heap: evictions strike the lowest
// class (oldest first), and an incoming event no better than the
// current worst is refused at the door.
TEST(BrokerQueueTest, HeapShedsLowestClassOldestFirst) {
  std::vector<int> delivered;
  Broker broker(kWorld, 50.0, [&](net::NodeId, const Event& e) {
    delivered.push_back(int(*e.payload.Get<int64_t>("id")));
  });
  Subscription sub;
  sub.subscriber = 1;
  sub.topic = "t";
  broker.Subscribe(sub);
  broker.SetQueueLimit(4);

  // Fill with two telemetry and two bulk events, then push two
  // interactive ones: the bulks go first (oldest first), then a bulk
  // arrival is refused outright.
  int id = 0;
  auto publish = [&](QosClass qos) {
    Event e = MakeEvent("t");
    e.qos = qos;
    e.payload.Set("id", int64_t(id++));
    broker.Publish(e);
  };
  publish(QosClass::kTelemetry);    // id 0
  publish(QosClass::kBulk);         // id 1
  publish(QosClass::kTelemetry);    // id 2
  publish(QosClass::kBulk);         // id 3
  publish(QosClass::kInteractive);  // id 4 — evicts id 1 (lowest, oldest)
  publish(QosClass::kInteractive);  // id 5 — evicts id 3 (remaining bulk)
  publish(QosClass::kBulk);  // id 6 — refused: queue's worst outranks it
  EXPECT_EQ(broker.stats().deliveries_shed, 3u);
  EXPECT_EQ(broker.queue_depth(), 4u);

  EXPECT_EQ(broker.Drain(), 4u);
  // Interactive first (FIFO: 4 then 5), then the surviving telemetry
  // events (0 then 2).
  EXPECT_EQ(delivered, (std::vector<int>{4, 5, 0, 2}));
}

}  // namespace
}  // namespace deluge::pubsub
