// Tests of the transport abstraction (DESIGN.md §12): the cluster
// config, the SimTransport veneer, and the real-socket backend run as
// live transports inside this process (Unix-domain and TCP loopback).
//
// All suites here are named *Transport*/*ClusterConfig* — the TSan CI
// step filters on `*Transport*` to race-check the socket backend.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "net/network.h"
#include "net/node_config.h"
#include "net/simulator.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "replica/node.h"
#include "replica/replicated_store.h"

namespace deluge::net {
namespace {

// ---------------------------------------------------------- ClusterConfig

TEST(ClusterConfigTest, SerializeParseRoundTrip) {
  ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, "/tmp/a.sock"}});
  cfg.processes.push_back({1, {"127.0.0.1", 7001, ""}});
  cfg.nodes.push_back({0, 0, "driver", ""});
  cfg.nodes.push_back({1, 1, "replica", "r0"});
  cfg.nodes.push_back({2, 1, "sink", ""});

  ClusterConfig back;
  ASSERT_TRUE(ClusterConfig::Parse(cfg.Serialize(), &back).ok());
  ASSERT_EQ(back.processes.size(), 2u);
  ASSERT_EQ(back.nodes.size(), 3u);
  EXPECT_TRUE(back.process(0)->endpoint.is_unix());
  EXPECT_EQ(back.process(0)->endpoint.unix_path, "/tmp/a.sock");
  EXPECT_EQ(back.process(1)->endpoint.port, 7001);
  EXPECT_EQ(back.node(1)->role, "replica");
  EXPECT_EQ(back.node(1)->name, "r0");
  EXPECT_EQ(back.process_of(2)->id, 1u);
  EXPECT_EQ(back.nodes_of(1), (std::vector<NodeId>{1, 2}));
}

TEST(ClusterConfigTest, ParseRejectsMalformedInput) {
  ClusterConfig cfg;
  EXPECT_FALSE(ClusterConfig::Parse("bogus directive", &cfg).ok());
  EXPECT_FALSE(ClusterConfig::Parse("process 0 smoke signals", &cfg).ok());
  EXPECT_FALSE(
      ClusterConfig::Parse("process 0 tcp h 1\nprocess 0 tcp h 2", &cfg).ok());
  EXPECT_FALSE(ClusterConfig::Parse("node 1 7 replica", &cfg).ok())
      << "node naming an unknown process must fail";
}

TEST(ClusterConfigTest, CommentsAndBlankLinesIgnored) {
  ClusterConfig cfg;
  ASSERT_TRUE(ClusterConfig::Parse(
                  "# header\n\nprocess 0 unix /tmp/x # trailing\n"
                  "node 0 0 driver\n",
                  &cfg)
                  .ok());
  EXPECT_EQ(cfg.processes.size(), 1u);
  EXPECT_EQ(cfg.nodes.size(), 1u);
}

// ----------------------------------------------------------- SimTransport

TEST(SimTransportTest, MatchesDirectNetworkUse) {
  // The same workload driven through the wrapper and through the raw
  // Network must produce identical stats — the parity the migration of
  // every protocol layer onto Transport rests on.
  auto run = [](bool through_transport) {
    Simulator sim;
    Network net(&sim);
    SimTransport transport(&net, &sim);
    std::vector<Message> got;
    auto record = [&got](const Message& m) { got.push_back(m); };
    NodeId a = through_transport ? transport.AddNode(record)
                                 : net.AddNode(record);
    NodeId b = through_transport ? transport.AddNode(record)
                                 : net.AddNode(record);
    for (int i = 0; i < 10; ++i) {
      Message m;
      m.from = a;
      m.to = b;
      m.type = uint32_t(i);
      m.payload = std::string(size_t(i) * 10, 'x');
      Status s = through_transport ? transport.Send(std::move(m))
                                   : net.Send(std::move(m));
      EXPECT_TRUE(s.ok());
    }
    sim.Run();
    NetworkStats out = net.stats();
    EXPECT_EQ(got.size(), 10u);
    return out;
  };
  NetworkStats direct = run(false);
  NetworkStats wrapped = run(true);
  EXPECT_EQ(direct.messages_sent, wrapped.messages_sent);
  EXPECT_EQ(direct.messages_delivered, wrapped.messages_delivered);
  EXPECT_EQ(direct.bytes_sent, wrapped.bytes_sent);
  EXPECT_EQ(direct.bytes_delivered, wrapped.bytes_delivered);
}

TEST(SimTransportTest, ClockTimersAndFaultsDelegate) {
  Simulator sim;
  Network net(&sim);
  SimTransport transport(&net, &sim);
  NodeId a = transport.AddNode([](const Message&) {});
  NodeId b = transport.AddNode([](const Message&) {});

  Micros fired_at = -1;
  transport.After(250, [&] { fired_at = transport.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, 250);
  EXPECT_EQ(transport.Now(), sim.Now());

  transport.Partition(a, b);
  EXPECT_TRUE(transport.IsPartitioned(a, b));
  EXPECT_TRUE(net.IsPartitioned(a, b));
  transport.Heal(a, b);
  EXPECT_FALSE(net.IsPartitioned(a, b));
  transport.SetNodeUp(b, false);
  EXPECT_FALSE(net.IsNodeUp(b));
  transport.SetNodeUp(b, true);
  EXPECT_EQ(transport.node_count(), net.node_count());
}

// -------------------------------------------------------- SocketTransport

/// Polls `pred` until it holds or `timeout_ms` passes (wall clock —
/// these tests run a real event loop).
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Reserves a loopback TCP port: bind to 0, read it back, close.  The
/// tiny reuse race is acceptable in tests.
uint16_t ReservePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

/// A scratch directory for Unix socket paths, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/deluge_transport_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!path.empty()) {
      std::string cmd = "rm -rf " + path;
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
  std::string sock(const std::string& name) const { return path + "/" + name; }
};

/// Two single-node processes in this OS process, talking over the
/// endpoints in `cfg` (node 0 in process 0, node 1 in process 1).
struct TwoProcessPair {
  ThreadPool pool{8};
  std::unique_ptr<SocketTransport> a, b;

  explicit TwoProcessPair(const ClusterConfig& cfg) {
    SocketTransportOptions oa;
    oa.config = cfg;
    oa.local_process = 0;
    oa.pool = &pool;
    a = std::make_unique<SocketTransport>(std::move(oa));
    SocketTransportOptions ob;
    ob.config = cfg;
    ob.local_process = 1;
    ob.pool = &pool;
    b = std::make_unique<SocketTransport>(std::move(ob));
  }
  ~TwoProcessPair() {
    a->Stop();
    b->Stop();
  }
};

ClusterConfig PairConfig(const SocketEndpoint& ea, const SocketEndpoint& eb) {
  ClusterConfig cfg;
  cfg.processes.push_back({0, ea});
  cfg.processes.push_back({1, eb});
  cfg.nodes.push_back({0, 0, "driver", ""});
  cfg.nodes.push_back({1, 1, "sink", ""});
  return cfg;
}

void ExerciseRoundTrip(TwoProcessPair* pair) {
  std::atomic<int> a_got{0};
  std::atomic<int> b_got{0};
  std::atomic<uint32_t> echoed_type{0};
  NodeId na = pair->a->AddNode([&](const Message& m) {
    echoed_type.store(m.type);
    a_got.fetch_add(1);
  });
  SocketTransport* tb = pair->b.get();
  NodeId nb = pair->b->AddNode([&, tb](const Message& m) {
    b_got.fetch_add(1);
    Message reply;  // echo back with type + 1
    reply.from = m.to;
    reply.to = m.from;
    reply.type = m.type + 1;
    reply.payload = std::string(std::string_view(m.payload));
    EXPECT_TRUE(tb->Send(std::move(reply)).ok());
  });
  ASSERT_TRUE(pair->a->Start().ok());
  ASSERT_TRUE(pair->b->Start().ok());

  Message m;
  m.from = na;
  m.to = nb;
  m.type = 41;
  m.payload = std::string("over the real wire");
  ASSERT_TRUE(pair->a->Send(std::move(m)).ok());

  EXPECT_TRUE(WaitUntil([&] { return a_got.load() >= 1; }))
      << "echo reply never arrived";
  EXPECT_EQ(b_got.load(), 1);
  EXPECT_EQ(echoed_type.load(), 42u);
  EXPECT_GE(pair->a->stats().messages_sent, 1u);
  EXPECT_GE(pair->b->stats().messages_delivered, 1u);
}

TEST(SocketTransportTest, UnixLoopbackRoundTrip) {
  TempDir dir;
  TwoProcessPair pair(
      PairConfig({"", 0, dir.sock("a.sock")}, {"", 0, dir.sock("b.sock")}));
  ExerciseRoundTrip(&pair);
}

TEST(SocketTransportTest, TcpLoopbackRoundTrip) {
  const uint16_t pa = ReservePort();
  const uint16_t pb = ReservePort();
  ASSERT_NE(pa, 0);
  ASSERT_NE(pb, 0);
  TwoProcessPair pair(
      PairConfig({"127.0.0.1", pa, ""}, {"127.0.0.1", pb, ""}));
  ExerciseRoundTrip(&pair);
}

TEST(SocketTransportTest, LocalDeliveryStaysInProcess) {
  // Both endpoints in one process: messages route on the event strand
  // without touching a socket, but count in the same stats.
  TempDir dir;
  ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, dir.sock("only.sock")}});
  cfg.nodes.push_back({0, 0, "a", ""});
  cfg.nodes.push_back({1, 0, "b", ""});
  ThreadPool pool(4);
  SocketTransportOptions opts;
  opts.config = cfg;
  opts.local_process = 0;
  opts.pool = &pool;
  SocketTransport t(std::move(opts));
  std::atomic<int> got{0};
  NodeId a = t.AddNode([&](const Message&) { got.fetch_add(1); });
  NodeId b = t.AddNode([&](const Message&) { got.fetch_add(1); });
  ASSERT_TRUE(t.Start().ok());
  for (int i = 0; i < 20; ++i) {
    Message m;
    m.from = i % 2 == 0 ? a : b;
    m.to = i % 2 == 0 ? b : a;
    m.type = 1;
    m.payload = std::string("ping");
    ASSERT_TRUE(t.Send(std::move(m)).ok());
  }
  EXPECT_TRUE(WaitUntil([&] { return got.load() == 20; }));
  EXPECT_EQ(t.stats().messages_sent, 20u);
  EXPECT_EQ(t.stats().messages_delivered, 20u);
  t.Stop();
}

TEST(SocketTransportTest, TimersFireOnWallClock) {
  TempDir dir;
  ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, dir.sock("t.sock")}});
  cfg.nodes.push_back({0, 0, "a", ""});
  ThreadPool pool(4);
  SocketTransportOptions opts;
  opts.config = cfg;
  opts.local_process = 0;
  opts.pool = &pool;
  SocketTransport t(std::move(opts));
  t.AddNode([](const Message&) {});
  ASSERT_TRUE(t.Start().ok());

  const Micros t0 = t.Now();
  std::atomic<int> fired{0};
  std::atomic<Micros> fired_at{0};
  t.After(5 * kMicrosPerMilli, [&] {
    fired_at.store(t.Now());
    fired.fetch_add(1);
  });
  t.Post([&] { fired.fetch_add(1); });
  EXPECT_TRUE(WaitUntil([&] { return fired.load() == 2; }));
  EXPECT_GE(fired_at.load() - t0, 5 * kMicrosPerMilli);
  t.Stop();
}

TEST(SocketTransportTest, NodeDownAndPartitionFilterLocally) {
  TempDir dir;
  ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, dir.sock("f.sock")}});
  cfg.nodes.push_back({0, 0, "a", ""});
  cfg.nodes.push_back({1, 0, "b", ""});
  ThreadPool pool(4);
  SocketTransportOptions opts;
  opts.config = cfg;
  opts.local_process = 0;
  opts.pool = &pool;
  SocketTransport t(std::move(opts));
  std::atomic<int> got{0};
  NodeId a = t.AddNode([&](const Message&) { got.fetch_add(1); });
  NodeId b = t.AddNode([&](const Message&) { got.fetch_add(1); });
  ASSERT_TRUE(t.Start().ok());

  auto send = [&] {
    Message m;
    m.from = a;
    m.to = b;
    m.type = 1;
    m.payload = std::string("x");
    return t.Send(std::move(m));
  };

  t.SetNodeUp(b, false);
  EXPECT_FALSE(t.IsNodeUp(b));
  EXPECT_FALSE(send().ok());
  t.SetNodeUp(b, true);

  t.Partition(a, b);
  EXPECT_TRUE(t.IsPartitioned(a, b));
  EXPECT_FALSE(send().ok());
  t.Heal(a, b);

  t.SetLinkDown(a, b, true);
  EXPECT_TRUE(t.IsLinkDown(a, b));
  EXPECT_FALSE(send().ok());
  t.SetLinkDown(a, b, false);

  EXPECT_TRUE(send().ok());
  EXPECT_TRUE(WaitUntil([&] { return got.load() == 1; }));
  const NetworkStats& s = t.stats();
  EXPECT_EQ(s.messages_dropped, 3u);
  EXPECT_EQ(s.drops_node_down, 1u);
  EXPECT_EQ(s.drops_link_down, 1u);
  t.Stop();
}

TEST(SocketTransportTest, SendToUnknownNodeRejected) {
  TempDir dir;
  ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, dir.sock("u.sock")}});
  cfg.nodes.push_back({0, 0, "a", ""});
  ThreadPool pool(4);
  SocketTransportOptions opts;
  opts.config = cfg;
  opts.local_process = 0;
  opts.pool = &pool;
  SocketTransport t(std::move(opts));
  NodeId a = t.AddNode([](const Message&) {});
  ASSERT_TRUE(t.Start().ok());
  Message m;
  m.from = a;
  m.to = 99;  // not in the config
  m.payload = std::string("x");
  EXPECT_FALSE(t.Send(std::move(m)).ok());
  t.Stop();
}

TEST(SocketTransportTest, SenderReconnectsAcrossPeerRestart) {
  // Peer comes up only after the first send: the reconnect policy must
  // carry queued frames through the initial connection failures.
  TempDir dir;
  ClusterConfig cfg =
      PairConfig({"", 0, dir.sock("ra.sock")}, {"", 0, dir.sock("rb.sock")});
  ThreadPool pool(8);

  SocketTransportOptions oa;
  oa.config = cfg;
  oa.local_process = 0;
  oa.pool = &pool;
  SocketTransport a(std::move(oa));
  NodeId na = a.AddNode([](const Message&) {});
  ASSERT_TRUE(a.Start().ok());

  Message m;
  m.from = na;
  m.to = 1;
  m.type = 9;
  m.payload = std::string("early bird");
  ASSERT_TRUE(a.Send(std::move(m)).ok());  // peer not yet listening

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  SocketTransportOptions ob;
  ob.config = cfg;
  ob.local_process = 1;
  ob.pool = &pool;
  SocketTransport b(std::move(ob));
  std::atomic<int> got{0};
  b.AddNode([&](const Message&) { got.fetch_add(1); });
  ASSERT_TRUE(b.Start().ok());

  EXPECT_TRUE(WaitUntil([&] { return got.load() == 1; }))
      << "frame queued before the peer existed was never delivered";
  a.Stop();
  b.Stop();
}

// ------------------------------------- replica fabric over real sockets

TEST(SocketTransportTest, RemoteReplicaQuorumOverUnixSockets) {
  // The E24 shape in miniature: a ReplicatedStore coordinator in
  // "process" 0 quorums over three ReplicaNodes living in "process" 1,
  // all traffic over Unix-domain sockets.  Ring placement is derived
  // from the replica names on both sides (AddRemoteReplica).
  TempDir dir;
  ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, dir.sock("coord.sock")}});
  cfg.processes.push_back({1, {"", 0, dir.sock("host.sock")}});
  cfg.nodes.push_back({0, 0, "driver", ""});
  cfg.nodes.push_back({1, 1, "replica", "r0"});
  cfg.nodes.push_back({2, 1, "replica", "r1"});
  cfg.nodes.push_back({3, 1, "replica", "r2"});
  ThreadPool pool(8);

  SocketTransportOptions oh;
  oh.config = cfg;
  oh.local_process = 1;
  oh.pool = &pool;
  SocketTransport host(std::move(oh));
  std::vector<std::unique_ptr<replica::ReplicaNode>> nodes;
  for (const char* name : {"r0", "r1", "r2"}) {
    nodes.push_back(std::make_unique<replica::ReplicaNode>(
        replica::ReplicaNode::RingIdFor(name), &host, nullptr));
  }
  ASSERT_TRUE(host.Start().ok());

  SocketTransportOptions oc;
  oc.config = cfg;
  oc.local_process = 0;
  oc.pool = &pool;
  SocketTransport coord(std::move(oc));
  replica::ReplicaOptions ropts;
  ropts.n = 3;
  ropts.r = 2;
  ropts.w = 2;
  replica::ReplicatedStore store(&coord, /*ring=*/nullptr, ropts);
  EXPECT_EQ(store.AddRemoteReplica("r0", 1),
            replica::ReplicaNode::RingIdFor("r0"));
  store.AddRemoteReplica("r1", 2);
  store.AddRemoteReplica("r2", 3);
  ASSERT_TRUE(coord.Start().ok());

  // The store is strand-bound: drive it via Post, observe via atomics.
  std::atomic<int> wrote{0};
  std::atomic<bool> write_ok{false};
  coord.Post([&] {
    store.Put("avatar:1", "pos=(3,4)", {}, [&](const Status& s, replica::Version) {
      write_ok.store(s.ok());
      wrote.fetch_add(1);
    });
  });
  ASSERT_TRUE(WaitUntil([&] { return wrote.load() == 1; }))
      << "quorum write never completed";
  EXPECT_TRUE(write_ok.load());

  std::atomic<int> read{0};
  std::atomic<bool> read_ok{false};
  std::string value;
  coord.Post([&] {
    store.Get("avatar:1", {},
              [&](const Status& s, const std::string& v, replica::Version) {
                value = v;  // written before `read`, read after
                read_ok.store(s.ok());
                read.fetch_add(1);
              });
  });
  ASSERT_TRUE(WaitUntil([&] { return read.load() == 1; }))
      << "quorum read never completed";
  EXPECT_TRUE(read_ok.load());
  EXPECT_EQ(value, "pos=(3,4)");

  // Every replica host actually stores the record (w=2 acked, n=3
  // targeted; give the third write a moment to land).  Counting runs on
  // the host strand — the replicas are strand-bound like every protocol
  // object.
  auto count_stored = [&] {
    std::atomic<size_t> stored{0};
    std::atomic<bool> done{false};
    host.Post([&] {
      size_t n = 0;
      for (auto& r : nodes) n += r->KeyCount();
      stored.store(n);
      done.store(true);
    });
    WaitUntil([&] { return done.load(); }, 2000);
    return stored.load();
  };
  EXPECT_TRUE(WaitUntil([&] { return count_stored() == 3; }));
  EXPECT_GT(store.AckedVersion("avatar:1").counter, 0u);
  coord.Stop();
  host.Stop();
}

}  // namespace
}  // namespace deluge::net
