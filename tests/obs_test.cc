// Tests for the unified observability layer (src/obs): registry
// interning, striped counters, gauges, concurrent histograms,
// StatsScope retirement, and the tracing spine.  Suite names contain
// "Obs" so the CI TSan job's --gtest_filter picks them up — several of
// these tests are race regressions, not just behavior pins.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace deluge::obs {
namespace {

// ------------------------------------------------------------ interning

TEST(ObsRegistryTest, LabelPermutationsInternToOneMetric) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("hits", {{"shard", "3"}, {"zone", "eu"}});
  Counter* b = reg.GetCounter("hits", {{"zone", "eu"}, {"shard", "3"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);

  // Different labels (or none) are different metrics.
  Counter* c = reg.GetCounter("hits", {{"shard", "4"}, {"zone", "eu"}});
  Counter* d = reg.GetCounter("hits");
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(ObsRegistryTest, CanonicalKeySortsLabels) {
  EXPECT_EQ(MetricsRegistry::CanonicalKey(
                "m", {{"b", "2"}, {"a", "1"}}),
            "m{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::CanonicalKey("m", {}), "m");
}

TEST(ObsRegistryTest, HandlesAreStableAcrossRehash) {
  MetricsRegistry reg;
  Counter* first = reg.GetCounter("stable");
  first->Add(7);
  // Force the registry's map through growth/rehash.
  for (int i = 0; i < 200; ++i) {
    reg.GetCounter("filler", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(reg.GetCounter("stable"), first);
  EXPECT_EQ(first->Value(), 7u);
}

// ------------------------------------------------------------- primitives

TEST(ObsCounterTest, StripedAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsGaugeTest, AggModes) {
  Gauge sum(Gauge::Agg::kSum);
  sum.Add(1.5);
  sum.Add(2.5);
  EXPECT_DOUBLE_EQ(sum.Value(), 4.0);

  Gauge max(Gauge::Agg::kMax);
  max.UpdateMax(3.0);
  max.UpdateMax(1.0);  // must not regress
  EXPECT_DOUBLE_EQ(max.Value(), 3.0);

  Gauge last(Gauge::Agg::kLast);
  last.Set(9.0);
  last.Set(2.0);
  EXPECT_DOUBLE_EQ(last.Value(), 2.0);
}

TEST(ObsHistogramTest, ConcurrentMatchesPlainSingleThreaded) {
  ConcurrentHistogram ch;
  Histogram plain;
  for (int64_t v = 0; v < 1000; ++v) {
    ch.Record(v);
    plain.Record(v);
  }
  Histogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_DOUBLE_EQ(snap.mean(), plain.mean());
  EXPECT_EQ(snap.min(), plain.min());
  EXPECT_EQ(snap.max(), plain.max());
  EXPECT_DOUBLE_EQ(snap.P99(), plain.P99());
}

// Satellite regression: ThreadPool workers all recording into one
// shared ConcurrentHistogram — the exact shape of the priority
// scheduler / txn coordinator / stream scheduler delivery paths.  Under
// TSan this pins that the per-stripe locking really covers the
// worker-thread writes (a plain common::Histogram here is a data race).
TEST(ObsHistogramTest, ThreadPoolWorkersRecordSharedHistogram) {
  ConcurrentHistogram hist;
  Counter delivered;
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&hist, &delivered, i] {
      hist.Record(i % 512);
      delivered.Add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(hist.Count(), uint64_t(kTasks));
  EXPECT_EQ(delivered.Value(), uint64_t(kTasks));
  Histogram snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), uint64_t(kTasks));
  EXPECT_LE(snap.max(), 511);
}

// --------------------------------------------------------------- snapshot

TEST(ObsRegistryTest, SnapshotExportsEveryKindSorted) {
  MetricsRegistry reg;
  reg.GetCounter("a.counter")->Add(5);
  reg.GetGauge("b.gauge")->Set(2.5);
  ConcurrentHistogram* h = reg.GetHistogram("c.hist");
  h->Record(10);
  h->Record(30);

  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].Key(), "a.counter");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap[0].value, 5.0);
  EXPECT_EQ(snap[1].Key(), "b.gauge");
  EXPECT_DOUBLE_EQ(snap[1].value, 2.5);
  EXPECT_EQ(snap[2].Key(), "c.hist");
  EXPECT_EQ(snap[2].kind, MetricKind::kHistogram);
  EXPECT_DOUBLE_EQ(snap[2].value, 2.0);  // observation count
  EXPECT_EQ(snap[2].hist.count(), 2u);
  EXPECT_EQ(snap[2].hist.max(), 30);
}

// Registration, recording, and snapshotting racing from different
// threads (the TSan meat): new metrics intern while existing handles
// record and a reader snapshots.  Snapshot values must never exceed
// what was written.
TEST(ObsRegistryTest, ConcurrentRegistrationRecordingAndSnapshot) {
  MetricsRegistry reg;
  Counter* shared = reg.GetCounter("race.shared");
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&reg, shared, t] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        shared->Add(1);
        if (i % 64 == 0) {
          // Interleave fresh registrations with hot-path recording.
          reg.GetCounter("race.churn",
                         {{"writer", std::to_string(t)},
                          {"i", std::to_string(i)}})
              ->Add(1);
        }
      }
    });
  }
  std::thread reader([&reg, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const MetricSample& s : reg.Snapshot()) {
        if (s.name == "race.shared") {
          EXPECT_LE(s.value, double(kWriters * kPerWriter));
        }
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(shared->Value(), kWriters * kPerWriter);
}

// ------------------------------------------------------------- StatsScope

TEST(ObsScopeTest, RetirementFoldsIntoInstanceAll) {
  MetricsRegistry reg;
  {
    StatsScope scope("demo", {{"shard", "0"}}, &reg);
    scope.counter("events")->Add(5);
    scope.gauge("high_water", Gauge::Agg::kMax)->UpdateMax(7.0);
    scope.histogram("latency_us")->Record(100);
  }
  {
    StatsScope scope("demo", {{"shard", "1"}}, &reg);
    scope.counter("events")->Add(3);
    scope.gauge("high_water", Gauge::Agg::kMax)->UpdateMax(4.0);
    scope.histogram("latency_us")->Record(300);
  }
  // Both instances retired: only aggregates remain, and cardinality is
  // bounded by metric families, not by how many instances ever lived.
  // (shard labels differ, so each family keeps one entry per shard.)
  std::vector<MetricSample> snap = reg.Snapshot();
  double events_total = 0.0;
  double high_water = 0.0;
  uint64_t latency_count = 0;
  for (const MetricSample& s : snap) {
    bool is_all = false;
    for (const auto& [k, v] : s.labels) {
      if (k == "instance") {
        EXPECT_EQ(v, "all") << s.Key();
        is_all = true;
      }
    }
    EXPECT_TRUE(is_all) << "live per-instance entry survived: " << s.Key();
    if (s.name == "demo.events") events_total += s.value;
    if (s.name == "demo.high_water") {
      high_water = std::max(high_water, s.value);
    }
    if (s.name == "demo.latency_us") latency_count += s.hist.count();
  }
  EXPECT_DOUBLE_EQ(events_total, 8.0);
  EXPECT_DOUBLE_EQ(high_water, 7.0);
  EXPECT_EQ(latency_count, 2u);
}

TEST(ObsScopeTest, SameLabelsAccumulateAcrossInstanceGenerations) {
  // Two generations of the "same" instance (equal extra labels): the
  // aggregate keeps accumulating, so restarts don't lose history.
  MetricsRegistry reg;
  for (int gen = 0; gen < 3; ++gen) {
    StatsScope scope("svc", {}, &reg);
    scope.counter("requests")->Add(10);
  }
  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].value, 30.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsScopeTest, ScopeStampsSubsystemAndInstanceLabels) {
  MetricsRegistry reg;
  StatsScope scope("sub", {{"shard", "2"}}, &reg);
  scope.counter("n")->Add(1);
  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "sub.n");
  bool has_subsystem = false, has_instance = false, has_shard = false;
  for (const auto& [k, v] : snap[0].labels) {
    if (k == "subsystem" && v == "sub") has_subsystem = true;
    if (k == "instance") has_instance = true;
    if (k == "shard" && v == "2") has_shard = true;
  }
  EXPECT_TRUE(has_subsystem);
  EXPECT_TRUE(has_instance);
  EXPECT_TRUE(has_shard);
}

// ---------------------------------------------------------------- tracing

TEST(ObsTraceTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  tracer.Drain();
  {
    Span root("test.root");
    Span child("test.child");
    EXPECT_FALSE(root.sampled());
    EXPECT_FALSE(child.sampled());
  }
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(ObsTraceTest, ParentChildStitching) {
  Tracer& tracer = Tracer::Global();
  tracer.Drain();
  tracer.Enable(1);  // sample every trace
  {
    Span root("test.ingest");
    {
      Span child1("test.fusion");
    }
    {
      Span child2("test.broker");
      Span grandchild("test.storage");
    }
  }
  tracer.Disable();
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 4u);

  auto find = [&spans](const std::string& name) -> const SpanRecord& {
    for (const SpanRecord& s : spans) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "span not recorded: " << name;
    return spans[0];
  };
  const SpanRecord& root = find("test.ingest");
  const SpanRecord& fusion = find("test.fusion");
  const SpanRecord& broker = find("test.broker");
  const SpanRecord& storage = find("test.storage");

  EXPECT_EQ(root.parent_id, 0u);
  for (const SpanRecord* s : {&fusion, &broker, &storage}) {
    EXPECT_EQ(s->trace_id, root.trace_id);
  }
  EXPECT_EQ(fusion.parent_id, root.span_id);
  EXPECT_EQ(broker.parent_id, root.span_id);
  EXPECT_EQ(storage.parent_id, broker.span_id);
  EXPECT_GE(root.dur_us, broker.dur_us);
}

TEST(ObsTraceTest, SamplesExactlyOneInN) {
  Tracer& tracer = Tracer::Global();
  tracer.Drain();
  tracer.Enable(2);
  for (int i = 0; i < 10; ++i) {
    Span root("test.sampled");
  }
  tracer.Disable();
  // Trace ids are consecutive, so exactly half of 10 roots sample.
  EXPECT_EQ(tracer.Drain().size(), 5u);
}

TEST(ObsTraceTest, BoundedBufferCountsDrops) {
  Tracer& tracer = Tracer::Global();
  tracer.Drain();
  uint64_t dropped_before = tracer.dropped();
  tracer.Enable(1, /*max_records=*/2);
  for (int i = 0; i < 5; ++i) {
    Span root("test.drop");
  }
  tracer.Disable();
  EXPECT_EQ(tracer.Drain().size(), 2u);
  EXPECT_EQ(tracer.dropped() - dropped_before, 3u);
}

TEST(ObsTraceTest, ScopedTimerRecordsOnce) {
  ConcurrentHistogram hist;
  {
    ScopedTimer timer(&hist);
  }
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_GE(hist.Snapshot().min(), 0);
  {
    ScopedTimer noop(nullptr);  // must be a safe no-op
  }
  EXPECT_EQ(hist.Count(), 1u);
}

}  // namespace
}  // namespace deluge::obs
