// Tests for the replicated quorum storage fabric (DESIGN.md §11):
// record wire coding, the φ-accrual failure detector, durable backings,
// quorum writes/reads over the Chord preference list, sloppy quorums
// with hinted handoff, read repair, session guarantees, and
// anti-entropy convergence after partitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "consistency/session.h"
#include "net/network.h"
#include "net/simulator.h"
#include "p2p/chord.h"
#include "replica/backing.h"
#include "replica/failure_detector.h"
#include "replica/replicated_store.h"
#include "replica/wire.h"
#include "storage/kv_store.h"

namespace deluge::replica {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("deluge_replica_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------------ wire

TEST(ReplicaWireTest, RecordRoundTrip) {
  Record in;
  in.version = {42, 7};
  in.value = "payload bytes";
  std::string buf = EncodeRecord(in);
  std::string_view view(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&view, &out));
  EXPECT_EQ(out.version, in.version);
  EXPECT_FALSE(out.tombstone);
  EXPECT_EQ(out.value, "payload bytes");
  EXPECT_TRUE(view.empty());
}

TEST(ReplicaWireTest, TombstoneSurvivesCoding) {
  Record in;
  in.version = {3, 1};
  in.tombstone = true;
  std::string buf = EncodeRecord(in);
  std::string_view view(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&view, &out));
  EXPECT_TRUE(out.tombstone);
}

TEST(ReplicaWireTest, NewerIsLastWriterWins) {
  EXPECT_TRUE(Newer({2, 1}, {1, 9}));   // higher counter wins
  EXPECT_TRUE(Newer({1, 2}, {1, 1}));   // writer id breaks ties
  EXPECT_FALSE(Newer({1, 1}, {1, 1}));  // equal is not newer
}

TEST(ReplicaWireTest, RingRangeWrapsAndFullRing) {
  EXPECT_TRUE(RingInOpenClosed(10, 11, 20));
  EXPECT_TRUE(RingInOpenClosed(10, 20, 20));
  EXPECT_FALSE(RingInOpenClosed(10, 10, 20));  // open at lo
  EXPECT_FALSE(RingInOpenClosed(10, 21, 20));
  // Wrapping range (hi < lo).
  EXPECT_TRUE(RingInOpenClosed(~0ull - 5, 3, 10));
  EXPECT_FALSE(RingInOpenClosed(~0ull - 5, ~0ull - 6, 10));
  // lo == hi spans the whole ring.
  EXPECT_TRUE(RingInOpenClosed(7, 7, 7));
}

TEST(ReplicaWireTest, DigestDependsOnVersionNotOrder) {
  const uint64_t a1 = DigestEntry("a", {1, 1});
  const uint64_t a2 = DigestEntry("a", {2, 1});
  const uint64_t b1 = DigestEntry("b", {1, 1});
  EXPECT_NE(a1, a2);  // a version bump changes the digest
  // XOR accumulation is order-independent by construction.
  EXPECT_EQ(a1 ^ b1, b1 ^ a1);
}

// -------------------------------------------------------------- detector

TEST(PhiAccrualDetectorTest, SilenceRaisesSuspicion) {
  FailureDetectorOptions opts;
  opts.phi_threshold = 4.0;
  opts.bootstrap_interval = 100;
  PhiAccrualDetector det(opts);
  det.Register(1, 0);
  EXPECT_TRUE(det.IsAlive(1, 0));
  for (Micros t = 100; t <= 500; t += 100) det.Heartbeat(1, t);
  EXPECT_TRUE(det.IsAlive(1, 600));  // one interval late: fine
  // φ grows linearly with silence; ~10 missed intervals is way past 4.
  EXPECT_FALSE(det.IsAlive(1, 500 + 1500));
  EXPECT_GT(det.Phi(1, 2000), det.Phi(1, 700));
}

TEST(PhiAccrualDetectorTest, HeartbeatResumeRevives) {
  PhiAccrualDetector det;
  det.Register(1, 0);
  det.Heartbeat(1, 100 * kMicrosPerMilli);
  ASSERT_FALSE(det.IsAlive(1, 10 * kMicrosPerSecond));  // long silence
  det.Heartbeat(1, 10 * kMicrosPerSecond);
  EXPECT_TRUE(det.IsAlive(1, 10 * kMicrosPerSecond + 1));
}

TEST(PhiAccrualDetectorTest, UnknownPeerIsMaximallySuspect) {
  PhiAccrualDetector det;
  EXPECT_FALSE(det.IsAlive(99, 0));
  EXPECT_GT(det.Phi(99, 0), 1e6);
}

// -------------------------------------------------------------- backings

TEST(BackingTest, MemoryBackingScanIsPrefixBounded) {
  MemoryBacking b;
  ASSERT_TRUE(b.Put("d!a", "1").ok());
  ASSERT_TRUE(b.Put("d!b", "2").ok());
  ASSERT_TRUE(b.Put("h!x", "3").ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(
      b.Scan("d!", [&](const std::string& k, const std::string&) {
        keys.push_back(k);
      }).ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"d!a", "d!b"}));
  ASSERT_TRUE(b.Delete("d!a").ok());
  std::string v;
  EXPECT_TRUE(b.Get("d!a", &v).IsNotFound());
}

TEST(BackingTest, KVStoreBackingSurvivesReopen) {
  storage::KVStoreOptions opts;
  opts.dir = TempDir("kv_backing");
  {
    auto opened = KVStoreBacking::Open(opts);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<KVStoreBacking> b = std::move(opened).value();
    ASSERT_TRUE(b->Put("d!k1", "r1").ok());
    ASSERT_TRUE(b->Put("h!t!k2", "r2").ok());
    ASSERT_TRUE(b->Put("d!k3", "r3").ok());
    ASSERT_TRUE(b->Delete("d!k3").ok());
  }
  // Reopen from disk: acked records and queued hints must still exist —
  // the durability half of the hinted-handoff contract.
  auto reopened = KVStoreBacking::Open(opts);
  ASSERT_TRUE(reopened.ok());
  std::unique_ptr<KVStoreBacking> b = std::move(reopened).value();
  std::string v;
  ASSERT_TRUE(b->Get("d!k1", &v).ok());
  EXPECT_EQ(v, "r1");
  ASSERT_TRUE(b->Get("h!t!k2", &v).ok());
  EXPECT_EQ(v, "r2");
  EXPECT_TRUE(b->Get("d!k3", &v).IsNotFound());
  std::vector<std::string> keys;
  ASSERT_TRUE(b->Scan("d!", [&](const std::string& k, const std::string&) {
                  keys.push_back(k);
                }).ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"d!k1"}));
}

TEST(BackingTest, ObjectStoreBackingRoundTrip) {
  ObjectStoreBacking b;
  ASSERT_TRUE(b.Put("d!obj", "blob").ok());
  std::string v;
  ASSERT_TRUE(b.Get("d!obj", &v).ok());
  EXPECT_EQ(v, "blob");
  size_t n = 0;
  ASSERT_TRUE(
      b.Scan("d!", [&](const std::string&, const std::string&) { ++n; }).ok());
  EXPECT_EQ(n, 1u);
  ASSERT_TRUE(b.Delete("d!obj").ok());
  EXPECT_TRUE(b.Get("d!obj", &v).IsNotFound());
  EXPECT_TRUE(b.Delete("d!obj").ok());  // idempotent
}

// ---------------------------------------------------------------- fabric

class ReplicaFabricTest : public ::testing::Test {
 protected:
  void Build(int peers, ReplicaOptions opts = {}) {
    store_ = std::make_unique<ReplicatedStore>(&transport_, &ring_, opts);
    for (int i = 0; i < peers; ++i) {
      rings_.push_back(store_->AddReplica("replica" + std::to_string(i)));
    }
  }

  struct PutResult {
    Status status = Status::Internal("not completed");
    Version version;
  };
  PutResult PutSync(const std::string& key, const std::string& value,
                    WriteOptions wo = {}) {
    PutResult r;
    store_->Put(key, value, wo, [&](const Status& s, Version v) {
      r.status = s;
      r.version = v;
    });
    sim_.RunUntil(sim_.Now() + 10 * kMicrosPerSecond);
    return r;
  }

  struct GetResult {
    Status status = Status::Internal("not completed");
    std::string value;
    Version version;
  };
  GetResult GetSync(const std::string& key, ReadOptions ro = {}) {
    GetResult r;
    store_->Get(key, ro,
                [&](const Status& s, const std::string& v, Version ver) {
                  r.status = s;
                  r.value = v;
                  r.version = ver;
                });
    sim_.RunUntil(sim_.Now() + 10 * kMicrosPerSecond);
    return r;
  }

  AntiEntropyReport AntiEntropySync() {
    AntiEntropyReport report;
    store_->RunAntiEntropy(
        [&](const AntiEntropyReport& r) { report = r; });
    sim_.RunUntil(sim_.Now() + 5 * kMicrosPerSecond);
    return report;
  }

  void Advance(Micros d) { sim_.RunUntil(sim_.Now() + d); }

  net::NodeId NodeOf(uint64_t ring) { return store_->node(ring)->node_id(); }

  net::Simulator sim_;
  net::Network net_{&sim_};
  net::SimTransport transport_{&net_, &sim_};
  p2p::ChordRing ring_{&transport_};
  std::unique_ptr<ReplicatedStore> store_;
  std::vector<uint64_t> rings_;
};

TEST_F(ReplicaFabricTest, QuorumWriteThenReadRoundTrips) {
  Build(5);
  PutResult put = PutSync("avatar:alice", "pose1");
  ASSERT_TRUE(put.status.ok());
  EXPECT_EQ(put.version.counter, 1u);
  GetResult get = GetSync("avatar:alice");
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "pose1");
  EXPECT_EQ(get.version, put.version);
  EXPECT_EQ(store_->stats().quorum_writes, 1u);
  EXPECT_EQ(store_->stats().quorum_reads, 1u);
  EXPECT_EQ(store_->stats().write_failures, 0u);
}

TEST_F(ReplicaFabricTest, ObjectsLandOnTheNSuccessorNodes) {
  Build(6);
  ASSERT_TRUE(PutSync("k", "v", WriteOptions{.w = 3}).status.ok());
  std::vector<uint64_t> pl = store_->PreferenceList("k");
  ASSERT_EQ(pl.size(), 3u);
  EXPECT_EQ(pl[0], ring_.OwnerOf(p2p::ChordRing::KeyId("k")));
  for (uint64_t rid : rings_) {
    Record rec;
    const bool should_hold =
        std::find(pl.begin(), pl.end(), rid) != pl.end();
    EXPECT_EQ(store_->node(rid)->LocalGet("k", &rec).ok(), should_hold)
        << "ring " << rid;
    if (should_hold) {
      EXPECT_EQ(rec.value, "v");
    }
  }
}

TEST_F(ReplicaFabricTest, StrictQuorumFailsWhenTooFewReplicasLive) {
  ReplicaOptions opts;
  opts.sloppy_quorum = false;
  opts.write_timeout = 50 * kMicrosPerMilli;
  opts.retry.max_attempts = 2;
  opts.retry.initial_backoff = 10 * kMicrosPerMilli;
  Build(5, opts);
  std::vector<uint64_t> pl = store_->PreferenceList("k");
  net_.SetNodeUp(NodeOf(pl[0]), false);
  net_.SetNodeUp(NodeOf(pl[1]), false);
  PutResult put = PutSync("k", "v");  // w=2, only one live owner
  EXPECT_TRUE(put.status.IsUnavailable());
  EXPECT_EQ(store_->stats().write_failures, 1u);
  EXPECT_GE(store_->stats().write_retries, 1u);
}

TEST_F(ReplicaFabricTest, SloppyQuorumHintsAndReplaysOnRecovery) {
  Build(5);
  store_->Start();
  std::vector<uint64_t> pl = store_->PreferenceList("k");
  net_.SetNodeUp(NodeOf(pl[0]), false);
  Advance(2 * kMicrosPerSecond);  // let φ cross the threshold

  PutResult put = PutSync("k", "v");
  ASSERT_TRUE(put.status.ok());  // diverted around the dead owner
  EXPECT_GE(store_->stats().hinted_handoffs, 1u);
  EXPECT_GE(store_->stats().sloppy_writes, 1u);
  size_t hints = 0;
  for (uint64_t rid : rings_) {
    hints += store_->node(rid)->PendingHints(pl[0]);
  }
  EXPECT_EQ(hints, 1u);  // exactly one substitute queued the record
  Record rec;
  EXPECT_TRUE(store_->node(pl[0])->LocalGet("k", &rec).IsNotFound());

  net_.SetNodeUp(NodeOf(pl[0]), true);
  Advance(3 * kMicrosPerSecond);  // detector revives peer -> hint replay

  ASSERT_TRUE(store_->node(pl[0])->LocalGet("k", &rec).ok());
  EXPECT_EQ(rec.value, "v");
  EXPECT_EQ(rec.version, put.version);
  EXPECT_GE(store_->stats().hints_replayed, 1u);
  hints = 0;
  for (uint64_t rid : rings_) hints += store_->node(rid)->PendingHints();
  EXPECT_EQ(hints, 0u);  // delivered hints are deleted at the holder
}

TEST_F(ReplicaFabricTest, DivergentQuorumReadTriggersRepair) {
  Build(3);
  PutResult put = PutSync("k", "fresh", WriteOptions{.w = 3});
  ASSERT_TRUE(put.status.ok());
  // Tamper one replica with an older surviving copy.
  std::vector<uint64_t> pl = store_->PreferenceList("k");
  Record stale;
  stale.version = {0, 5};
  stale.value = "stale";
  ASSERT_TRUE(store_->node(pl[1])->LocalPut("k", stale).ok());

  GetResult get = GetSync("k", ReadOptions{.r = 3});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "fresh");  // merge picks the newest version
  Advance(kMicrosPerSecond);      // let the repair push land
  EXPECT_GE(store_->stats().read_repairs, 1u);
  Record rec;
  ASSERT_TRUE(store_->node(pl[1])->LocalGet("k", &rec).ok());
  EXPECT_EQ(rec.value, "fresh");
  EXPECT_EQ(rec.version, put.version);
}

TEST_F(ReplicaFabricTest, EventualReadsCanBeStaleAndAreCounted) {
  ReplicaOptions opts;
  opts.write_timeout = 50 * kMicrosPerMilli;
  opts.read_timeout = 50 * kMicrosPerMilli;
  opts.retry.max_attempts = 2;
  opts.retry.initial_backoff = 10 * kMicrosPerMilli;
  Build(3, opts);
  ASSERT_TRUE(PutSync("k", "v1", WriteOptions{.w = 3}).status.ok());
  std::vector<uint64_t> pl = store_->PreferenceList("k");

  // Only the first owner is reachable for v2.
  net_.SetNodeUp(NodeOf(pl[1]), false);
  net_.SetNodeUp(NodeOf(pl[2]), false);
  ASSERT_TRUE(PutSync("k", "v2", WriteOptions{.w = 1}).status.ok());

  // Now the freshest replica dies and the stale pair comes back.
  net_.SetNodeUp(NodeOf(pl[0]), false);
  net_.SetNodeUp(NodeOf(pl[1]), true);
  net_.SetNodeUp(NodeOf(pl[2]), true);

  GetResult get = GetSync("k", ReadOptions{.r = 1});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");  // stale but available
  EXPECT_EQ(store_->stats().stale_reads, 1u);
  EXPECT_EQ(store_->AckedVersion("k").counter, 2u);
}

TEST_F(ReplicaFabricTest, ReadYourWritesFailsThenSucceedsWhenReachable) {
  ReplicaOptions opts;
  opts.write_timeout = 50 * kMicrosPerMilli;
  opts.read_timeout = 50 * kMicrosPerMilli;
  opts.retry.max_attempts = 2;
  opts.retry.initial_backoff = 10 * kMicrosPerMilli;
  Build(3, opts);
  consistency::Session session;
  ASSERT_TRUE(PutSync("k", "v1", WriteOptions{.w = 3}).status.ok());
  std::vector<uint64_t> pl = store_->PreferenceList("k");

  net_.SetNodeUp(NodeOf(pl[1]), false);
  net_.SetNodeUp(NodeOf(pl[2]), false);
  ASSERT_TRUE(
      PutSync("k", "v2", WriteOptions{.w = 1, .session = &session})
          .status.ok());
  net_.SetNodeUp(NodeOf(pl[0]), false);
  net_.SetNodeUp(NodeOf(pl[1]), true);
  net_.SetNodeUp(NodeOf(pl[2]), true);

  // Eventual mode degrades to the stale copy; read-your-writes refuses.
  ReadOptions eventual{.r = 1};
  EXPECT_EQ(GetSync("k", eventual).value, "v1");
  ReadOptions ryw{.r = 1,
                  .mode = consistency::ReadMode::kReadYourWrites,
                  .session = &session};
  GetResult denied = GetSync("k", ryw);
  EXPECT_TRUE(denied.status.IsUnavailable());

  net_.SetNodeUp(NodeOf(pl[0]), true);
  GetResult get = GetSync("k", ryw);
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v2");  // the session's own write, once reachable
  EXPECT_TRUE(session.Satisfies("k", get.version));
}

TEST_F(ReplicaFabricTest, DeleteIsAReplicatedTombstone) {
  Build(3);
  ASSERT_TRUE(PutSync("k", "v", WriteOptions{.w = 3}).status.ok());
  Status deleted = Status::Internal("pending");
  store_->Delete("k", WriteOptions{.w = 3},
                 [&](const Status& s, Version) { deleted = s; });
  Advance(kMicrosPerSecond);
  ASSERT_TRUE(deleted.ok());
  GetResult get = GetSync("k", ReadOptions{.r = 3});
  EXPECT_TRUE(get.status.IsNotFound());
  EXPECT_EQ(get.version.counter, 2u);  // the tombstone's version
}

TEST_F(ReplicaFabricTest, AntiEntropyConvergesAfterPartitionHeals) {
  ReplicaOptions opts;
  opts.sloppy_quorum = false;  // force divergence instead of handoff
  opts.write_timeout = 50 * kMicrosPerMilli;
  opts.read_timeout = 50 * kMicrosPerMilli;
  Build(5, opts);
  // Cut the coordinator off from one replica, then write through it.
  const uint64_t victim = rings_[2];
  net_.Partition(store_->coordinator_node(), NodeOf(victim));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        PutSync("k" + std::to_string(i), "v" + std::to_string(i))
            .status.ok());
  }
  size_t missing = 0;
  for (int i = 0; i < 20; ++i) {
    std::vector<uint64_t> pl = store_->PreferenceList("k" + std::to_string(i));
    if (std::find(pl.begin(), pl.end(), victim) == pl.end()) continue;
    Record rec;
    if (!store_->node(victim)
             ->LocalGet("k" + std::to_string(i), &rec)
             .ok()) {
      ++missing;
    }
  }
  ASSERT_GT(missing, 0u);  // the victim actually missed writes

  net_.Heal(store_->coordinator_node(), NodeOf(victim));
  AntiEntropyReport first = AntiEntropySync();
  EXPECT_GT(first.divergent, 0u);
  EXPECT_GE(first.keys_synced, missing);
  AntiEntropyReport second = AntiEntropySync();
  EXPECT_EQ(second.divergent, 0u);  // converged
  EXPECT_EQ(second.keys_synced, 0u);
  EXPECT_EQ(store_->stats().divergent_segments, 0.0);
  EXPECT_EQ(store_->stats().anti_entropy_rounds, 2u);
  // Every preference-list copy of every key now exists.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    for (uint64_t rid : store_->PreferenceList(key)) {
      Record rec;
      EXPECT_TRUE(store_->node(rid)->LocalGet(key, &rec).ok())
          << key << " missing on ring " << rid;
    }
  }
}

TEST_F(ReplicaFabricTest, FabricRunsOverDurableKVStoreBackings) {
  store_ = std::make_unique<ReplicatedStore>(&transport_, &ring_,
                                             ReplicaOptions{});
  for (int i = 0; i < 3; ++i) {
    storage::KVStoreOptions kv;
    kv.dir = TempDir("fabric_kv" + std::to_string(i));
    auto opened = KVStoreBacking::Open(kv);
    ASSERT_TRUE(opened.ok());
    rings_.push_back(store_->AddReplica("durable" + std::to_string(i),
                                        std::move(opened).value()));
  }
  ASSERT_TRUE(PutSync("k", "persisted", WriteOptions{.w = 3}).status.ok());
  GetResult get = GetSync("k", ReadOptions{.r = 2});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "persisted");
}

}  // namespace
}  // namespace deluge::replica
