#include "core/parallel_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/sensors.h"

namespace deluge::core {
namespace {

const geo::AABB kWorld({0, 0, 0}, {1000, 1000, 100});

EngineOptions BaseOptions() {
  EngineOptions opts;
  opts.world_bounds = kWorld;
  opts.default_contract = {2.0, kMicrosPerSecond};
  return opts;
}

ParallelEngineOptions ShardedOptions(size_t shards) {
  ParallelEngineOptions opts;
  opts.engine = BaseOptions();
  opts.num_shards = shards;
  return opts;
}

void ExpectStatsEqual(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.physical_updates, b.physical_updates);
  EXPECT_EQ(a.mirrored_updates, b.mirrored_updates);
  EXPECT_EQ(a.suppressed_updates, b.suppressed_updates);
  EXPECT_EQ(a.virtual_commands, b.virtual_commands);
  EXPECT_EQ(a.relayed_commands, b.relayed_commands);
  EXPECT_EQ(a.events_published, b.events_published);
}

// ------------------------------------------------------------ sharder

TEST(SpatialSharderTest, AssignsEveryPointToAValidShard) {
  SpatialSharder sharder(kWorld, 50.0, 4);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    geo::Vec3 p{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
                rng.UniformDouble(0, 100)};
    EXPECT_LT(sharder.ShardOf(p), 4u);
  }
}

TEST(SpatialSharderTest, CoveringShardsContainEveryInteriorPoint) {
  SpatialSharder sharder(kWorld, 50.0, 4);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    geo::Vec3 c{rng.UniformDouble(100, 900), rng.UniformDouble(100, 900), 50};
    geo::AABB box = geo::AABB::Cube(c, rng.UniformDouble(10, 150));
    std::vector<size_t> shards = sharder.ShardsCovering(box);
    for (int j = 0; j < 20; ++j) {
      geo::Vec3 p{rng.UniformDouble(box.min.x, box.max.x),
                  rng.UniformDouble(box.min.y, box.max.y), 50};
      size_t s = sharder.ShardOf(p);
      EXPECT_TRUE(std::find(shards.begin(), shards.end(), s) != shards.end())
          << "point shard " << s << " missing from covering set";
    }
  }
}

TEST(SpatialSharderTest, WorldSpanningBoxCoversAllShards) {
  SpatialSharder sharder(kWorld, 50.0, 8);
  EXPECT_EQ(sharder.ShardsCovering(kWorld).size(), 8u);
}

// ------------------------------------------------- single-thread parity

TEST(ParallelEngineTest, MatchesSingleThreadedEngine) {
  SimClock clock;
  CoSpaceEngine serial(BaseOptions(), &clock);
  ThreadPool pool(4);
  ParallelEngine sharded(ShardedOptions(4), &pool, &clock);

  SensorFleetOptions fleet_opts;
  fleet_opts.num_entities = 500;
  SensorFleet fleet(kWorld, fleet_opts);
  for (EntityId id = 1; id <= 500; ++id) {
    Entity e;
    e.id = id;
    e.position = fleet.TruePosition(id);
    serial.SpawnPhysical(e);
    sharded.SpawnPhysical(e);
  }

  // Identical regional watchers on both engines; the parallel side
  // counts atomically because shard tasks deliver concurrently.
  uint64_t serial_deliveries = 0;
  std::atomic<uint64_t> sharded_deliveries{0};
  geo::AABB region({200, 200, 0}, {800, 800, 100});
  serial.WatchRegion(1, region, [&](net::NodeId, const pubsub::Event&) {
    ++serial_deliveries;
  });
  sharded.WatchRegion(1, region, [&](net::NodeId, const pubsub::Event&) {
    sharded_deliveries.fetch_add(1, std::memory_order_relaxed);
  });

  Micros now = 0;
  for (int tick = 0; tick < 40; ++tick) {
    now += 100 * kMicrosPerMilli;
    std::vector<SensedUpdate> batch;
    for (const auto& r : fleet.Tick(100 * kMicrosPerMilli, now)) {
      batch.push_back({r.entity, r.position, r.t});
    }
    for (const SensedUpdate& u : batch) {
      serial.IngestPhysicalPosition(u.id, u.position, u.t);
    }
    sharded.IngestBatch(batch);
  }

  ExpectStatsEqual(serial.stats(), sharded.TotalStats());
  EXPECT_GT(sharded.TotalStats().physical_updates, 0u);
  EXPECT_EQ(serial_deliveries, sharded_deliveries.load());

  // Mirror state converged identically.
  for (EntityId id = 1; id <= 500; ++id) {
    const Entity* a = serial.virtual_space().Get(id);
    const Entity* b = sharded.FindVirtual(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->position.x, b->position.x);
    EXPECT_EQ(a->position.y, b->position.y);
    EXPECT_EQ(a->updated_at, b->updated_at);
  }
}

TEST(ParallelEngineTest, PerShardStatsSumToTotals) {
  ThreadPool pool(4);
  ParallelEngine engine(ShardedOptions(4), &pool);
  Rng rng(3);
  for (EntityId id = 1; id <= 200; ++id) {
    Entity e;
    e.id = id;
    e.position = {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000), 50};
    engine.SpawnPhysical(e);
  }
  std::vector<SensedUpdate> batch;
  for (EntityId id = 1; id <= 200; ++id) {
    batch.push_back({id,
                     {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
                      50},
                     kMicrosPerSecond});
  }
  engine.IngestBatch(batch);

  EngineStats sum;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    sum.physical_updates += engine.shard_stats(s).physical_updates;
    sum.mirrored_updates += engine.shard_stats(s).mirrored_updates;
    sum.suppressed_updates += engine.shard_stats(s).suppressed_updates;
    sum.virtual_commands += engine.shard_stats(s).virtual_commands;
    sum.relayed_commands += engine.shard_stats(s).relayed_commands;
    sum.events_published += engine.shard_stats(s).events_published;
  }
  ExpectStatsEqual(sum, engine.TotalStats());
  EXPECT_EQ(sum.physical_updates, 200u);
}

// ------------------------------------------------- concurrent ingest

// The satellite stress test: 8 producer threads hammer a 4-shard
// engine through the thread-safe Enqueue/Flush path.  Each producer
// owns a disjoint entity set, so per-entity update order is preserved
// no matter how the threads interleave — and the summed stats must
// equal a single-threaded engine fed the same updates.  Run under
// ThreadSanitizer in CI (DELUGE_SANITIZE=thread).
TEST(ParallelEngineTest, ConcurrentEnqueueMatchesSerialTotals) {
  constexpr size_t kThreads = 8;
  constexpr size_t kEntitiesPerThread = 40;
  constexpr size_t kRounds = 50;
  constexpr size_t kEntities = kThreads * kEntitiesPerThread;

  // Pre-generate each entity's walk so both engines see the same input.
  std::vector<std::vector<SensedUpdate>> walks(kEntities + 1);
  std::vector<Entity> spawns;
  Rng rng(99);
  for (EntityId id = 1; id <= kEntities; ++id) {
    geo::Vec3 pos{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000), 50};
    Entity e;
    e.id = id;
    e.position = pos;
    spawns.push_back(e);
    for (size_t r = 0; r < kRounds; ++r) {
      pos.x = std::clamp(pos.x + rng.UniformDouble(-3, 3), 0.0, 1000.0);
      pos.y = std::clamp(pos.y + rng.UniformDouble(-3, 3), 0.0, 1000.0);
      walks[id].push_back({id, pos, Micros(r + 1) * 50 * kMicrosPerMilli});
    }
  }

  ThreadPool pool(4);
  ParallelEngine sharded(ShardedOptions(4), &pool);
  SimClock clock;
  CoSpaceEngine serial(BaseOptions(), &clock);
  for (const Entity& e : spawns) {
    sharded.SpawnPhysical(e);
    serial.SpawnPhysical(e);
  }

  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    // Concurrent flushes race the producers on the staging queues —
    // exactly the surface TSan needs to see.
    while (!stop_flusher.load()) sharded.Flush();
  });
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < kEntitiesPerThread; ++i) {
          EntityId id = EntityId(t * kEntitiesPerThread + i + 1);
          sharded.Enqueue(walks[id][r]);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  stop_flusher.store(true);
  flusher.join();
  sharded.Flush();

  // Serial reference: same updates, per-entity order preserved.
  for (EntityId id = 1; id <= kEntities; ++id) {
    for (const SensedUpdate& u : walks[id]) {
      serial.IngestPhysicalPosition(u.id, u.position, u.t);
    }
  }

  ExpectStatsEqual(serial.stats(), sharded.TotalStats());
  EXPECT_EQ(sharded.TotalStats().physical_updates, kEntities * kRounds);

  // Final mirror positions converge to the serial run's.
  for (EntityId id = 1; id <= kEntities; ++id) {
    const Entity* a = serial.virtual_space().Get(id);
    const Entity* b = sharded.FindVirtual(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->position.x, b->position.x);
    EXPECT_EQ(a->position.y, b->position.y);
  }
}

// ------------------------------------------------- cross-shard fan-out

TEST(ParallelEngineTest, CrossShardRoamingStillDeliversToRegionWatch) {
  ThreadPool pool(4);
  ParallelEngineOptions opts = ShardedOptions(4);
  opts.engine.default_contract = {0.0, 0};  // every update mirrors
  ParallelEngine engine(opts, &pool);

  // Entity homed near the origin corner...
  Entity e;
  e.id = 1;
  e.position = {10, 10, 50};
  engine.SpawnPhysical(e);

  // ...watched in the far corner, which (with a 4-shard Morton grid)
  // need not include the home shard.
  geo::AABB region({900, 900, 0}, {1000, 1000, 100});
  std::atomic<int> delivered{0};
  engine.WatchRegion(7, region, [&](net::NodeId, const pubsub::Event& ev) {
    EXPECT_TRUE(ev.position.has_value());
    delivered.fetch_add(1);
  });

  // Roam into the watched region: fan-out is routed by event position,
  // so delivery must happen even though the entity's state lives on its
  // spawn shard.
  std::vector<SensedUpdate> batch{{1, {950, 950, 50}, kMicrosPerSecond}};
  EXPECT_EQ(engine.IngestBatch(batch), 1u);
  EXPECT_EQ(delivered.load(), 1);

  // And updates outside the region do not deliver.
  batch = {{1, {500, 500, 50}, 2 * kMicrosPerSecond}};
  engine.IngestBatch(batch);
  EXPECT_EQ(delivered.load(), 1);

  EXPECT_TRUE(engine.Unwatch(1));
  batch = {{1, {955, 955, 50}, 3 * kMicrosPerSecond}};
  engine.IngestBatch(batch);
  EXPECT_EQ(delivered.load(), 1);
}

TEST(ParallelEngineTest, IssueVirtualCommandSpansShards) {
  ThreadPool pool(2);
  ParallelEngine engine(ShardedOptions(4), &pool);
  // One physical entity per world quadrant + one pure-virtual one.
  std::vector<geo::Vec3> corners = {
      {100, 100, 50}, {900, 100, 50}, {100, 900, 50}, {900, 900, 50}};
  for (size_t i = 0; i < corners.size(); ++i) {
    Entity e;
    e.id = EntityId(i + 1);
    e.position = corners[i];
    engine.SpawnPhysical(e);
  }
  Entity v;
  v.id = 99;
  v.position = {500, 500, 50};
  engine.SpawnVirtual(v);

  std::vector<EntityId> relayed;
  engine.OnPhysicalCommand(
      [&](EntityId id, const stream::Tuple&) { relayed.push_back(id); });

  stream::Tuple cmd;
  cmd.Set("type", std::string("air-raid"));
  size_t affected = engine.IssueVirtualCommand(kWorld, cmd);

  EXPECT_EQ(affected, 5u);  // all four physical + the virtual one
  EXPECT_EQ(relayed.size(), 4u);  // only physical-origin entities relay
  std::sort(relayed.begin(), relayed.end());
  EXPECT_EQ(relayed, (std::vector<EntityId>{1, 2, 3, 4}));
  EXPECT_EQ(engine.TotalStats().virtual_commands, 1u);
  EXPECT_EQ(engine.TotalStats().relayed_commands, 4u);
}

TEST(ParallelEngineTest, SingleShardNullPoolRunsSerially) {
  ParallelEngine engine(ShardedOptions(1), nullptr);
  Entity e;
  e.id = 1;
  e.position = {10, 10, 10};
  engine.SpawnPhysical(e);
  std::vector<SensedUpdate> batch{{1, {20, 20, 10}, kMicrosPerSecond}};
  EXPECT_EQ(engine.IngestBatch(batch), 1u);
  EXPECT_EQ(engine.TotalStats().physical_updates, 1u);
  const Entity* mirrored = engine.FindVirtual(1);
  ASSERT_NE(mirrored, nullptr);
  EXPECT_EQ(mirrored->position.x, 20);
}

}  // namespace
}  // namespace deluge::core
