#include "core/parallel_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/sensors.h"

namespace deluge::core {
namespace {

const geo::AABB kWorld({0, 0, 0}, {1000, 1000, 100});

EngineOptions BaseOptions() {
  EngineOptions opts;
  opts.world_bounds = kWorld;
  opts.default_contract = {2.0, kMicrosPerSecond};
  return opts;
}

ParallelEngineOptions ShardedOptions(size_t shards) {
  ParallelEngineOptions opts;
  opts.engine = BaseOptions();
  opts.num_shards = shards;
  return opts;
}

void ExpectStatsEqual(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.physical_updates, b.physical_updates);
  EXPECT_EQ(a.mirrored_updates, b.mirrored_updates);
  EXPECT_EQ(a.suppressed_updates, b.suppressed_updates);
  EXPECT_EQ(a.virtual_commands, b.virtual_commands);
  EXPECT_EQ(a.relayed_commands, b.relayed_commands);
  EXPECT_EQ(a.events_published, b.events_published);
}

// ------------------------------------------------------------ sharder

TEST(SpatialSharderTest, AssignsEveryPointToAValidShard) {
  SpatialSharder sharder(kWorld, 50.0, 4);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    geo::Vec3 p{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
                rng.UniformDouble(0, 100)};
    EXPECT_LT(sharder.ShardOf(p), 4u);
  }
}

TEST(SpatialSharderTest, CoveringShardsContainEveryInteriorPoint) {
  SpatialSharder sharder(kWorld, 50.0, 4);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    geo::Vec3 c{rng.UniformDouble(100, 900), rng.UniformDouble(100, 900), 50};
    geo::AABB box = geo::AABB::Cube(c, rng.UniformDouble(10, 150));
    SpatialSharder::ShardList shards;
    sharder.ShardsCovering(box, &shards);
    for (int j = 0; j < 20; ++j) {
      geo::Vec3 p{rng.UniformDouble(box.min.x, box.max.x),
                  rng.UniformDouble(box.min.y, box.max.y), 50};
      size_t s = sharder.ShardOf(p);
      EXPECT_TRUE(std::find(shards.begin(), shards.end(), s) != shards.end())
          << "point shard " << s << " missing from covering set";
    }
  }
}

TEST(SpatialSharderTest, WorldSpanningBoxCoversAllShards) {
  SpatialSharder sharder(kWorld, 50.0, 8);
  SpatialSharder::ShardList shards;
  sharder.ShardsCovering(kWorld, &shards);
  EXPECT_EQ(shards.size(), 8u);
}

TEST(SpatialSharderTest, PositionsOutsideWorldClampToBoundaryTiles) {
  SpatialSharder sharder(kWorld, 50.0, 4);
  // Below the min corner and beyond the max corner land on the same
  // tiles as the corners themselves — no out-of-range table reads.
  EXPECT_EQ(sharder.ShardOf({-500, -500, -50}), sharder.ShardOf(kWorld.min));
  EXPECT_EQ(sharder.ShardOf({5000, 5000, 500}), sharder.ShardOf(kWorld.max));
  // Mixed: one axis out, the other in.
  EXPECT_EQ(sharder.ShardOf({-1, 475, 50}), sharder.ShardOf({0, 475, 50}));
  EXPECT_EQ(sharder.ShardOf({475, 1e9, 50}),
            sharder.ShardOf({475, kWorld.max.y, 50}));
  // Exactly on the max boundary is a valid shard (not one past the end).
  EXPECT_LT(sharder.ShardOf(kWorld.max), 4u);
  EXPECT_LT(sharder.TileCodeOf(kWorld.max), sharder.tile_code_limit());
}

TEST(SpatialSharderTest, CoveringFallsBackToAllShardsPastThreshold) {
  // 20x20 tile grid, 2 shards: the enumeration budget is 64*2 = 128
  // tiles, so the 400-tile world box takes the all-shards fallback and
  // a one-tile box still enumerates exactly one shard.
  SpatialSharder sharder(kWorld, 50.0, 2);
  SpatialSharder::ShardList shards;
  sharder.ShardsCovering(kWorld, &shards);
  EXPECT_EQ(shards.size(), 2u);

  geo::AABB one_tile({10, 10, 0}, {20, 20, 100});
  shards.clear();
  sharder.ShardsCovering(one_tile, &shards);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], sharder.ShardOf({15, 15, 50}));

  // Shard counts past the 64-bit seen-mask always answer all-shards,
  // even for a one-tile box.
  SpatialSharder wide(kWorld, 50.0, 65);
  shards.clear();
  wide.ShardsCovering(one_tile, &shards);
  EXPECT_EQ(shards.size(), 65u);
}

TEST(SpatialSharderTest, SingleShardConfigOwnsEverything) {
  SpatialSharder sharder(kWorld, 50.0, 1);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    geo::Vec3 p{rng.UniformDouble(-100, 1100), rng.UniformDouble(-100, 1100),
                50};
    EXPECT_EQ(sharder.ShardOf(p), 0u);
  }
  SpatialSharder::ShardList shards;
  sharder.ShardsCovering(kWorld, &shards);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], 0u);
}

TEST(SpatialSharderTest, BalancedAssignmentSplitsHotRangeAcrossShards) {
  // All load on the first quarter of the code space: the balanced cut
  // must spread that hot prefix over all shards instead of handing it
  // to whoever owned it under striping.
  std::vector<double> load(256, 0.0);
  for (size_t t = 0; t < 64; ++t) load[t] = 1.0;
  auto next = SpatialSharder::BalancedAssignment(load, 4);
  ASSERT_EQ(next.size(), 256u);
  // Per-shard load within the fair share of 16.
  std::vector<double> per_shard(4, 0.0);
  for (size_t t = 0; t < 256; ++t) {
    ASSERT_LT(next[t], 4u);
    per_shard[next[t]] += load[t];
  }
  for (double l : per_shard) EXPECT_NEAR(l, 16.0, 1.0);
  // Contiguous ranges: shard ids never revisit an earlier range.
  for (size_t t = 1; t < 256; ++t) EXPECT_GE(next[t], next[t - 1]);
}

// ------------------------------------------------- single-thread parity

TEST(ParallelEngineTest, MatchesSingleThreadedEngine) {
  SimClock clock;
  CoSpaceEngine serial(BaseOptions(), &clock);
  ThreadPool pool(4);
  ParallelEngine sharded(ShardedOptions(4), &pool, &clock);

  SensorFleetOptions fleet_opts;
  fleet_opts.num_entities = 500;
  SensorFleet fleet(kWorld, fleet_opts);
  for (EntityId id = 1; id <= 500; ++id) {
    Entity e;
    e.id = id;
    e.position = fleet.TruePosition(id);
    serial.SpawnPhysical(e);
    sharded.SpawnPhysical(e);
  }

  // Identical regional watchers on both engines; the parallel side
  // counts atomically because shard tasks deliver concurrently.
  uint64_t serial_deliveries = 0;
  std::atomic<uint64_t> sharded_deliveries{0};
  geo::AABB region({200, 200, 0}, {800, 800, 100});
  serial.WatchRegion(1, region, [&](net::NodeId, const pubsub::Event&) {
    ++serial_deliveries;
  });
  sharded.WatchRegion(1, region, [&](net::NodeId, const pubsub::Event&) {
    sharded_deliveries.fetch_add(1, std::memory_order_relaxed);
  });

  Micros now = 0;
  for (int tick = 0; tick < 40; ++tick) {
    now += 100 * kMicrosPerMilli;
    std::vector<SensedUpdate> batch;
    for (const auto& r : fleet.Tick(100 * kMicrosPerMilli, now)) {
      batch.push_back({r.entity, r.position, r.t});
    }
    for (const SensedUpdate& u : batch) {
      serial.IngestPhysicalPosition(u.id, u.position, u.t);
    }
    sharded.IngestBatch(batch);
  }

  ExpectStatsEqual(serial.stats(), sharded.TotalStats());
  EXPECT_GT(sharded.TotalStats().physical_updates, 0u);
  EXPECT_EQ(serial_deliveries, sharded_deliveries.load());

  // Mirror state converged identically.
  for (EntityId id = 1; id <= 500; ++id) {
    const Entity* a = serial.virtual_space().Get(id);
    const Entity* b = sharded.FindVirtual(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->position.x, b->position.x);
    EXPECT_EQ(a->position.y, b->position.y);
    EXPECT_EQ(a->updated_at, b->updated_at);
  }
}

TEST(ParallelEngineTest, PerShardStatsSumToTotals) {
  ThreadPool pool(4);
  ParallelEngine engine(ShardedOptions(4), &pool);
  Rng rng(3);
  for (EntityId id = 1; id <= 200; ++id) {
    Entity e;
    e.id = id;
    e.position = {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000), 50};
    engine.SpawnPhysical(e);
  }
  std::vector<SensedUpdate> batch;
  for (EntityId id = 1; id <= 200; ++id) {
    batch.push_back({id,
                     {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000),
                      50},
                     kMicrosPerSecond});
  }
  engine.IngestBatch(batch);

  EngineStats sum;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    sum.physical_updates += engine.shard_stats(s).physical_updates;
    sum.mirrored_updates += engine.shard_stats(s).mirrored_updates;
    sum.suppressed_updates += engine.shard_stats(s).suppressed_updates;
    sum.virtual_commands += engine.shard_stats(s).virtual_commands;
    sum.relayed_commands += engine.shard_stats(s).relayed_commands;
    sum.events_published += engine.shard_stats(s).events_published;
  }
  ExpectStatsEqual(sum, engine.TotalStats());
  EXPECT_EQ(sum.physical_updates, 200u);
}

// ------------------------------------------------- concurrent ingest

// The satellite stress test: 8 producer threads hammer a 4-shard
// engine through the thread-safe Enqueue/Flush path.  Each producer
// owns a disjoint entity set, so per-entity update order is preserved
// no matter how the threads interleave — and the summed stats must
// equal a single-threaded engine fed the same updates.  Run under
// ThreadSanitizer in CI (DELUGE_SANITIZE=thread).
TEST(ParallelEngineTest, ConcurrentEnqueueMatchesSerialTotals) {
  constexpr size_t kThreads = 8;
  constexpr size_t kEntitiesPerThread = 40;
  constexpr size_t kRounds = 50;
  constexpr size_t kEntities = kThreads * kEntitiesPerThread;

  // Pre-generate each entity's walk so both engines see the same input.
  std::vector<std::vector<SensedUpdate>> walks(kEntities + 1);
  std::vector<Entity> spawns;
  Rng rng(99);
  for (EntityId id = 1; id <= kEntities; ++id) {
    geo::Vec3 pos{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000), 50};
    Entity e;
    e.id = id;
    e.position = pos;
    spawns.push_back(e);
    for (size_t r = 0; r < kRounds; ++r) {
      pos.x = std::clamp(pos.x + rng.UniformDouble(-3, 3), 0.0, 1000.0);
      pos.y = std::clamp(pos.y + rng.UniformDouble(-3, 3), 0.0, 1000.0);
      walks[id].push_back({id, pos, Micros(r + 1) * 50 * kMicrosPerMilli});
    }
  }

  ThreadPool pool(4);
  ParallelEngine sharded(ShardedOptions(4), &pool);
  SimClock clock;
  CoSpaceEngine serial(BaseOptions(), &clock);
  for (const Entity& e : spawns) {
    sharded.SpawnPhysical(e);
    serial.SpawnPhysical(e);
  }

  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    // Concurrent flushes race the producers on the staging queues —
    // exactly the surface TSan needs to see.
    while (!stop_flusher.load()) sharded.Flush();
  });
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < kEntitiesPerThread; ++i) {
          EntityId id = EntityId(t * kEntitiesPerThread + i + 1);
          sharded.Enqueue(walks[id][r]);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  stop_flusher.store(true);
  flusher.join();
  sharded.Flush();

  // Serial reference: same updates, per-entity order preserved.
  for (EntityId id = 1; id <= kEntities; ++id) {
    for (const SensedUpdate& u : walks[id]) {
      serial.IngestPhysicalPosition(u.id, u.position, u.t);
    }
  }

  ExpectStatsEqual(serial.stats(), sharded.TotalStats());
  EXPECT_EQ(sharded.TotalStats().physical_updates, kEntities * kRounds);

  // Final mirror positions converge to the serial run's.
  for (EntityId id = 1; id <= kEntities; ++id) {
    const Entity* a = serial.virtual_space().Get(id);
    const Entity* b = sharded.FindVirtual(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->position.x, b->position.x);
    EXPECT_EQ(a->position.y, b->position.y);
  }
}

// ------------------------------------------------- cross-shard fan-out

TEST(ParallelEngineTest, CrossShardRoamingStillDeliversToRegionWatch) {
  ThreadPool pool(4);
  ParallelEngineOptions opts = ShardedOptions(4);
  opts.engine.default_contract = {0.0, 0};  // every update mirrors
  ParallelEngine engine(opts, &pool);

  // Entity homed near the origin corner...
  Entity e;
  e.id = 1;
  e.position = {10, 10, 50};
  engine.SpawnPhysical(e);

  // ...watched in the far corner, which (with a 4-shard Morton grid)
  // need not include the home shard.
  geo::AABB region({900, 900, 0}, {1000, 1000, 100});
  std::atomic<int> delivered{0};
  engine.WatchRegion(7, region, [&](net::NodeId, const pubsub::Event& ev) {
    EXPECT_TRUE(ev.position.has_value());
    delivered.fetch_add(1);
  });

  // Roam into the watched region: fan-out is routed by event position,
  // so delivery must happen even though the entity's state lives on its
  // spawn shard.
  std::vector<SensedUpdate> batch{{1, {950, 950, 50}, kMicrosPerSecond}};
  EXPECT_EQ(engine.IngestBatch(batch), 1u);
  EXPECT_EQ(delivered.load(), 1);

  // And updates outside the region do not deliver.
  batch = {{1, {500, 500, 50}, 2 * kMicrosPerSecond}};
  engine.IngestBatch(batch);
  EXPECT_EQ(delivered.load(), 1);

  EXPECT_TRUE(engine.Unwatch(1));
  batch = {{1, {955, 955, 50}, 3 * kMicrosPerSecond}};
  engine.IngestBatch(batch);
  EXPECT_EQ(delivered.load(), 1);
}

TEST(ParallelEngineTest, IssueVirtualCommandSpansShards) {
  ThreadPool pool(2);
  ParallelEngine engine(ShardedOptions(4), &pool);
  // One physical entity per world quadrant + one pure-virtual one.
  std::vector<geo::Vec3> corners = {
      {100, 100, 50}, {900, 100, 50}, {100, 900, 50}, {900, 900, 50}};
  for (size_t i = 0; i < corners.size(); ++i) {
    Entity e;
    e.id = EntityId(i + 1);
    e.position = corners[i];
    engine.SpawnPhysical(e);
  }
  Entity v;
  v.id = 99;
  v.position = {500, 500, 50};
  engine.SpawnVirtual(v);

  std::vector<EntityId> relayed;
  engine.OnPhysicalCommand(
      [&](EntityId id, const stream::Tuple&) { relayed.push_back(id); });

  stream::Tuple cmd;
  cmd.Set("type", std::string("air-raid"));
  size_t affected = engine.IssueVirtualCommand(kWorld, cmd);

  EXPECT_EQ(affected, 5u);  // all four physical + the virtual one
  EXPECT_EQ(relayed.size(), 4u);  // only physical-origin entities relay
  std::sort(relayed.begin(), relayed.end());
  EXPECT_EQ(relayed, (std::vector<EntityId>{1, 2, 3, 4}));
  EXPECT_EQ(engine.TotalStats().virtual_commands, 1u);
  EXPECT_EQ(engine.TotalStats().relayed_commands, 4u);
}

// ------------------------------------------------- elastic rebalancing
//
// The Elastic* tests below also run under ThreadSanitizer in CI
// (DELUGE_SANITIZE=thread) — the handoff path takes route_mu_
// exclusively against concurrent Enqueue readers.

ParallelEngineOptions ElasticOptionsFor(size_t shards) {
  ParallelEngineOptions opts = ShardedOptions(shards);
  opts.elastic.enabled = true;
  opts.elastic.min_batches_between_rebalances = 1;
  opts.elastic.rebalance_threshold = 1.2;
  opts.elastic.min_shard_load = 1.0;
  return opts;
}

/// A band-hotspot walk: entity `id`'s tick-`r` position.  The band is
/// thin enough to pin a single y tile (the 4-shard engine derives a
/// 31.25 m cell for kWorld, and [490, 499] sits inside tile row 15),
/// which collapses Morton codes mod a power-of-two shard count onto
/// half the shards — the shape a static striping cannot balance.
SensedUpdate BandWalk(EntityId id, size_t r) {
  double x = 100.0 + double((id * 37 + r * 11) % 800);
  double y = 490.0 + double((id + r) % 20) * 0.45;
  return {id, {x, y, 50}, Micros(r + 1) * 100 * kMicrosPerMilli};
}

TEST(ParallelEngineTest, ElasticRebalanceTriggersAndMatchesSerial) {
  constexpr size_t kEntities = 300;
  constexpr size_t kRounds = 30;
  SimClock clock;
  CoSpaceEngine serial(BaseOptions(), &clock);
  ThreadPool pool(4);
  ParallelEngine sharded(ElasticOptionsFor(4), &pool, &clock);

  for (EntityId id = 1; id <= kEntities; ++id) {
    Entity e;
    e.id = id;
    e.position = BandWalk(id, 0).position;
    serial.SpawnPhysical(e);
    sharded.SpawnPhysical(e);
  }
  uint64_t serial_deliveries = 0;
  std::atomic<uint64_t> sharded_deliveries{0};
  geo::AABB region({0, 400, 0}, {1000, 600, 100});
  serial.WatchRegion(1, region, [&](net::NodeId, const pubsub::Event&) {
    ++serial_deliveries;
  });
  sharded.WatchRegion(1, region, [&](net::NodeId, const pubsub::Event&) {
    sharded_deliveries.fetch_add(1, std::memory_order_relaxed);
  });

  for (size_t r = 0; r < kRounds; ++r) {
    std::vector<SensedUpdate> batch;
    for (EntityId id = 1; id <= kEntities; ++id) {
      batch.push_back(BandWalk(id, r + 1));
      serial.IngestPhysicalPosition(batch.back().id, batch.back().position,
                                    batch.back().t);
    }
    sharded.IngestBatch(batch);
  }

  // The banded load must trip the natural cadence/threshold gate (no
  // forced Rebalance() here) and migrate the crowd...
  EXPECT_GE(sharded.rebalance_count(), 1u);
  EXPECT_GT(sharded.entities_migrated(), 0u);
  EXPECT_GT(sharded.tiles_moved(), 0u);
  EXPECT_LT(sharded.LoadImbalance(), 2.0);
  // ...without perturbing a single statistic or delivery.
  ExpectStatsEqual(serial.stats(), sharded.TotalStats());
  EXPECT_EQ(serial_deliveries, sharded_deliveries.load());
  EXPECT_GT(serial_deliveries, 0u);
  for (EntityId id = 1; id <= kEntities; ++id) {
    const Entity* a = serial.virtual_space().Get(id);
    const Entity* b = sharded.FindVirtual(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->position.x, b->position.x);
    EXPECT_EQ(a->updated_at, b->updated_at);
  }
}

TEST(ParallelEngineTest, ElasticStagedUpdatesFollowMigratedEntities) {
  ThreadPool pool(4);
  ParallelEngineOptions elastic_opts = ElasticOptionsFor(4);
  // Accounting on, automatic trigger off: the one Rebalance() below
  // must be the first to touch the assignment, while updates are
  // parked in the staging queues.
  elastic_opts.elastic.rebalance_threshold = 1e9;
  ParallelEngine engine(elastic_opts, &pool);
  constexpr size_t kEntities = 64;
  for (EntityId id = 1; id <= kEntities; ++id) {
    Entity e;
    e.id = id;
    e.position = BandWalk(id, 0).position;
    engine.SpawnPhysical(e);
  }
  // One ingested batch seeds the EWMA with the banded load (a forced
  // rebalance on a zero ledger is a deliberate no-op).
  std::vector<SensedUpdate> prime;
  for (EntityId id = 1; id <= kEntities; ++id) prime.push_back(BandWalk(id, 1));
  EXPECT_EQ(engine.IngestBatch(prime), kEntities);

  // Stage two updates per entity, then force a migration while they
  // sit in the staging queues: the handoff must re-route them to the
  // new owners without dropping one or flipping their order.
  for (EntityId id = 1; id <= kEntities; ++id) engine.Enqueue(BandWalk(id, 2));
  for (EntityId id = 1; id <= kEntities; ++id) engine.Enqueue(BandWalk(id, 3));
  EXPECT_TRUE(engine.Rebalance());
  EXPECT_GT(engine.entities_migrated(), 0u);
  EXPECT_EQ(engine.Flush(), 2 * kEntities);

  EXPECT_EQ(engine.TotalStats().physical_updates, 3 * kEntities);
  for (EntityId id = 1; id <= kEntities; ++id) {
    const Entity* m = engine.FindVirtual(id);
    ASSERT_NE(m, nullptr);
    // The later staged update won (order preserved through migration).
    EXPECT_EQ(m->position.x, BandWalk(id, 3).position.x);
    EXPECT_EQ(m->updated_at, BandWalk(id, 3).t);
  }
}

TEST(ParallelEngineTest, ElasticWatchDeliveriesExactAcrossRebalances) {
  ThreadPool pool(4);
  ParallelEngineOptions opts = ElasticOptionsFor(4);
  opts.engine.default_contract = {0.0, 0};  // every update mirrors
  ParallelEngine engine(opts, &pool);
  Entity e;
  e.id = 1;
  e.position = {500, 495, 50};
  engine.SpawnPhysical(e);

  std::atomic<int> delivered{0};
  geo::AABB region({0, 400, 0}, {1000, 600, 100});
  engine.WatchRegion(9, region, [&](net::NodeId, const pubsub::Event&) {
    delivered.fetch_add(1);
  });

  // Alternate in-region updates with forced handoffs: exactly one
  // delivery per update, regardless of which shard owns the watch leg
  // at the time.
  int expected = 0;
  for (size_t r = 1; r <= 10; ++r) {
    std::vector<SensedUpdate> batch{BandWalk(1, r)};
    EXPECT_EQ(engine.IngestBatch(batch), 1u);
    ++expected;
    EXPECT_EQ(delivered.load(), expected) << "round " << r;
    engine.Rebalance();
  }
  EXPECT_GT(engine.rebalance_count(), 0u);
}

TEST(ParallelEngineTest, ElasticConcurrentEnqueueDuringRebalance) {
  constexpr size_t kThreads = 4;
  constexpr size_t kEntitiesPerThread = 25;
  constexpr size_t kRounds = 40;
  constexpr size_t kEntities = kThreads * kEntitiesPerThread;

  ThreadPool pool(4);
  ParallelEngine engine(ElasticOptionsFor(4), &pool);
  for (EntityId id = 1; id <= kEntities; ++id) {
    Entity e;
    e.id = id;
    e.position = BandWalk(id, 0).position;
    engine.SpawnPhysical(e);
  }

  // Producers stage through the shared-locked Enqueue path while the
  // main thread forces migrations and flushes — the exact writer/reader
  // contention on route_mu_ the handoff protocol must survive.
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (size_t r = 1; r <= kRounds; ++r) {
        for (size_t i = 0; i < kEntitiesPerThread; ++i) {
          engine.Enqueue(BandWalk(EntityId(t * kEntitiesPerThread + i + 1), r));
        }
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    engine.Rebalance();
    engine.Flush();
  }
  for (auto& p : producers) p.join();
  engine.Flush();

  EXPECT_EQ(engine.TotalStats().physical_updates, kEntities * kRounds);
  for (EntityId id = 1; id <= kEntities; ++id) {
    const Entity* m = engine.FindVirtual(id);
    ASSERT_NE(m, nullptr);
    // Per-entity order held: the final mirror is the last-round update.
    EXPECT_EQ(m->updated_at, BandWalk(id, kRounds).t);
  }
}

TEST(ParallelEngineTest, ElasticDisabledKeepsStaticStriping) {
  ThreadPool pool(2);
  ParallelEngine engine(ShardedOptions(4), &pool);  // elastic off
  Entity e;
  e.id = 1;
  e.position = {500, 495, 50};
  engine.SpawnPhysical(e);
  for (size_t r = 1; r <= 8; ++r) {
    std::vector<SensedUpdate> batch{BandWalk(1, r)};
    engine.IngestBatch(batch);
  }
  // No accounting, no automatic rebalances, imbalance reads as flat.
  EXPECT_EQ(engine.rebalance_count(), 0u);
  EXPECT_EQ(engine.entities_migrated(), 0u);
  EXPECT_EQ(engine.LoadImbalance(), 1.0);
}

TEST(ParallelEngineTest, SingleShardNullPoolRunsSerially) {
  ParallelEngine engine(ShardedOptions(1), nullptr);
  Entity e;
  e.id = 1;
  e.position = {10, 10, 10};
  engine.SpawnPhysical(e);
  std::vector<SensedUpdate> batch{{1, {20, 20, 10}, kMicrosPerSecond}};
  EXPECT_EQ(engine.IngestBatch(batch), 1u);
  EXPECT_EQ(engine.TotalStats().physical_updates, 1u);
  const Entity* mirrored = engine.FindVirtual(1);
  ASSERT_NE(mirrored, nullptr);
  EXPECT_EQ(mirrored->position.x, 20);
}

}  // namespace
}  // namespace deluge::core
