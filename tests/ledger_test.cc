#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "ledger/ledger.h"
#include "ledger/merkle.h"
#include "ledger/sha256.h"

namespace deluge::ledger {
namespace {

// ---------------------------------------------------------------- Sha256

TEST(Sha256Test, KnownVectors) {
  // FIPS 180-4 / NIST test vectors.
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog and more";
  for (size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.Update(data.substr(0, split));
    h.Update(data.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << split;
  }
}

TEST(Sha256Test, ResetReuses) {
  Sha256 h;
  h.Update("junk");
  h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(DigestToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ------------------------------------------------------------- MerkleTree

TEST(MerkleTreeTest, EmptyAndSingle) {
  MerkleTree tree;
  EXPECT_EQ(tree.Root(), Digest{});
  tree.Append("a");
  EXPECT_EQ(tree.Root(), MerkleTree::HashLeaf("a"));
}

TEST(MerkleTreeTest, RootMatchesManualTwoLeaves) {
  MerkleTree tree;
  tree.Append("a");
  tree.Append("b");
  Digest expected = MerkleTree::HashNode(MerkleTree::HashLeaf("a"),
                                         MerkleTree::HashLeaf("b"));
  EXPECT_EQ(tree.Root(), expected);
}

TEST(MerkleTreeTest, RootAtPrefix) {
  MerkleTree tree;
  MerkleTree prefix;
  for (int i = 0; i < 10; ++i) {
    tree.Append("rec" + std::to_string(i));
    if (i < 6) prefix.Append("rec" + std::to_string(i));
  }
  EXPECT_EQ(tree.RootAt(6), prefix.Root());
}

TEST(MerkleTreeTest, InclusionProofsVerifyAtAllSizesAndIndexes) {
  MerkleTree tree;
  std::vector<std::string> records;
  for (int i = 0; i < 33; ++i) {  // crosses power-of-two boundaries
    records.push_back("record-" + std::to_string(i));
    tree.Append(records.back());
  }
  for (size_t size = 1; size <= 33; ++size) {
    Digest root = tree.RootAt(size);
    for (size_t idx = 0; idx < size; ++idx) {
      auto proof = tree.InclusionProof(idx, size);
      EXPECT_TRUE(MerkleTree::VerifyInclusion(
          MerkleTree::HashLeaf(records[idx]), idx, size, proof, root))
          << "size=" << size << " idx=" << idx;
    }
  }
}

TEST(MerkleTreeTest, TamperedProofRejected) {
  MerkleTree tree;
  for (int i = 0; i < 8; ++i) tree.Append("r" + std::to_string(i));
  auto proof = tree.InclusionProof(3, 8);
  Digest root = tree.Root();
  // Wrong leaf.
  EXPECT_FALSE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("evil"), 3, 8,
                                           proof, root));
  // Wrong index.
  EXPECT_FALSE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("r3"), 4, 8,
                                           proof, root));
  // Flipped proof byte.
  auto bad = proof;
  bad[0][0] ^= 1;
  EXPECT_FALSE(
      MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("r3"), 3, 8, bad, root));
  // Truncated proof.
  auto shorter = proof;
  shorter.pop_back();
  EXPECT_FALSE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("r3"), 3, 8,
                                           shorter, root));
}

TEST(MerkleTreeTest, ProofSizeIsLogarithmic) {
  MerkleTree tree;
  for (int i = 0; i < 1024; ++i) tree.Append("r" + std::to_string(i));
  auto proof = tree.InclusionProof(500, 1024);
  EXPECT_EQ(proof.size(), 10u);  // exactly log2(1024)
}

TEST(MerkleTreeTest, ConsistencyProofsVerifyAcrossAllSizePairs) {
  MerkleTree tree;
  for (int i = 0; i < 20; ++i) tree.Append("rec" + std::to_string(i));
  for (size_t old_size = 1; old_size < 20; ++old_size) {
    for (size_t new_size = old_size + 1; new_size <= 20; ++new_size) {
      auto proof = tree.ConsistencyProof(old_size, new_size);
      EXPECT_TRUE(MerkleTree::VerifyConsistency(
          old_size, new_size, tree.RootAt(old_size), tree.RootAt(new_size),
          proof))
          << old_size << " -> " << new_size;
    }
  }
}

TEST(MerkleTreeTest, ForkedHistoryFailsConsistency) {
  MerkleTree honest, forked;
  for (int i = 0; i < 8; ++i) {
    honest.Append("r" + std::to_string(i));
    forked.Append("r" + std::to_string(i));
  }
  Digest old_root = honest.Root();
  honest.Append("r8");
  forked.Append("REWRITTEN");
  EXPECT_NE(forked.Root(), honest.Root());
  // No proof links the honest old root to the forked head.
  EXPECT_FALSE(MerkleTree::VerifyConsistency(
      8, 9, old_root, forked.Root(), honest.ConsistencyProof(8, 9)));
  // Interestingly the forked tree shares the first 8 leaves here, so its
  // own proof IS valid for its head — the detectable forgery is when the
  // prefix itself was rewritten, covered by AuditorTest.DetectsHistoryRewrite.
  EXPECT_TRUE(MerkleTree::VerifyConsistency(
      8, 9, old_root, forked.Root(), forked.ConsistencyProof(8, 9)));
}

TEST(MerkleTreeTest, SameSizeConsistency) {
  MerkleTree tree;
  tree.Append("a");
  EXPECT_TRUE(MerkleTree::VerifyConsistency(1, 1, tree.Root(), tree.Root(),
                                            {}));
  Digest other{};
  other[0] = 1;
  EXPECT_FALSE(MerkleTree::VerifyConsistency(1, 1, tree.Root(), other, {}));
}

// ------------------------------------------------------ TransparencyLedger

TEST(LedgerTest, AppendGetRoundTrip) {
  SimClock clock;
  TransparencyLedger ledger(&clock);
  EXPECT_EQ(ledger.Append("txn1"), 0u);
  EXPECT_EQ(ledger.Append("txn2"), 1u);
  std::string data;
  ASSERT_TRUE(ledger.GetEntry(0, &data).ok());
  EXPECT_EQ(data, "txn1");
  EXPECT_TRUE(ledger.GetEntry(5, &data).code() == StatusCode::kOutOfRange);
}

TEST(LedgerTest, HeadsRecordHistory) {
  SimClock clock(100);
  TransparencyLedger ledger(&clock);
  ledger.Append("a");
  TreeHead h1 = ledger.PublishHead();
  clock.Advance(50);
  ledger.Append("b");
  TreeHead h2 = ledger.PublishHead();
  EXPECT_EQ(h1.tree_size, 1u);
  EXPECT_EQ(h2.tree_size, 2u);
  EXPECT_EQ(h2.published_at, 150);
  EXPECT_EQ(ledger.head_history().size(), 2u);
}

TEST(AuditorTest, AcceptsConsistentExtensions) {
  SimClock clock;
  TransparencyLedger ledger(&clock);
  Auditor auditor;
  for (int i = 0; i < 5; ++i) ledger.Append("txn" + std::to_string(i));
  TreeHead h1 = ledger.PublishHead();
  ASSERT_TRUE(auditor.ObserveHead(h1, {}).ok());  // first head: TOFU

  for (int i = 5; i < 12; ++i) ledger.Append("txn" + std::to_string(i));
  TreeHead h2 = ledger.PublishHead();
  auto proof = ledger.ProveConsistency(h1.tree_size, h2.tree_size);
  EXPECT_TRUE(auditor.ObserveHead(h2, proof).ok());
  EXPECT_EQ(auditor.heads_accepted(), 2u);
  EXPECT_EQ(auditor.violations_detected(), 0u);
}

TEST(AuditorTest, DetectsHistoryRewrite) {
  SimClock clock;
  TransparencyLedger honest(&clock), evil(&clock);
  Auditor auditor;
  for (int i = 0; i < 8; ++i) {
    honest.Append("t" + std::to_string(i));
    evil.Append("t" + std::to_string(i));
  }
  ASSERT_TRUE(auditor.ObserveHead(honest.PublishHead(), {}).ok());

  // The evil operator rewrites entry 3 then extends.
  TransparencyLedger rewritten(&clock);
  for (int i = 0; i < 8; ++i) {
    rewritten.Append(i == 3 ? std::string("FORGED") : "t" + std::to_string(i));
  }
  rewritten.Append("t8");
  TreeHead forged_head = rewritten.PublishHead();
  auto forged_proof = rewritten.ProveConsistency(8, 9);
  Status s = auditor.ObserveHead(forged_head, forged_proof);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(auditor.violations_detected(), 1u);
}

TEST(AuditorTest, DetectsShrinkingLedger) {
  SimClock clock;
  TransparencyLedger ledger(&clock);
  Auditor auditor;
  for (int i = 0; i < 4; ++i) ledger.Append("x");
  ASSERT_TRUE(auditor.ObserveHead(ledger.PublishHead(), {}).ok());
  TreeHead smaller;
  smaller.tree_size = 2;
  smaller.root = ledger.latest_head().root;
  EXPECT_TRUE(auditor.ObserveHead(smaller, {}).IsCorruption());
}

TEST(AuditorTest, VerifiesRecordInclusion) {
  SimClock clock;
  TransparencyLedger ledger(&clock);
  Auditor auditor;
  for (int i = 0; i < 10; ++i) ledger.Append("txn" + std::to_string(i));
  TreeHead head = ledger.PublishHead();
  ASSERT_TRUE(auditor.ObserveHead(head, {}).ok());

  auto proof = ledger.ProveInclusion(7, head.tree_size);
  EXPECT_TRUE(auditor.VerifyRecord("txn7", 7, proof).ok());
  EXPECT_TRUE(auditor.VerifyRecord("txn8", 7, proof).IsCorruption());
  EXPECT_TRUE(auditor.VerifyRecord("txn7", 6, proof).IsCorruption());
}

TEST(AuditorTest, NoHeadNoVerification) {
  Auditor auditor;
  EXPECT_TRUE(auditor.VerifyRecord("x", 0, {}).IsUnavailable());
}

}  // namespace
}  // namespace deluge::ledger
