// Tests for the deterministic chaos layer: fault schedules over the
// simulated network, graceful degradation (broker + serverless
// shedding), retrying delivery, and transaction recovery after faults
// heal — all bit-for-bit reproducible from seeds.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "net/network.h"
#include "net/transport.h"
#include "pubsub/broker.h"
#include "pubsub/reliable.h"
#include "runtime/serverless.h"
#include "txn/distributed.h"

namespace deluge {
namespace {

// ---------------------------------------------------- schedule determinism

struct ChaosRun {
  std::vector<std::string> trace;
  uint64_t trace_hash = 0;
  size_t event_count = 0;
};

ChaosRun RunRandomSchedule(uint64_t seed) {
  net::Simulator sim;
  net::Network net(&sim);
  net::SimTransport transport(&net, &sim);
  std::vector<net::NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(net.AddNode([](const net::Message&) {}));
  }
  chaos::FaultSchedule schedule(&transport);
  schedule.GenerateRandom(seed, nodes, chaos::RandomScheduleOptions{});
  schedule.Arm();
  sim.Run();
  return ChaosRun{schedule.trace(), schedule.TraceHash(),
                  schedule.events().size()};
}

TEST(FaultScheduleTest, SameSeedProducesIdenticalTrace) {
  ChaosRun a = RunRandomSchedule(0xBEEF);
  ChaosRun b = RunRandomSchedule(0xBEEF);
  ASSERT_GT(a.event_count, 0u);  // the default rates must inject something
  EXPECT_EQ(a.event_count, b.event_count);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

TEST(FaultScheduleTest, DifferentSeedsProduceDifferentTraces) {
  ChaosRun a = RunRandomSchedule(0xBEEF);
  ChaosRun b = RunRandomSchedule(0xF00D);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(FaultScheduleTest, ScriptedEventsApplyAndCount) {
  net::Simulator sim;
  net::Network net(&sim);
  net::SimTransport transport(&net, &sim);
  net::NodeId a = net.AddNode([](const net::Message&) {});
  net::NodeId b = net.AddNode([](const net::Message&) {});
  chaos::FaultSchedule schedule(&transport);
  schedule.CrashNode(10 * kMicrosPerMilli, b, /*down_for=*/50 * kMicrosPerMilli)
      .PartitionWindow(20 * kMicrosPerMilli, a, b,
                       /*heal_after=*/30 * kMicrosPerMilli)
      .LatencySpike(5 * kMicrosPerMilli, a, b, 100 * kMicrosPerMilli,
                    /*duration=*/10 * kMicrosPerMilli);
  schedule.Arm();

  // Mid-outage the node is down and the pair partitioned.
  sim.At(30 * kMicrosPerMilli, [&] {
    EXPECT_FALSE(net.IsNodeUp(b));
    EXPECT_TRUE(net.IsPartitioned(a, b));
  });
  sim.Run();

  EXPECT_TRUE(net.IsNodeUp(b));            // restarted
  EXPECT_FALSE(net.IsPartitioned(a, b));   // healed
  EXPECT_EQ(schedule.stats().total, 6u);   // 3 windows = 6 events
  EXPECT_EQ(schedule.trace().size(), 6u);
}

TEST(FaultScheduleTest, UnpairedPartitionAndHealWithObserver) {
  net::Simulator sim;
  net::Network net(&sim);
  net::SimTransport transport(&net, &sim);
  net::NodeId a = net.AddNode([](const net::Message&) {});
  net::NodeId b = net.AddNode([](const net::Message&) {});
  chaos::FaultSchedule schedule(&transport);
  // PartitionAt/HealAt are independent events, so protocol code (e.g.
  // anti-entropy) can be triggered exactly at the heal edge.
  schedule.PartitionAt(10 * kMicrosPerMilli, a, b)
      .HealAt(40 * kMicrosPerMilli, a, b);
  std::vector<chaos::FaultKind> seen;
  std::vector<Micros> seen_at;
  schedule.SetFaultObserver([&](const chaos::FaultEvent& ev) {
    seen.push_back(ev.kind);
    seen_at.push_back(ev.at);
    EXPECT_EQ(ev.a, a);
    EXPECT_EQ(ev.b, b);
  });
  schedule.Arm();

  sim.At(20 * kMicrosPerMilli, [&] { EXPECT_TRUE(net.IsPartitioned(a, b)); });
  sim.Run();

  EXPECT_FALSE(net.IsPartitioned(a, b));
  ASSERT_EQ(seen.size(), 2u);  // observer fired once per applied fault
  EXPECT_EQ(seen[0], chaos::FaultKind::kPartition);
  EXPECT_EQ(seen[1], chaos::FaultKind::kHeal);
  EXPECT_EQ(seen_at[0], 10 * kMicrosPerMilli);
  EXPECT_EQ(seen_at[1], 40 * kMicrosPerMilli);
  EXPECT_EQ(schedule.stats().total, 2u);
}

// ------------------------------------------------------- network fault API

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<net::Network>(&sim_);
    a_ = net_->AddNode([](const net::Message&) {});
    b_ = net_->AddNode([&](const net::Message&) {
      ++delivered_;
      last_delivery_at_ = sim_.Now();
    });
    net_->default_link().latency = 5 * kMicrosPerMilli;
    net_->default_link().bandwidth_bytes_per_sec = 0;
  }

  Status Send() {
    net::Message m;
    m.from = a_;
    m.to = b_;
    m.type = 1;
    m.payload = "x";
    return net_->Send(std::move(m));
  }

  net::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  net::NodeId a_ = 0, b_ = 0;
  int delivered_ = 0;
  Micros last_delivery_at_ = -1;
};

TEST_F(NetFaultTest, CrashedNodeRejectsTrafficUntilRestart) {
  net_->SetNodeUp(b_, false);
  EXPECT_TRUE(Send().IsUnavailable());
  sim_.Run();
  EXPECT_EQ(delivered_, 0);
  EXPECT_EQ(net_->stats().drops_node_down, 1u);

  net_->SetNodeUp(b_, true);
  EXPECT_TRUE(Send().ok());
  sim_.Run();
  EXPECT_EQ(delivered_, 1);
}

TEST_F(NetFaultTest, LinkDownRejectsAndInFlightMessagesAreLost) {
  // Accepted at t=0 (link healthy), but the link flaps at 1 ms while the
  // message needs 5 ms to arrive: datagram semantics, it is lost.
  EXPECT_TRUE(Send().ok());
  sim_.At(1 * kMicrosPerMilli, [&] { net_->SetLinkDown(a_, b_, true); });
  sim_.Run();
  EXPECT_EQ(delivered_, 0);
  EXPECT_EQ(net_->stats().messages_dropped, 1u);

  EXPECT_TRUE(Send().IsUnavailable());  // down link rejects at send time
  EXPECT_EQ(net_->stats().drops_link_down, 1u);
  net_->SetLinkDown(a_, b_, false);
  EXPECT_TRUE(Send().ok());
  sim_.Run();
  EXPECT_EQ(delivered_, 1);
}

TEST_F(NetFaultTest, LatencySpikeDelaysDelivery) {
  net_->SetExtraLatency(a_, b_, 100 * kMicrosPerMilli);
  EXPECT_TRUE(Send().ok());
  sim_.Run();
  ASSERT_EQ(delivered_, 1);
  EXPECT_EQ(last_delivery_at_, 105 * kMicrosPerMilli);  // 5 ms + spike

  net_->SetExtraLatency(a_, b_, 0);
  Micros sent_at = sim_.Now();
  EXPECT_TRUE(Send().ok());
  sim_.Run();
  EXPECT_EQ(last_delivery_at_, sent_at + 5 * kMicrosPerMilli);
}

TEST_F(NetFaultTest, BurstLossDropsSilently) {
  // A chain that enters Bad on the first message and never leaves: every
  // send is accepted (silent loss) yet nothing arrives.
  net::BurstLossModel model;
  model.p_good_to_bad = 1.0;
  model.p_bad_to_good = 0.0;
  model.loss_good = 0.0;
  model.loss_bad = 1.0;
  net_->SetBurstLoss(a_, b_, model);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(Send().ok());
  sim_.Run();
  EXPECT_EQ(delivered_, 0);
  EXPECT_EQ(net_->stats().drops_burst_loss, 20u);

  net_->ClearBurstLoss(a_, b_);
  EXPECT_TRUE(Send().ok());
  sim_.Run();
  EXPECT_EQ(delivered_, 1);
}

// -------------------------------------------------- graceful degradation

TEST(BrokerSheddingTest, BoundedQueueShedsLowestClassFirst) {
  std::vector<QosClass> delivered;
  pubsub::Broker broker(geo::AABB({0, 0, 0}, {100, 100, 100}), 10.0,
                        [&](net::NodeId, const pubsub::Event& e) {
                          delivered.push_back(e.qos);
                        });
  pubsub::Subscription sub;
  sub.subscriber = 1;
  sub.topic = "t";
  broker.Subscribe(sub);
  broker.SetQueueLimit(3);

  for (QosClass qos : {QosClass::kBulk, QosClass::kTelemetry,
                       QosClass::kInteractive, QosClass::kRealtime,
                       QosClass::kBulk}) {
    pubsub::Event e;
    e.topic = "t";
    e.qos = qos;
    broker.Publish(e);
  }
  // Queue holds {telemetry,interactive,realtime}: the first bulk event
  // was evicted by realtime, the second bulk refused at the door.
  EXPECT_EQ(broker.stats().deliveries_shed, 2u);
  EXPECT_EQ(broker.queue_depth(), 3u);
  EXPECT_EQ(broker.stats().queue_high_water, 3u);

  EXPECT_EQ(broker.Drain(), 3u);
  EXPECT_EQ(delivered,
            (std::vector<QosClass>{QosClass::kRealtime,
                                   QosClass::kInteractive,
                                   QosClass::kTelemetry}));
  EXPECT_EQ(broker.queue_depth(), 0u);
}

TEST(ServerlessSheddingTest, ConcurrencyLimitShedsAndServesByClass) {
  net::Simulator sim;
  runtime::ServerlessRuntime rt(&sim, /*keep_alive=*/0);
  runtime::FunctionSpec spec;
  spec.name = "f";
  spec.cold_start = 0;
  spec.exec_time = 10 * kMicrosPerMilli;
  rt.Register(spec);
  rt.SetConcurrencyLimit(/*max_concurrent=*/1, /*queue_limit=*/2);

  std::vector<QosClass> completed;
  auto invoke = [&](QosClass qos) {
    rt.Invoke("f", [&completed, qos] { completed.push_back(qos); }, qos);
  };
  invoke(QosClass::kBulk);         // runs immediately
  invoke(QosClass::kTelemetry);    // queued
  invoke(QosClass::kInteractive);  // queued
  invoke(QosClass::kRealtime);     // queue full: evicts the telemetry waiter
  invoke(QosClass::kBulk);  // queue full of higher classes: shed at the door
  EXPECT_EQ(rt.shed(), 2u);
  EXPECT_EQ(rt.queue_depth(), 2u);
  sim.Run();
  // The free slot always goes to the most important waiter.
  EXPECT_EQ(completed,
            (std::vector<QosClass>{QosClass::kBulk, QosClass::kRealtime,
                                   QosClass::kInteractive}));
  EXPECT_EQ(rt.queue_depth(), 0u);
}

// ---------------------------------------------------- reliable delivery

TEST(ReliableDelivererTest, RetriesThroughPartitionUntilHealed) {
  net::Simulator sim;
  net::Network net(&sim);
  net::SimTransport transport(&net, &sim);
  net::NodeId a = net.AddNode([](const net::Message&) {});
  int received = 0;
  net::NodeId b = net.AddNode([&](const net::Message&) { ++received; });
  net.default_link().latency = kMicrosPerMilli;
  net.default_link().bandwidth_bytes_per_sec = 0;

  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = 50 * kMicrosPerMilli;
  pubsub::ReliableDeliverer deliverer(&transport, policy);
  deliverer.breaker_options().failure_threshold = 100;  // no breaker here

  net.Partition(a, b);
  sim.At(200 * kMicrosPerMilli, [&] { net.Heal(a, b); });
  pubsub::Event e;
  e.topic = "t";
  deliverer.Deliver(a, b, e);
  sim.Run();

  const pubsub::ReliableStats& stats = deliverer.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(received, 1);
}

TEST(ReliableDelivererTest, BreakerFastFailsAfterRepeatedFailures) {
  net::Simulator sim;
  net::Network net(&sim);
  net::SimTransport transport(&net, &sim);
  net::NodeId a = net.AddNode([](const net::Message&) {});
  net::NodeId b = net.AddNode([](const net::Message&) {});

  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = 10 * kMicrosPerMilli;
  pubsub::ReliableDeliverer deliverer(&transport, policy);
  deliverer.breaker_options().failure_threshold = 3;

  net.Partition(a, b);  // never heals
  pubsub::Event e;
  e.topic = "t";
  deliverer.Deliver(a, b, e);
  sim.Run();

  const pubsub::ReliableStats& stats = deliverer.stats();
  EXPECT_EQ(stats.accepted, 0u);
  // Three failures trip the breaker; the next scheduled attempt
  // fast-fails instead of burning the remaining retry budget.
  EXPECT_EQ(stats.sends, 3u);
  EXPECT_GE(stats.fast_failed, 1u);
  EXPECT_EQ(deliverer.stats().gave_up, 0u);
}

// ----------------------------------------------------- txn chaos recovery

class TxnChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<net::Network>(&sim_);
    transport_ = std::make_unique<net::SimTransport>(net_.get(), &sim_);
    for (int i = 0; i < 3; ++i) {
      shards_.push_back(std::make_unique<txn::ShardNode>(transport_.get()));
    }
    std::vector<txn::ShardNode*> ptrs;
    for (auto& s : shards_) ptrs.push_back(s.get());
    system_ =
        std::make_unique<txn::DistributedTxnSystem>(transport_.get(), ptrs);
    net_->default_link().latency = 5 * kMicrosPerMilli;
    net_->default_link().bandwidth_bytes_per_sec = 0;
  }

  std::string KeyOnShard(size_t target) {
    for (int i = 0;; ++i) {
      std::string key = "k" + std::to_string(i);
      if (system_->ShardOf(key) == target) return key;
    }
  }

  net::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<txn::ShardNode>> shards_;
  std::unique_ptr<txn::DistributedTxnSystem> system_;
};

TEST_F(TxnChaosTest, RetransmitsDriveCommitThroughTransientPartition) {
  // The prepare round is cut by a partition that heals before the
  // timeout: retransmission must complete the protocol (the seed system
  // would have timed out and aborted).
  chaos::FaultSchedule schedule(transport_.get());
  schedule.PartitionWindow(0, system_->coordinator_node(),
                           shards_[1]->node_id(),
                           /*heal_after=*/400 * kMicrosPerMilli);
  schedule.Arm();
  txn::TxnResult result;
  system_->Submit({{KeyOnShard(1), "v"}}, txn::CommitProtocol::kTwoPhase,
                  [&](const txn::TxnResult& r) { result = r; },
                  /*timeout=*/2 * kMicrosPerSecond);
  sim_.Run();
  EXPECT_TRUE(result.committed);
  EXPECT_GE(result.latency, 400 * kMicrosPerMilli);  // waited out the fault
  EXPECT_GT(system_->retransmits(), 0u);
  std::string v;
  ASSERT_TRUE(system_->Read(KeyOnShard(1), &v).ok());
  EXPECT_EQ(v, "v");
}

TEST_F(TxnChaosTest, CommittedDecisionIsRedeliveredAfterHeal) {
  // Votes land, then the partition eats the COMMIT.  The transaction
  // times out as committed with the shard unacked; background
  // redelivery must apply the write once the partition heals — zero
  // committed-then-lost writes.
  std::string key = KeyOnShard(1);
  txn::TxnResult result;
  system_->Submit({{key, "durable"}}, txn::CommitProtocol::kTwoPhase,
                  [&](const txn::TxnResult& r) { result = r; },
                  /*timeout=*/200 * kMicrosPerMilli);
  sim_.At(12 * kMicrosPerMilli, [&] {
    net_->Partition(system_->coordinator_node(), shards_[1]->node_id());
  });
  sim_.At(kMicrosPerSecond, [&] {
    net_->Heal(system_->coordinator_node(), shards_[1]->node_id());
  });
  sim_.Run();
  ASSERT_TRUE(result.committed);  // decision was reached before the cut
  EXPECT_GT(system_->redeliveries(), 0u);
  EXPECT_EQ(system_->unresolved_decisions(), 0u);
  std::string v;
  ASSERT_TRUE(system_->Read(key, &v).ok());
  EXPECT_EQ(v, "durable");  // the committed write actually exists
}

TEST_F(TxnChaosTest, BreakerFastFailsSubmissionsToDeadShard) {
  net_->Partition(system_->coordinator_node(), shards_[1]->node_id());
  std::string key = KeyOnShard(1);
  int answered = 0;
  // Each timed-out round records a failure; the default threshold (5)
  // trips the shard's breaker.
  for (int i = 0; i < 5; ++i) {
    sim_.At(Micros(i) * 150 * kMicrosPerMilli, [&] {
      system_->Submit({{key, "x"}}, txn::CommitProtocol::kTwoPhase,
                      [&](const txn::TxnResult&) { ++answered; },
                      /*timeout=*/100 * kMicrosPerMilli);
    });
  }
  Micros fast_latency = -1;
  sim_.At(800 * kMicrosPerMilli, [&] {
    system_->Submit({{key, "x"}}, txn::CommitProtocol::kTwoPhase,
                    [&](const txn::TxnResult& r) {
                      ++answered;
                      fast_latency = r.latency;
                    },
                    /*timeout=*/100 * kMicrosPerMilli);
  });
  sim_.Run();
  EXPECT_EQ(answered, 6);
  EXPECT_EQ(system_->fast_fails(), 1u);
  EXPECT_EQ(fast_latency, 0);  // no timeout wait: rejected at submit
}

}  // namespace
}  // namespace deluge
