#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.h"
#include "txn/distributed.h"
#include "txn/mvcc.h"

namespace deluge::txn {
namespace {

// -------------------------------------------------------------- MvccStore

TEST(MvccStoreTest, SnapshotReads) {
  MvccStore store;
  store.Apply("k", "v1", 10);
  store.Apply("k", "v2", 20);
  std::string v;
  ASSERT_TRUE(store.Get("k", 15, &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(store.Get("k", 25, &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_TRUE(store.Get("k", 5, &v).IsNotFound());
  EXPECT_TRUE(store.Get("missing", 100, &v).IsNotFound());
}

TEST(MvccStoreTest, LatestVersion) {
  MvccStore store;
  EXPECT_EQ(store.LatestVersion("k"), 0u);
  store.Apply("k", "v", 7);
  EXPECT_EQ(store.LatestVersion("k"), 7u);
}

TEST(MvccStoreTest, LockingSemantics) {
  MvccStore store;
  EXPECT_TRUE(store.TryLock("k", 1).ok());
  EXPECT_TRUE(store.TryLock("k", 1).ok());  // re-entrant
  EXPECT_TRUE(store.TryLock("k", 2).IsBusy());
  store.Unlock("k", 2);  // non-holder: no-op
  EXPECT_TRUE(store.TryLock("k", 2).IsBusy());
  store.Unlock("k", 1);
  EXPECT_TRUE(store.TryLock("k", 2).ok());
}

TEST(MvccStoreTest, CommitWriteReleasesLock) {
  MvccStore store;
  ASSERT_TRUE(store.TryLock("k", 1).ok());
  store.CommitWrite("k", "v", 5, 1);
  EXPECT_TRUE(store.TryLock("k", 2).ok());
  std::string v;
  ASSERT_TRUE(store.Get("k", 10, &v).ok());
  EXPECT_EQ(v, "v");
}

TEST(MvccStoreTest, OutOfOrderApplyKeepsSortedVersions) {
  MvccStore store;
  store.Apply("k", "v20", 20);
  store.Apply("k", "v10", 10);
  std::string v;
  ASSERT_TRUE(store.Get("k", 15, &v).ok());
  EXPECT_EQ(v, "v10");
  ASSERT_TRUE(store.Get("k", 30, &v).ok());
  EXPECT_EQ(v, "v20");
  store.Apply("k", "v10b", 10);  // same-ts overwrite
  ASSERT_TRUE(store.Get("k", 15, &v).ok());
  EXPECT_EQ(v, "v10b");
}

TEST(MvccStoreTest, VacuumKeepsVisibleVersion) {
  MvccStore store;
  for (Timestamp t : {10, 20, 30, 40}) {
    store.Apply("k", "v" + std::to_string(t), t);
  }
  size_t removed = store.Vacuum(25);
  EXPECT_EQ(removed, 1u);  // only v10 is unreachable at horizon 25
  std::string v;
  ASSERT_TRUE(store.Get("k", 25, &v).ok());
  EXPECT_EQ(v, "v20");
}

// ----------------------------------------------------------- Wire coding

TEST(WireCodingTest, RoundTrip) {
  std::vector<WriteOp> writes = {{"a", "1"}, {"b", ""}};
  std::string wire = EncodeWrites(42, 7, writes);
  uint64_t txn_id;
  Timestamp ts;
  std::vector<WriteOp> decoded;
  ASSERT_TRUE(DecodeWrites(wire, &txn_id, &ts, &decoded));
  EXPECT_EQ(txn_id, 42u);
  EXPECT_EQ(ts, 7u);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].key, "a");
  EXPECT_EQ(decoded[1].value, "");
}

TEST(WireCodingTest, TruncatedRejected) {
  std::string wire = EncodeWrites(1, 1, {{"key", "value"}});
  uint64_t txn_id;
  Timestamp ts;
  std::vector<WriteOp> decoded;
  EXPECT_FALSE(
      DecodeWrites(wire.substr(0, wire.size() - 2), &txn_id, &ts, &decoded));
}

// ------------------------------------------------- DistributedTxnSystem

class DistTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<net::Network>(&sim_);
    transport_ = std::make_unique<net::SimTransport>(net_.get(), &sim_);
    for (int i = 0; i < 4; ++i) {
      shards_.push_back(std::make_unique<ShardNode>(transport_.get()));
    }
    std::vector<ShardNode*> ptrs;
    for (auto& s : shards_) ptrs.push_back(s.get());
    system_ = std::make_unique<DistributedTxnSystem>(transport_.get(), ptrs);
    // Uniform 10 ms inter-node latency.
    net_->default_link().latency = 10 * kMicrosPerMilli;
    net_->default_link().bandwidth_bytes_per_sec = 0;
  }

  net::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<ShardNode>> shards_;
  std::unique_ptr<DistributedTxnSystem> system_;
};

TEST_F(DistTxnTest, TwoPhaseCommitsAndApplies) {
  TxnResult result;
  system_->Submit({{"user:1", "alice"}, {"user:2", "bob"}},
                  CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { result = r; });
  sim_.Run();
  EXPECT_TRUE(result.committed);
  std::string v;
  ASSERT_TRUE(system_->Read("user:1", &v).ok());
  EXPECT_EQ(v, "alice");
  ASSERT_TRUE(system_->Read("user:2", &v).ok());
  EXPECT_EQ(v, "bob");
  EXPECT_EQ(system_->committed(), 1u);
}

TEST_F(DistTxnTest, SingleRoundCommitsAndApplies) {
  TxnResult result;
  system_->Submit({{"x", "1"}, {"y", "2"}, {"z", "3"}},
                  CommitProtocol::kSingleRound,
                  [&](const TxnResult& r) { result = r; });
  sim_.Run();
  EXPECT_TRUE(result.committed);
  std::string v;
  ASSERT_TRUE(system_->Read("z", &v).ok());
  EXPECT_EQ(v, "3");
}

TEST_F(DistTxnTest, SingleRoundIsOneRttTwoPhaseIsTwo) {
  TxnResult two_phase, single;
  system_->Submit({{"a", "1"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { two_phase = r; });
  sim_.Run();
  system_->Submit({{"b", "1"}}, CommitProtocol::kSingleRound,
                  [&](const TxnResult& r) { single = r; });
  sim_.Run();
  // One-way latency 10 ms: 1 RTT ~= 20 ms, 2 RTT ~= 40 ms (plus
  // processing).  The 2PC decision needs prepare+votes => 2 one-way trips,
  // then we count decision at vote collection (2nd round latency excluded
  // from decision time but commit needs 2 more trips to apply).
  EXPECT_GE(single.latency, 20 * kMicrosPerMilli);
  EXPECT_LT(single.latency, 30 * kMicrosPerMilli);
  EXPECT_GE(two_phase.latency, 20 * kMicrosPerMilli);
  // Reads reflect writes only after the commit round completes.
  std::string v;
  EXPECT_TRUE(system_->Read("a", &v).ok());
}

TEST_F(DistTxnTest, ConflictingTwoPhaseTxnsOneAborts) {
  // Two transactions race on the same key.  The second PREPARE reaches
  // the shard while the first holds the lock => VoteNo => abort.
  TxnResult r1, r2;
  system_->Submit({{"hot", "t1"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { r1 = r; });
  system_->Submit({{"hot", "t2"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { r2 = r; });
  sim_.Run();
  EXPECT_NE(r1.committed, r2.committed);
  EXPECT_EQ(system_->committed(), 1u);
  EXPECT_EQ(system_->aborted(), 1u);
  // The winner's value is installed.
  std::string v;
  ASSERT_TRUE(system_->Read("hot", &v).ok());
  EXPECT_EQ(v, r1.committed ? "t1" : "t2");
}

TEST_F(DistTxnTest, AbortReleasesLocksForLaterTxns) {
  TxnResult r1, r2, r3;
  system_->Submit({{"k", "a"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { r1 = r; });
  system_->Submit({{"k", "b"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { r2 = r; });
  sim_.Run();
  ASSERT_EQ(system_->aborted(), 1u);
  // After everything settles, a third transaction must succeed.
  system_->Submit({{"k", "c"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { r3 = r; });
  sim_.Run();
  EXPECT_TRUE(r3.committed);
  std::string v;
  ASSERT_TRUE(system_->Read("k", &v).ok());
  EXPECT_EQ(v, "c");
}

TEST_F(DistTxnTest, ManySequentialTransactionsAllCommit) {
  int committed = 0;
  for (int i = 0; i < 50; ++i) {
    system_->Submit({{"key" + std::to_string(i), "v"}},
                    CommitProtocol::kSingleRound,
                    [&](const TxnResult& r) { committed += r.committed; });
    sim_.Run();
  }
  EXPECT_EQ(committed, 50);
  EXPECT_EQ(system_->commit_latency().count(), 50u);
}

TEST_F(DistTxnTest, CrossShardTransactionTouchesMultipleShards) {
  // Enough distinct keys to hit >1 shard with overwhelming probability.
  std::vector<WriteOp> writes;
  for (int i = 0; i < 16; ++i) {
    writes.push_back({"k" + std::to_string(i), "v"});
  }
  std::set<size_t> shard_set;
  for (const auto& w : writes) shard_set.insert(system_->ShardOf(w.key));
  EXPECT_GT(shard_set.size(), 1u);

  TxnResult result;
  system_->Submit(writes, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { result = r; });
  sim_.Run();
  EXPECT_TRUE(result.committed);
  std::string v;
  for (const auto& w : writes) {
    ASSERT_TRUE(system_->Read(w.key, &v).ok()) << w.key;
  }
}

TEST_F(DistTxnTest, HigherLatencyRaisesCommitLatency) {
  TxnResult fast, slow;
  system_->Submit({{"a", "1"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { fast = r; });
  sim_.Run();
  net_->default_link().latency = 100 * kMicrosPerMilli;
  // New links pick up the new default only for unseen pairs, so use new
  // keys routed to the same shards — the link objects already exist.
  // Instead, override links explicitly.
  for (auto& shard : shards_) {
    net::LinkOptions slow_link;
    slow_link.latency = 100 * kMicrosPerMilli;
    slow_link.bandwidth_bytes_per_sec = 0;
    net_->SetBidirectional(system_->coordinator_node(), shard->node_id(),
                           slow_link);
  }
  system_->Submit({{"a", "2"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { slow = r; });
  sim_.Run();
  EXPECT_GT(slow.latency, 4 * fast.latency);
}

}  // namespace
}  // namespace deluge::txn
