// Failure-injection tests for the distributed transaction layer:
// partitions, message loss, and the timeout/abort safety net.

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "txn/distributed.h"

namespace deluge::txn {
namespace {

class TxnFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<net::Network>(&sim_);
    transport_ = std::make_unique<net::SimTransport>(net_.get(), &sim_);
    for (int i = 0; i < 3; ++i) {
      shards_.push_back(std::make_unique<ShardNode>(transport_.get()));
    }
    std::vector<ShardNode*> ptrs;
    for (auto& s : shards_) ptrs.push_back(s.get());
    system_ = std::make_unique<DistributedTxnSystem>(transport_.get(), ptrs);
    net_->default_link().latency = 5 * kMicrosPerMilli;
    net_->default_link().bandwidth_bytes_per_sec = 0;
  }

  /// A key owned by shard `target`.
  std::string KeyOnShard(size_t target) {
    for (int i = 0;; ++i) {
      std::string key = "k" + std::to_string(i);
      if (system_->ShardOf(key) == target) return key;
    }
  }

  net::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<ShardNode>> shards_;
  std::unique_ptr<DistributedTxnSystem> system_;
};

TEST_F(TxnFailureTest, PartitionedShardTimesOutAndAborts) {
  net_->Partition(system_->coordinator_node(), shards_[1]->node_id());
  TxnResult result;
  bool called = false;
  system_->Submit({{KeyOnShard(0), "a"}, {KeyOnShard(1), "b"}},
                  CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) {
                    result = r;
                    called = true;
                  },
                  /*timeout=*/kMicrosPerSecond);
  sim_.Run();
  ASSERT_TRUE(called);  // the callback MUST fire despite the partition
  EXPECT_FALSE(result.committed);
  EXPECT_GE(result.latency, kMicrosPerSecond);
  EXPECT_EQ(system_->aborted(), 1u);
}

TEST_F(TxnFailureTest, LocksReleasedAfterTimeoutAbort) {
  std::string contended = KeyOnShard(0);
  net_->Partition(system_->coordinator_node(), shards_[1]->node_id());
  bool first_done = false;
  // Txn 1 locks `contended` on shard 0 but stalls on shard 1.
  system_->Submit({{contended, "t1"}, {KeyOnShard(1), "x"}},
                  CommitProtocol::kTwoPhase,
                  [&](const TxnResult&) { first_done = true; },
                  /*timeout=*/kMicrosPerSecond);
  sim_.Run();
  ASSERT_TRUE(first_done);

  // The abort broadcast reached shard 0 (reachable), releasing the lock:
  // a follow-up single-shard txn must commit.
  net_->Heal(system_->coordinator_node(), shards_[1]->node_id());
  TxnResult second;
  system_->Submit({{contended, "t2"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) { second = r; });
  sim_.Run();
  EXPECT_TRUE(second.committed);
  std::string v;
  ASSERT_TRUE(system_->Read(contended, &v).ok());
  EXPECT_EQ(v, "t2");
}

TEST_F(TxnFailureTest, LostAckAfterDecisionStillReportsCommit) {
  // Let the prepare/vote round through, then cut the ACK path by
  // partitioning right as the commit round goes out.  The decision was
  // reached, so the timeout must report COMMITTED, not aborted.
  std::string key = KeyOnShard(1);
  TxnResult result;
  bool called = false;
  system_->Submit({{key, "v"}}, CommitProtocol::kTwoPhase,
                  [&](const TxnResult& r) {
                    result = r;
                    called = true;
                  },
                  /*timeout=*/kMicrosPerSecond);
  // Votes complete at ~2 one-way delays (10 ms); cut the link at 12 ms so
  // the COMMIT (in flight) is lost and no ACK ever returns.
  sim_.At(12 * kMicrosPerMilli, [&] {
    net_->Partition(system_->coordinator_node(), shards_[1]->node_id());
  });
  sim_.Run();
  ASSERT_TRUE(called);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system_->committed(), 1u);
  EXPECT_EQ(system_->aborted(), 0u);
}

TEST_F(TxnFailureTest, LossyLinksEventuallyResolveEveryTransaction) {
  // 10% loss on every link: every submitted transaction must still get a
  // definitive answer (commit or timeout-abort), never hang.
  for (auto& shard : shards_) {
    net::LinkOptions lossy;
    lossy.latency = 5 * kMicrosPerMilli;
    lossy.bandwidth_bytes_per_sec = 0;
    lossy.drop_probability = 0.1;
    net_->SetBidirectional(system_->coordinator_node(), shard->node_id(),
                           lossy);
  }
  int answered = 0;
  const int kTxns = 100;
  for (int i = 0; i < kTxns; ++i) {
    system_->Submit({{"key" + std::to_string(i), "v"}},
                    CommitProtocol::kTwoPhase,
                    [&](const TxnResult&) { ++answered; },
                    /*timeout=*/500 * kMicrosPerMilli);
    sim_.Run();
  }
  EXPECT_EQ(answered, kTxns);
  EXPECT_EQ(system_->committed() + system_->aborted(), uint64_t(kTxns));
  EXPECT_GT(system_->committed(), 0u);  // most should still commit
}

TEST_F(TxnFailureTest, SingleRoundTimesOutUnderPartitionToo) {
  net_->Partition(system_->coordinator_node(), shards_[2]->node_id());
  TxnResult result;
  bool called = false;
  system_->Submit({{KeyOnShard(2), "v"}}, CommitProtocol::kSingleRound,
                  [&](const TxnResult& r) {
                    result = r;
                    called = true;
                  },
                  /*timeout=*/kMicrosPerSecond);
  sim_.Run();
  ASSERT_TRUE(called);
  EXPECT_FALSE(result.committed);
}

}  // namespace
}  // namespace deluge::txn
