#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace deluge {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::IOError("disk gone");
  EXPECT_EQ(s.ToString(), "IOError: disk gone");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximate) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ZipfSkewsTowardsSmallKeys) {
  Rng rng(19);
  const uint64_t n = 1000;
  int hits_low = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    uint64_t v = rng.Zipf(n, 0.99);
    ASSERT_LT(v, n);
    if (v < 10) ++hits_low;
  }
  // With theta=0.99, the 10 hottest of 1000 keys should absorb far more
  // than their uniform 1% share.
  EXPECT_GT(hits_low, draws / 10);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(23);
  const uint64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.Zipf(n, 0.0)]++;
  for (auto c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  auto s = rng.SampleWithoutReplacement(100, 20);
  ASSERT_EQ(s.size(), 20u);
  std::set<uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (auto v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllWhenKExceedsN) {
  Rng rng(31);
  auto s = rng.SampleWithoutReplacement(5, 50);
  ASSERT_EQ(s.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ----------------------------------------------------------------- Clock

TEST(SimClockTest, AdvanceMovesTime) {
  SimClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceTo(500);  // backwards jumps ignored
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(SystemClockTest, Monotonic) {
  SystemClock* c = SystemClock::Default();
  Micros a = c->NowMicros();
  Micros b = c->NowMicros();
  EXPECT_LE(a, b);
}

// ------------------------------------------------------------------ Hash

TEST(HashTest, DeterministicAndSeeded) {
  EXPECT_EQ(Hash64("hello"), Hash64("hello"));
  EXPECT_NE(Hash64("hello"), Hash64("hellp"));
  EXPECT_NE(Hash64("hello", 1), Hash64("hello", 2));
}

TEST(HashTest, EmptyInputIsStable) {
  EXPECT_EQ(Hash64("", 0), Hash64(nullptr, 0, 0));
}

TEST(HashTest, Mix64Bijective) {
  // Spot-check injectivity on a sample.
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 1000; ++i) out.insert(Mix64(i));
  EXPECT_EQ(out.size(), 1000u);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
  EXPECT_NEAR(h.P50(), 100.0, 15.0);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) h.Record(int64_t(rng.Uniform(1000)));
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  EXPECT_NEAR(h.P50(), 500.0, 75.0);
  EXPECT_NEAR(h.mean(), 500.0, 25.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, RecordManyMatchesLoop) {
  Histogram a, b;
  a.RecordMany(42, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(42);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

// Pins the empty-histogram contract the registry export relies on:
// every percentile of an empty histogram is 0.0, across the whole
// [0, 100] range, not just the median.
TEST(HistogramTest, PercentileOnEmptyIsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
}

// Reset must return the histogram to a state indistinguishable from
// freshly constructed — including as a Merge destination.  (A reset
// that left a stale min_ behind would poison the next merge's min.)
TEST(HistogramTest, MergeAfterResetMatchesFresh) {
  Histogram recycled;
  recycled.Record(3);
  recycled.Record(999999);
  recycled.Reset();

  Histogram src;
  src.Record(100);
  src.Record(200);

  Histogram fresh;
  fresh.Merge(src);
  recycled.Merge(src);

  EXPECT_EQ(recycled.count(), fresh.count());
  EXPECT_EQ(recycled.min(), fresh.min());
  EXPECT_EQ(recycled.max(), fresh.max());
  EXPECT_DOUBLE_EQ(recycled.mean(), fresh.mean());
  EXPECT_DOUBLE_EQ(recycled.Percentile(50), fresh.Percentile(50));
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> x{0};
  pool.Submit([&x] { x = 7; });
  pool.Wait();
  EXPECT_EQ(x.load(), 7);
}

TEST(ThreadPoolTest, SubmitBatchRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.SubmitBatch(std::move(tasks));
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

// The task-spawned-from-task guarantee: a task that submits subtasks
// and calls Wait() helps drain the queue instead of deadlocking — even
// on a single-worker pool, where blocking would starve everything.
TEST(ThreadPoolTest, WaitFromWorkerTaskCompletes) {
  ThreadPool pool(1);
  std::atomic<int> subtasks{0};
  std::atomic<bool> waited_inside{false};
  pool.Submit([&] {
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&subtasks] { subtasks.fetch_add(1); });
    }
    pool.Wait();  // must run the 16 subtasks inline, not deadlock
    waited_inside = subtasks.load() == 16;
  });
  pool.Wait();
  EXPECT_TRUE(waited_inside.load());
  EXPECT_EQ(subtasks.load(), 16);
}

TEST(ThreadPoolTest, WaitCoversTasksSpawnedWhileWaiting) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&total, &pool] {
      total.fetch_add(1);
      pool.Submit([&total] { total.fetch_add(1); });
    });
  }
  pool.Wait();  // external waiter: must include the spawned generation
  EXPECT_EQ(total.load(), 16);
}

// ------------------------------------------------------------ ParallelFor

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, GrainBatchesStillCoverAll) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(257);  // not a multiple of the grain
  ParallelFor(&pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
              /*grain=*/16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NestedInsidePoolTaskMakesProgress) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  ParallelFor(&pool, 4, [&](size_t) {
    // Nested loop on the same saturated pool: the caller-participates
    // claim loop guarantees progress.
    ParallelFor(&pool, 32, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 32);
}

}  // namespace
}  // namespace deluge
