#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "ml/online_model.h"

namespace deluge::ml {
namespace {

std::vector<double> RandomX(Rng* rng, size_t dim) {
  std::vector<double> x(dim);
  for (auto& v : x) v = rng->Gaussian(0, 1);
  return x;
}

double TrueY(const std::vector<double>& w, const std::vector<double>& x,
             Rng* rng, double noise = 0.05) {
  double y = 0;
  for (size_t i = 0; i < w.size(); ++i) y += w[i] * x[i];
  return y + rng->Gaussian(0, noise);
}

// ---------------------------------------------------------- OnlineLinear

TEST(OnlineLinearTest, LearnsALinearConcept) {
  Rng rng(3);
  std::vector<double> truth = {1.0, -2.0, 0.5, 3.0};
  OnlineLinearModel model(4, 0.05);
  for (int i = 0; i < 2000; ++i) {
    auto x = RandomX(&rng, 4);
    model.Update(x, TrueY(truth, x, &rng));
  }
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_NEAR(model.weights()[d], truth[d], 0.1) << d;
  }
  EXPECT_EQ(model.updates(), 2000u);
}

TEST(OnlineLinearTest, ResetForgets) {
  OnlineLinearModel model(2, 0.1);
  model.Update({1, 1}, 10);
  EXPECT_NE(model.Predict({1, 1}), 0.0);
  model.Reset();
  EXPECT_EQ(model.Predict({1, 1}), 0.0);
}

TEST(OnlineLinearTest, DimensionMismatchIsSafe) {
  OnlineLinearModel model(3, 0.1);
  EXPECT_EQ(model.Predict({1.0}), 0.0);  // shorter x: uses overlap only
  model.Update({1.0, 2.0, 3.0, 4.0}, 1.0);  // longer x: extra ignored
  SUCCEED();
}

// ------------------------------------------------------------ PageHinkley

TEST(PageHinkleyTest, QuietSignalNoDetection) {
  PageHinkley ph(0.05, 20.0);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_FALSE(ph.Observe(std::fabs(rng.Gaussian(0, 0.1))));
  }
  EXPECT_EQ(ph.detections(), 0u);
}

TEST(PageHinkleyTest, MeanShiftDetected) {
  PageHinkley ph(0.05, 20.0);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) ph.Observe(std::fabs(rng.Gaussian(0, 0.1)));
  ASSERT_EQ(ph.detections(), 0u);
  bool detected = false;
  for (int i = 0; i < 500 && !detected; ++i) {
    detected = ph.Observe(2.0 + std::fabs(rng.Gaussian(0, 0.1)));
  }
  EXPECT_TRUE(detected);
}

TEST(PageHinkleyTest, ResetsAfterDetectionAndCatchesSecondDrift) {
  PageHinkley ph(0.05, 10.0, 10);
  Rng rng(11);
  auto feed_level = [&](double level, int n) {
    for (int i = 0; i < n; ++i) {
      ph.Observe(level + std::fabs(rng.Gaussian(0, 0.05)));
    }
  };
  feed_level(0.0, 300);
  feed_level(1.0, 300);  // first drift
  feed_level(3.0, 300);  // second drift
  EXPECT_GE(ph.detections(), 2u);
}

// ---------------------------------------------------------- AdaptiveModel

TEST(AdaptiveModelTest, RecoversFromConceptDrift) {
  Rng rng(13);
  std::vector<double> concept_a = {2.0, -1.0, 0.5};
  std::vector<double> concept_b = {-3.0, 2.0, 1.0};

  AdaptiveModel adaptive(3, 0.05, PageHinkley(0.05, 15.0, 20));
  OnlineLinearModel frozen(3, 0.05);  // trained once, never adapted

  // Phase 1: both learn concept A.
  for (int i = 0; i < 1500; ++i) {
    auto x = RandomX(&rng, 3);
    double y = TrueY(concept_a, x, &rng);
    adaptive.Observe(x, y);
    frozen.Update(x, y);
  }
  // Phase 2: the world changes; only the adaptive model keeps learning
  // (the frozen one is deployed as-is, the paper's "AI/ML layer on top").
  double adaptive_err = 0, frozen_err = 0;
  int tail = 0;
  for (int i = 0; i < 3000; ++i) {
    auto x = RandomX(&rng, 3);
    double y = TrueY(concept_b, x, &rng);
    double a = adaptive.Observe(x, y);
    double f = std::fabs(frozen.Predict(x) - y);
    if (i >= 2000) {  // compare steady-state tail
      adaptive_err += a;
      frozen_err += f;
      ++tail;
    }
  }
  EXPECT_GE(adaptive.drift_resets(), 1u);
  EXPECT_LT(adaptive_err / tail, 0.2);
  EXPECT_GT(frozen_err / tail, 1.0);
}

TEST(AdaptiveModelTest, NoSpuriousResetsOnStationaryData) {
  Rng rng(17);
  std::vector<double> truth = {1.0, 1.0};
  AdaptiveModel adaptive(2, 0.05, PageHinkley(0.1, 30.0, 50));
  for (int i = 0; i < 5000; ++i) {
    auto x = RandomX(&rng, 2);
    adaptive.Observe(x, TrueY(truth, x, &rng));
  }
  EXPECT_EQ(adaptive.drift_resets(), 0u);
}

}  // namespace
}  // namespace deluge::ml
