#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stream/continuous_query.h"
#include "stream/operators.h"
#include "stream/scheduler.h"
#include "stream/tuple.h"

namespace deluge::stream {
namespace {

Tuple MakeTuple(Micros t, const std::string& key, double value,
                Space space = Space::kPhysical) {
  Tuple tup;
  tup.event_time = t;
  tup.key = key;
  tup.space = space;
  tup.Set("v", value);
  return tup;
}

// ----------------------------------------------------------------- Tuple

TEST(TupleTest, TypedGet) {
  Tuple t;
  t.Set("i", int64_t{42}).Set("d", 3.5).Set("s", std::string("x")).Set(
      "b", true);
  EXPECT_EQ(t.Get<int64_t>("i"), 42);
  EXPECT_EQ(t.Get<double>("d"), 3.5);
  EXPECT_EQ(t.Get<std::string>("s"), "x");
  EXPECT_EQ(t.Get<bool>("b"), true);
  EXPECT_FALSE(t.Get<double>("i").has_value());  // wrong type
  EXPECT_FALSE(t.Get<double>("missing").has_value());
}

TEST(TupleTest, GetNumericPromotesInt) {
  Tuple t;
  t.Set("i", int64_t{7});
  EXPECT_EQ(t.GetNumeric("i"), 7.0);
  t.Set("s", std::string("nope"));
  EXPECT_FALSE(t.GetNumeric("s").has_value());
}

// ------------------------------------------------------------- Operators

TEST(FilterOpTest, PassesMatching) {
  FilterOp op([](const Tuple& t) { return t.GetNumeric("v") > 5.0; });
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };
  op.Process(MakeTuple(0, "a", 3.0), emit);
  op.Process(MakeTuple(0, "a", 7.0), emit);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetNumeric("v"), 7.0);
}

TEST(MapOpTest, Transforms) {
  MapOp op([](const Tuple& t) {
    Tuple o = t;
    o.Set("v", t.GetNumeric("v").value_or(0) * 2);
    return o;
  });
  std::vector<Tuple> out;
  op.Process(MakeTuple(0, "a", 21.0),
             [&](const Tuple& t) { out.push_back(t); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetNumeric("v"), 42.0);
}

TEST(WindowAggregateTest, TumblingSumPerKey) {
  WindowAggregateOp op(1000, AggFn::kSum, "v");
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };
  op.Process(MakeTuple(100, "a", 1.0), emit);
  op.Process(MakeTuple(200, "a", 2.0), emit);
  op.Process(MakeTuple(300, "b", 10.0), emit);
  EXPECT_TRUE(out.empty());        // window still open
  op.Process(MakeTuple(1500, "a", 5.0), emit);  // watermark closes [0,1000)
  ASSERT_EQ(out.size(), 2u);
  // Keys in map order: a then b.
  EXPECT_EQ(out[0].key, "a");
  EXPECT_EQ(out[0].GetNumeric("agg"), 3.0);
  EXPECT_EQ(out[1].key, "b");
  EXPECT_EQ(out[1].GetNumeric("agg"), 10.0);
  op.Flush(emit);
  ASSERT_EQ(out.size(), 3u);  // the open [1000,2000) window for "a"
  EXPECT_EQ(out[2].GetNumeric("agg"), 5.0);
}

TEST(WindowAggregateTest, AggFunctions) {
  struct Case {
    AggFn fn;
    double expected;
  };
  for (const Case& c : {Case{AggFn::kCount, 3.0}, Case{AggFn::kSum, 9.0},
                        Case{AggFn::kAvg, 3.0}, Case{AggFn::kMin, 1.0},
                        Case{AggFn::kMax, 5.0}}) {
    WindowAggregateOp op(1000, c.fn, "v");
    std::vector<Tuple> out;
    Emit emit = [&](const Tuple& t) { out.push_back(t); };
    op.Process(MakeTuple(10, "k", 3.0), emit);
    op.Process(MakeTuple(20, "k", 1.0), emit);
    op.Process(MakeTuple(30, "k", 5.0), emit);
    op.Flush(emit);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].GetNumeric("agg"), c.expected) << int(c.fn);
  }
}

TEST(WindowAggregateTest, LateTuplesDropped) {
  WindowAggregateOp op(1000, AggFn::kCount, "v", /*allowed_lateness=*/0);
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };
  op.Process(MakeTuple(100, "a", 1.0), emit);
  op.Process(MakeTuple(2500, "a", 1.0), emit);  // closes [0,1000) and [1000,2000)
  size_t after_close = out.size();
  op.Process(MakeTuple(150, "a", 1.0), emit);  // late for closed window
  EXPECT_EQ(op.late_dropped(), 1u);
  EXPECT_EQ(out.size(), after_close);
}

TEST(WindowAggregateTest, LatenessToleranceKeepsWindowOpen) {
  WindowAggregateOp op(1000, AggFn::kCount, "v", /*allowed_lateness=*/1000);
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };
  op.Process(MakeTuple(100, "a", 1.0), emit);
  op.Process(MakeTuple(1500, "a", 1.0), emit);  // watermark only 500
  EXPECT_TRUE(out.empty());
  op.Process(MakeTuple(300, "a", 1.0), emit);  // accepted: window open
  EXPECT_EQ(op.late_dropped(), 0u);
  op.Flush(emit);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].GetNumeric("agg"), 2.0);  // [0,1000) got both tuples
}

TEST(WindowJoinTest, JoinsMatchingKeysWithinWindow) {
  // Side by field "side": 0 = sensor, 1 = profile.
  WindowJoinOp op(1000, [](const Tuple& t) {
    return int(t.Get<int64_t>("side").value_or(0));
  });
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };

  Tuple left = MakeTuple(100, "user1", 1.0);
  left.Set("side", int64_t{0}).Set("loc", std::string("hall"));
  Tuple right = MakeTuple(400, "user1", 2.0);
  right.Set("side", int64_t{1}).Set("name", std::string("Ana"));
  Tuple unrelated = MakeTuple(500, "user2", 3.0);
  unrelated.Set("side", int64_t{1});

  op.Process(left, emit);
  EXPECT_TRUE(out.empty());
  op.Process(right, emit);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "user1");
  EXPECT_EQ(out[0].Get<std::string>("loc"), "hall");
  EXPECT_EQ(out[0].Get<std::string>("name"), "Ana");
  op.Process(unrelated, emit);
  EXPECT_EQ(out.size(), 1u);
}

TEST(WindowJoinTest, ExpiredTuplesDoNotJoin) {
  WindowJoinOp op(1000, [](const Tuple& t) {
    return int(t.Get<int64_t>("side").value_or(0));
  });
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };
  Tuple left = MakeTuple(100, "k", 1.0);
  left.Set("side", int64_t{0});
  Tuple right = MakeTuple(5000, "k", 2.0);  // way past window
  right.Set("side", int64_t{1});
  op.Process(left, emit);
  op.Process(right, emit);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(op.buffered(), 1u);  // expired left was evicted
}

TEST(WindowJoinTest, ConflictingFieldGetsPrefixed) {
  WindowJoinOp op(1000, [](const Tuple& t) {
    return int(t.Get<int64_t>("side").value_or(0));
  });
  std::vector<Tuple> out;
  Tuple left = MakeTuple(0, "k", 1.0);
  left.Set("side", int64_t{0});
  Tuple right = MakeTuple(1, "k", 2.0);
  right.Set("side", int64_t{1});
  op.Process(left, [&](const Tuple& t) { out.push_back(t); });
  op.Process(right, [&](const Tuple& t) { out.push_back(t); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetNumeric("v"), 1.0);     // left wins the name
  EXPECT_EQ(out[0].GetNumeric("r_v"), 2.0);   // right prefixed
}

TEST(InterpolateOpTest, FillsGaps) {
  InterpolateOp op("v", /*max_gap=*/100, /*step=*/100);
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };
  op.Process(MakeTuple(0, "sensor", 0.0), emit);
  op.Process(MakeTuple(400, "sensor", 4.0), emit);
  // Expect: original@0, synth@100,200,300, original@400.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(op.synthesized(), 3u);
  EXPECT_EQ(out[1].GetNumeric("v"), 1.0);
  EXPECT_EQ(out[2].GetNumeric("v"), 2.0);
  EXPECT_EQ(out[3].GetNumeric("v"), 3.0);
  EXPECT_EQ(out[1].Get<bool>("interpolated"), true);
}

TEST(InterpolateOpTest, NoSynthesisWithinGap) {
  InterpolateOp op("v", 1000, 100);
  std::vector<Tuple> out;
  Emit emit = [&](const Tuple& t) { out.push_back(t); };
  op.Process(MakeTuple(0, "s", 0.0), emit);
  op.Process(MakeTuple(500, "s", 5.0), emit);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(op.synthesized(), 0u);
}

// ------------------------------------------------------- ContinuousQuery

TEST(ContinuousQueryTest, PipelineComposition) {
  ContinuousQuery q("q1", QosSpec{});
  std::vector<Tuple> out;
  q.Add(std::make_unique<FilterOp>(
           [](const Tuple& t) { return t.GetNumeric("v") > 0; }))
      .Add(std::make_unique<MapOp>([](const Tuple& t) {
        Tuple o = t;
        o.Set("v", *t.GetNumeric("v") * 10);
        return o;
      }))
      .Sink([&](const Tuple& t) { out.push_back(t); });

  q.Push(MakeTuple(0, "a", -1.0));
  q.Push(MakeTuple(0, "a", 2.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetNumeric("v"), 20.0);
  EXPECT_EQ(q.tuples_in(), 2u);
  EXPECT_EQ(q.tuples_out(), 1u);
}

TEST(ContinuousQueryTest, FlushDrainsWindows) {
  ContinuousQuery q("q2", QosSpec{});
  std::vector<Tuple> out;
  q.Add(std::make_unique<WindowAggregateOp>(1000, AggFn::kCount, "v"))
      .Sink([&](const Tuple& t) { out.push_back(t); });
  q.Push(MakeTuple(10, "k", 1.0));
  q.Push(MakeTuple(20, "k", 1.0));
  EXPECT_TRUE(out.empty());
  q.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetNumeric("agg"), 2.0);
}

// --------------------------------------------------------- StreamScheduler

class SchedulerTest : public ::testing::Test {
 protected:
  SimClock clock_;

  std::unique_ptr<ContinuousQuery> MakeQuery(
      const std::string& id, Micros deadline, Micros cost,
      QosClass cls = QosClass::kInteractive) {
    QosSpec qos;
    qos.deadline = deadline;
    qos.cls = cls;
    auto q = std::make_unique<ContinuousQuery>(id, qos, cost);
    q->Sink([](const Tuple&) {});
    return q;
  }
};

TEST_F(SchedulerTest, ProcessesEverythingOnce) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kFifo);
  auto q = MakeQuery("q", 1000, 10);
  sched.Register(q.get());
  for (int i = 0; i < 100; ++i) sched.Enqueue("q", MakeTuple(0, "k", 1.0));
  EXPECT_EQ(sched.RunUntilDrained(), 100u);
  EXPECT_EQ(sched.stats_for("q").processed, 100u);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(clock_.NowMicros(), 1000);  // 100 tuples * 10 us
}

TEST_F(SchedulerTest, UnknownQueryDropped) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kFifo);
  sched.Enqueue("ghost", MakeTuple(0, "k", 1.0));
  EXPECT_EQ(sched.dropped(), 1u);
  EXPECT_EQ(sched.RunUntilDrained(), 0u);
}

TEST_F(SchedulerTest, EdfPrefersUrgentQuery) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kEdf);
  auto urgent = MakeQuery("urgent", 100, 50);
  auto lax = MakeQuery("lax", 100000, 50);
  sched.Register(lax.get());
  sched.Register(urgent.get());
  // Backlog: many lax items enqueued before the urgent one.
  for (int i = 0; i < 50; ++i) sched.Enqueue("lax", MakeTuple(0, "k", 1.0));
  sched.Enqueue("urgent", MakeTuple(0, "k", 1.0));
  sched.RunUntilDrained();
  // EDF runs the urgent tuple first => its latency is one service time.
  EXPECT_LE(sched.stats_for("urgent").latency.max(), 50 + 1);
  EXPECT_EQ(sched.stats_for("urgent").deadline_misses, 0u);
}

TEST_F(SchedulerTest, FifoStarvesUrgentUnderBacklog) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kFifo);
  auto urgent = MakeQuery("urgent", 100, 50);
  auto lax = MakeQuery("lax", 100000, 50);
  sched.Register(lax.get());
  sched.Register(urgent.get());
  for (int i = 0; i < 50; ++i) sched.Enqueue("lax", MakeTuple(0, "k", 1.0));
  sched.Enqueue("urgent", MakeTuple(0, "k", 1.0));
  sched.RunUntilDrained();
  EXPECT_EQ(sched.stats_for("urgent").deadline_misses, 1u);
}

TEST_F(SchedulerTest, RoundRobinAlternates) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kRoundRobin);
  std::vector<std::string> order;
  QosSpec qos;
  ContinuousQuery a("a", qos, 1), b("b", qos, 1);
  a.Sink([&](const Tuple&) { order.push_back("a"); });
  b.Sink([&](const Tuple&) { order.push_back("b"); });
  sched.Register(&a);
  sched.Register(&b);
  for (int i = 0; i < 3; ++i) {
    sched.Enqueue("a", MakeTuple(0, "k", 1.0));
    sched.Enqueue("b", MakeTuple(0, "k", 1.0));
  }
  sched.RunUntilDrained();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST_F(SchedulerTest, SpaceAwarePrefersPhysicalTuples) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kClassAware);
  auto q = MakeQuery("virt", 1000000, 100);
  auto p = MakeQuery("phys", 1000000, 100);
  sched.Register(q.get());
  sched.Register(p.get());
  for (int i = 0; i < 20; ++i) {
    sched.Enqueue("virt", MakeTuple(0, "k", 1.0, Space::kVirtual));
  }
  sched.Enqueue("phys", MakeTuple(0, "k", 1.0, Space::kPhysical));
  sched.RunUntilDrained();
  // The physical tuple jumped the virtual backlog.
  EXPECT_LE(sched.stats_for("phys").latency.max(), 100 + 1);
}

TEST_F(SchedulerTest, WeightedFavoursHeavyQuery) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kWeighted);
  auto heavy = MakeQuery("heavy", 1000000, 10, QosClass::kRealtime);
  auto light = MakeQuery("light", 1000000, 10, QosClass::kBulk);
  sched.Register(light.get());
  sched.Register(heavy.get());
  clock_.Advance(10);  // non-zero ages
  for (int i = 0; i < 100; ++i) {
    sched.Enqueue("light", MakeTuple(0, "k", 1.0));
    sched.Enqueue("heavy", MakeTuple(0, "k", 1.0));
  }
  sched.RunUntilDrained();
  EXPECT_LT(sched.stats_for("heavy").latency.mean(),
            sched.stats_for("light").latency.mean());
}

TEST_F(SchedulerTest, TotalStatsAggregates) {
  StreamScheduler sched(&clock_, SchedulingPolicy::kFifo);
  auto a = MakeQuery("a", 1000, 10);
  auto b = MakeQuery("b", 1000, 10);
  sched.Register(a.get());
  sched.Register(b.get());
  sched.Enqueue("a", MakeTuple(0, "k", 1.0));
  sched.Enqueue("b", MakeTuple(0, "k", 1.0));
  sched.RunUntilDrained();
  EXPECT_EQ(sched.TotalStats().processed, 2u);
}

}  // namespace
}  // namespace deluge::stream
