#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "privacy/dp.h"
#include "privacy/federated.h"
#include "privacy/incentive.h"

namespace deluge::privacy {
namespace {

// ----------------------------------------------------------- PrivacyBudget

TEST(PrivacyBudgetTest, ChargesUntilExhausted) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.Charge(0.4).ok());
  EXPECT_TRUE(budget.Charge(0.6).ok());
  EXPECT_TRUE(budget.Charge(0.01).IsResourceExhausted());
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
}

TEST(PrivacyBudgetTest, RejectsNonPositiveEpsilon) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.Charge(0.0).IsInvalidArgument());
  EXPECT_TRUE(budget.Charge(-1.0).IsInvalidArgument());
}

// -------------------------------------------------------- LaplaceMechanism

TEST(LaplaceTest, NoiseScalesInverselyWithEpsilon) {
  LaplaceMechanism mech(1.0, 7);
  auto mad = [&](double eps) {
    double sum = 0;
    for (int i = 0; i < 20000; ++i) sum += std::fabs(mech.SampleNoise(eps));
    return sum / 20000;
  };
  double tight = mad(10.0);  // mean |noise| = b = 1/eps
  double loose = mad(0.1);
  EXPECT_NEAR(tight, 0.1, 0.02);
  EXPECT_NEAR(loose, 10.0, 2.0);
}

TEST(LaplaceTest, ReleaseChargesBudget) {
  LaplaceMechanism mech(1.0, 7);
  PrivacyBudget budget(0.5);
  auto r = mech.Release(100.0, 0.5, &budget);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(mech.Release(100.0, 0.5, &budget).status()
                  .IsResourceExhausted());
}

TEST(LaplaceTest, NoiseIsUnbiased) {
  LaplaceMechanism mech(1.0, 13);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) sum += mech.SampleNoise(1.0);
  EXPECT_NEAR(sum / 50000, 0.0, 0.05);
}

// ------------------------------------------------------ RandomizedResponse

TEST(RandomizedResponseTest, HighEpsilonMostlyTruthful) {
  RandomizedResponse rr(5.0, 3);
  int truthful = 0;
  for (int i = 0; i < 1000; ++i) truthful += rr.Respond(true);
  EXPECT_GT(truthful, 950);
}

TEST(RandomizedResponseTest, EstimatorDebiases) {
  RandomizedResponse rr(1.0, 9);
  const double true_fraction = 0.3;
  Rng rng(5);
  int yes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    bool truth = rng.Bernoulli(true_fraction);
    yes += rr.Respond(truth);
  }
  double estimate = rr.EstimateTrueFraction(double(yes) / n);
  EXPECT_NEAR(estimate, true_fraction, 0.02);
}

// -------------------------------------------------------------- DpHistogram

TEST(DpHistogramTest, NoisyCountsNearTruth) {
  DpHistogram hist(4, 11);
  for (int i = 0; i < 1000; ++i) hist.Add(size_t(i % 4));
  PrivacyBudget budget(1.0);
  auto noisy = hist.Release(1.0, &budget);
  ASSERT_TRUE(noisy.ok());
  for (double c : noisy.value()) EXPECT_NEAR(c, 250.0, 30.0);
}

TEST(DpHistogramTest, OutOfRangeBucketIgnored) {
  DpHistogram hist(2);
  hist.Add(99);
  EXPECT_EQ(hist.raw_counts()[0] + hist.raw_counts()[1], 0u);
}

// --------------------------------------------------------------- Federated

TEST(FederationTest, SynthesizeShapes) {
  FederationConfig config;
  config.num_clients = 5;
  config.dim = 4;
  config.rows_per_client = 20;
  Federation fed = Federation::Synthesize(config);
  EXPECT_EQ(fed.clients.size(), 5u);
  EXPECT_EQ(fed.true_weights.size(), 4u);
  for (const auto& c : fed.clients) {
    EXPECT_EQ(c.size(), 20u);
    EXPECT_EQ(c.xs[0].size(), 4u);
  }
}

TEST(FedAvgTest, ConvergesOnIidData) {
  FederationConfig config;
  config.num_clients = 8;
  config.noniid_skew = 0.0;
  Federation fed = Federation::Synthesize(config);
  FederatedAveraging::Options opts;
  FederatedAveraging fedavg(&fed, opts);
  double initial = fedavg.GlobalLoss();
  for (int round = 0; round < 30; ++round) fedavg.Round();
  EXPECT_LT(fedavg.GlobalLoss(), initial * 0.1);
  EXPECT_LT(fedavg.DistanceToTruth(), 0.2);
  EXPECT_EQ(fedavg.rounds_completed(), 30u);
}

TEST(FedAvgTest, NonIidConvergesSlower) {
  auto final_distance = [](double skew) {
    FederationConfig config;
    config.num_clients = 8;
    config.noniid_skew = skew;
    config.seed = 21;
    Federation fed = Federation::Synthesize(config);
    FederatedAveraging::Options opts;
    opts.learning_rate = 0.005;
    FederatedAveraging fedavg(&fed, opts);
    for (int round = 0; round < 10; ++round) fedavg.Round();
    return fedavg.DistanceToTruth();
  };
  // Heavier skew => farther from truth after the same budget.
  EXPECT_LT(final_distance(0.0), final_distance(3.0));
}

TEST(FedAvgTest, UpdateNoiseDegradesAccuracy) {
  FederationConfig config;
  Federation fed = Federation::Synthesize(config);
  FederatedAveraging::Options clean_opts;
  FederatedAveraging clean(&fed, clean_opts);
  FederatedAveraging::Options noisy_opts;
  noisy_opts.update_noise_stddev = 0.5;
  FederatedAveraging noisy(&fed, noisy_opts);
  for (int r = 0; r < 20; ++r) {
    clean.Round();
    noisy.Round();
  }
  EXPECT_LT(clean.DistanceToTruth(), noisy.DistanceToTruth());
}

TEST(FedAvgTest, ZeroWeightClientExcluded) {
  FederationConfig config;
  config.num_clients = 2;
  Federation fed = Federation::Synthesize(config);
  // Corrupt client 1's labels entirely.
  for (auto& y : fed.clients[1].ys) y = 1e6;
  FederatedAveraging::Options opts;
  FederatedAveraging fedavg(&fed, opts);
  std::vector<double> weights = {1.0, 0.0};
  for (int r = 0; r < 20; ++r) fedavg.Round(weights);
  // Excluding the poisoned client still recovers the truth.
  EXPECT_LT(fedavg.DistanceToTruth(), 0.3);
}

// ---------------------------------------------------------- IncentiveScorer

TEST(IncentiveTest, ShapleyAdditivityOnLinearUtility) {
  // Utility = sum of per-client values: Shapley must recover them.
  std::vector<double> values = {1.0, 5.0, 0.0, 2.0};
  IncentiveScorer scorer(4, [&](const std::vector<size_t>& coalition) {
    double u = 0;
    for (size_t c : coalition) u += values[c];
    return u;
  });
  auto shapley = scorer.ShapleyApprox(200, 3);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(shapley[i], values[i], 1e-9);
}

TEST(IncentiveTest, LeaveOneOutMatchesLinearUtility) {
  std::vector<double> values = {3.0, 1.0};
  IncentiveScorer scorer(2, [&](const std::vector<size_t>& coalition) {
    double u = 0;
    for (size_t c : coalition) u += values[c];
    return u;
  });
  auto loo = scorer.LeaveOneOut();
  EXPECT_NEAR(loo[0], 3.0, 1e-9);
  EXPECT_NEAR(loo[1], 1.0, 1e-9);
}

TEST(IncentiveTest, FreeRiderDetectedInFederation) {
  FederationConfig config;
  config.num_clients = 4;
  config.rows_per_client = 80;
  config.seed = 31;
  Federation fed = Federation::Synthesize(config);
  // Client 3 is a free rider: garbage data (no signal).
  Rng rng(41);
  for (auto& y : fed.clients[3].ys) y = rng.UniformDouble(-100, 100);

  IncentiveScorer scorer(4, [&](const std::vector<size_t>& coalition) {
    if (coalition.empty()) return -1e3;
    // Train FedAvg on just this coalition and score by negative loss on
    // the honest clients' data.
    Federation sub;
    sub.true_weights = fed.true_weights;
    for (size_t c : coalition) sub.clients.push_back(fed.clients[c]);
    FederatedAveraging::Options opts;
    FederatedAveraging fa(&sub, opts);
    for (int r = 0; r < 5; ++r) fa.Round();
    double loss = 0;
    for (size_t c = 0; c < 3; ++c) loss += fa.LossOn(fed.clients[c]);
    return -loss;
  });
  auto scores = scorer.LeaveOneOut();
  // The free rider's marginal contribution is the smallest.
  EXPECT_EQ(std::min_element(scores.begin(), scores.end()) - scores.begin(),
            3);
  auto flagged = IncentiveScorer::FlagFreeRiders(scores);
  EXPECT_TRUE(std::find(flagged.begin(), flagged.end(), 3u) != flagged.end());
}

TEST(IncentiveTest, FlagFreeRidersEdgeCases) {
  EXPECT_TRUE(IncentiveScorer::FlagFreeRiders({}).empty());
  EXPECT_TRUE(IncentiveScorer::FlagFreeRiders({-1.0, -2.0}).empty());
  auto flagged = IncentiveScorer::FlagFreeRiders({10.0, 10.0, 0.1});
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 2u);
}

}  // namespace
}  // namespace deluge::privacy
