// E10 — Section IV-G: moving queries over moving objects.
//
// Claim validated: incremental maintenance with safe regions answers
// continuous range queries with an order of magnitude fewer index visits
// than periodic re-evaluation, at identical results — and the advantage
// shrinks as queries/objects move faster (safe regions expire sooner).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "common/rng.h"
#include "query/moving_query.h"

namespace {

using namespace deluge;         // NOLINT
using namespace deluge::query;  // NOLINT

const geo::AABB kWorld({0, 0, 0}, {10000, 10000, 100});

void BM_MovingQueries(benchmark::State& state) {
  const MovingQueryStrategy strategy = MovingQueryStrategy(state.range(0));
  const double speed = double(state.range(1));  // focal/object speed m/s
  Rng rng(13);

  index::MovingObjectIndex index(kWorld, 100.0, std::max(speed, 1.0));
  for (index::EntityId id = 0; id < 20000; ++id) {
    geo::MotionState s;
    s.position = {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000),
                  50};
    s.velocity = {rng.UniformDouble(-speed, speed),
                  rng.UniformDouble(-speed, speed), 0};
    s.t = 0;
    index.Upsert(id, s);
  }

  // 64 continuous queries with moving focal points.
  std::vector<ContinuousRangeQuery> queries;
  queries.reserve(64);
  for (int q = 0; q < 64; ++q) {
    queries.emplace_back(&index, 150.0, strategy, /*slack=*/100.0);
    geo::MotionState focus;
    focus.position = {rng.UniformDouble(1000, 9000),
                      rng.UniformDouble(1000, 9000), 50};
    focus.velocity = {rng.UniformDouble(-speed, speed),
                      rng.UniformDouble(-speed, speed), 0};
    focus.t = 0;
    queries.back().UpdateFocus(focus);
  }

  Micros now = 0;
  uint64_t evaluations = 0, result_total = 0;
  for (auto _ : state) {
    now += 200 * kMicrosPerMilli;  // 5 Hz refresh
    for (auto& q : queries) {
      result_total += q.Evaluate(now).size();
      ++evaluations;
    }
  }
  uint64_t index_visits = 0;
  for (const auto& q : queries) index_visits += q.index_queries();
  state.SetItemsProcessed(int64_t(evaluations));
  state.counters["strategy"] = double(state.range(0));  // 0=reeval, 1=incr
  state.counters["speed_mps"] = speed;
  state.counters["index_visits_pct"] =
      100.0 * double(index_visits) / double(std::max<uint64_t>(1, evaluations));
  benchmark::DoNotOptimize(result_total);
}
// Args: {strategy, speed}.
BENCHMARK(BM_MovingQueries)
    ->Args({0, 1})->Args({1, 1})
    ->Args({0, 5})->Args({1, 5})
    ->Args({0, 20})->Args({1, 20})
    ->Unit(benchmark::kMillisecond);

// Update avoidance: how many fewer index updates the TPR-style motion
// index needs vs re-indexing every tick.
void BM_MotionIndexUpdateSavings(benchmark::State& state) {
  const bool motion_aware = state.range(0) == 1;
  Rng rng(17);
  const size_t kEntities = 20000;
  index::MovingObjectIndex index(kWorld, 100.0, 10.0);
  std::vector<geo::MotionState> states(kEntities);
  for (index::EntityId id = 0; id < kEntities; ++id) {
    states[id].position = {rng.UniformDouble(0, 10000),
                           rng.UniformDouble(0, 10000), 50};
    states[id].velocity = {rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5),
                           0};
    states[id].t = 0;
    index.Upsert(id, states[id]);
  }
  Micros now = 0;
  uint64_t index_updates = 0, queries = 0;
  for (auto _ : state) {
    now += kMicrosPerSecond;
    if (motion_aware) {
      // Refresh only every 30 s (velocity predicts in between).
      if (now % (30 * kMicrosPerSecond) == 0) {
        for (index::EntityId id = 0; id < kEntities; ++id) {
          states[id].position = states[id].PositionAt(now);
          states[id].t = now;
          index.Upsert(id, states[id]);
          ++index_updates;
        }
      }
    } else {
      for (index::EntityId id = 0; id < kEntities; ++id) {
        states[id].position = states[id].PositionAt(now);
        states[id].t = now;
        index.Upsert(id, states[id]);
        ++index_updates;
      }
    }
    geo::Vec3 c{rng.UniformDouble(1000, 9000), rng.UniformDouble(1000, 9000),
                50};
    auto hits = index.RangeAt(geo::AABB::Cube(c, 200), now);
    benchmark::DoNotOptimize(hits.data());
    ++queries;
  }
  state.counters["motion_aware"] = double(state.range(0));
  state.counters["updates_per_tick"] =
      double(index_updates) / double(std::max<uint64_t>(1, queries));
}
BENCHMARK(BM_MotionIndexUpdateSavings)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
