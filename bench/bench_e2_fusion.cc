// E2 — Section IV-A: multi-source fusion accuracy and throughput.
//
// Claims validated: (a) fused estimates beat the best single source's
// accuracy (truth discovery downweights bad sources); (b) streaming
// fusion throughput scales with source count.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cmath>

#include "common/rng.h"
#include "fusion/event_detector.h"
#include "fusion/fuser.h"

namespace {

using namespace deluge;          // NOLINT
using namespace deluge::fusion;  // NOLINT

// Accuracy: RMSE of fused vs best-single-source over a noisy federation
// of sources, one of which is systematically bad.
void BM_TruthDiscoveryAccuracy(benchmark::State& state) {
  const int sources = int(state.range(0));
  Rng rng(17);
  const size_t kItems = 200;
  std::vector<double> truth(kItems);
  for (auto& t : truth) t = rng.UniformDouble(0, 100);

  std::vector<TruthDiscovery::Claim> claims;
  for (size_t i = 0; i < kItems; ++i) {
    for (int s = 0; s < sources; ++s) {
      // A majority of sources are good (sigma 1); every third is bad
      // with increasing severity — the realistic deployment mix where
      // truth discovery is identifiable.
      double sigma = (s % 3 == 2) ? 5.0 + 5.0 * (s % 4) : 1.0;
      claims.push_back({uint32_t(s), i, truth[i] + rng.Gaussian(0, sigma)});
    }
  }

  TruthDiscovery::Solution sol;
  for (auto _ : state) {
    sol = TruthDiscovery::Solve(claims, kItems);
    benchmark::DoNotOptimize(sol.truths.data());
  }

  auto rmse_source = [&](uint32_t sid) {
    double sum = 0;
    size_t n = 0;
    for (const auto& c : claims) {
      if (c.source_id != sid) continue;
      sum += (c.value - truth[c.item]) * (c.value - truth[c.item]);
      ++n;
    }
    return std::sqrt(sum / double(n));
  };
  double best_single = 1e18;
  for (int s = 0; s < sources; ++s) {
    best_single = std::min(best_single, rmse_source(uint32_t(s)));
  }
  double fused = 0;
  for (size_t i = 0; i < kItems; ++i) {
    fused += (sol.truths[i] - truth[i]) * (sol.truths[i] - truth[i]);
  }
  fused = std::sqrt(fused / double(kItems));

  state.counters["sources"] = sources;
  state.counters["rmse_fused"] = fused;
  state.counters["rmse_best_single"] = best_single;
  state.counters["improvement_x"] = best_single / fused;
}
BENCHMARK(BM_TruthDiscoveryAccuracy)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Throughput: streaming EntityFuser ingest rate vs source count.
void BM_StreamingFusionThroughput(benchmark::State& state) {
  const int sources = int(state.range(0));
  FuserOptions opts;
  opts.window = 2 * kMicrosPerSecond;
  EntityFuser fuser(opts);
  Rng rng(23);
  Micros t = 0;
  uint64_t observations = 0;
  for (auto _ : state) {
    t += kMicrosPerMilli;
    for (int s = 0; s < sources; ++s) {
      Observation obs;
      obs.entity = "entity" + std::to_string(rng.Uniform(100));
      obs.source_id = uint32_t(s);
      obs.type = SourceType(s % 5);
      obs.t = t;
      obs.position = {rng.UniformDouble(0, 100), rng.UniformDouble(0, 100),
                      0};
      obs.has_position = true;
      fuser.Add(obs);
      ++observations;
    }
  }
  state.SetItemsProcessed(int64_t(observations));
  state.counters["sources"] = sources;
  state.counters["obs_per_s"] =
      benchmark::Counter(double(observations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamingFusionThroughput)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// Corroboration latency/selectivity of the event detector.
void BM_EventDetection(benchmark::State& state) {
  EventDetector detector;
  uint64_t fired = 0;
  EventRule rule;
  rule.name = "corroborated-move";
  rule.min_source_types = 2;
  rule.window = kMicrosPerSecond;
  detector.AddRule(rule, [&](const DetectedEvent&) { ++fired; });
  Rng rng(31);
  Micros t = 0;
  uint64_t ingested = 0;
  for (auto _ : state) {
    t += kMicrosPerMilli;
    Observation obs;
    obs.entity = "e" + std::to_string(rng.Uniform(50));
    obs.source_id = uint32_t(rng.Uniform(8));
    obs.type = SourceType(rng.Uniform(5));
    obs.t = t;
    detector.Ingest(obs);
    ++ingested;
  }
  state.SetItemsProcessed(int64_t(ingested));
  state.counters["events_per_1k_obs"] =
      1000.0 * double(fired) / double(std::max<uint64_t>(1, ingested));
}
BENCHMARK(BM_EventDetection)->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
