// E18 — sharded parallel ingest + fan-out (Fig. 7's parallelized
// serving tier applied to the Fig. 1 loop).
//
// Claims validated: (a) partitioning the engine's hot path — hash-grid
// update, coherency check, broker fan-out — into spatial shards driven
// from a thread pool scales ingest+dissemination throughput with cores
// (the single-threaded engine is the baseline); (b) batching amortizes
// queue locking and cell lookups, so bigger flush batches win even at a
// fixed shard count; (c) parallelism preserves determinism: summed
// per-shard EngineStats are byte-identical to the single-threaded
// engine fed the same input.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/engine.h"
#include "core/parallel_engine.h"
#include "core/sensors.h"

// --- allocation accounting ----------------------------------------------
//
// Replaces the binary's global new/delete with a counting malloc shim so
// BM_ShardRoutingAllocFree below can assert the routing hot path
// (ShardOf / ShardsCovering) performs zero heap allocations.  The
// counter is thread-local: shard worker threads allocating in other
// benchmarks never perturb the measuring thread's count.
namespace {
thread_local uint64_t g_thread_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace deluge;        // NOLINT
using namespace deluge::core;  // NOLINT

constexpr size_t kEntities = 20000;
constexpr size_t kWatchers = 64;
constexpr size_t kTicks = 20;  // pre-generated input, replayed cyclically

const geo::AABB kWorld({0, 0, 0}, {5000, 5000, 100});

EngineOptions BaseOptions() {
  EngineOptions opts;
  opts.world_bounds = kWorld;
  opts.default_contract = {2.0, kMicrosPerSecond};
  return opts;
}

/// The identical input every variant replays: kTicks sensor sweeps over
/// the same seeded fleet.
struct Workload {
  std::vector<Entity> entities;
  std::vector<std::vector<SensedUpdate>> batches;  // one per tick
};

const Workload& SharedWorkload() {
  static const Workload* w = [] {
    auto* out = new Workload();
    SensorFleetOptions fleet_opts;
    fleet_opts.num_entities = kEntities;
    fleet_opts.max_speed = 5.0;
    SensorFleet fleet(kWorld, fleet_opts);
    for (EntityId id = 1; id <= kEntities; ++id) {
      Entity e;
      e.id = id;
      e.position = fleet.TruePosition(id);
      out->entities.push_back(e);
    }
    Micros now = 0;
    for (size_t tick = 0; tick < kTicks; ++tick) {
      now += 100 * kMicrosPerMilli;
      std::vector<SensedUpdate> batch;
      for (const auto& r : fleet.Tick(100 * kMicrosPerMilli, now)) {
        batch.push_back({r.entity, r.position, r.t});
      }
      out->batches.push_back(std::move(batch));
    }
    return out;
  }();
  return *w;
}

/// A grid of regional watchers covering the world — the fan-out load.
/// Delivery volume is read off broker stats; the callback itself must
/// be thread-safe (shard tasks fire it concurrently), so it does no
/// shared-state work.
template <typename Engine>
void AddWatchers(Engine& engine) {
  size_t per_axis = 8;  // 8x8 = kWatchers regions
  double span_x = (kWorld.max.x - kWorld.min.x) / double(per_axis);
  double span_y = (kWorld.max.y - kWorld.min.y) / double(per_axis);
  for (size_t i = 0; i < kWatchers; ++i) {
    size_t gx = i % per_axis, gy = i / per_axis;
    geo::AABB region({kWorld.min.x + double(gx) * span_x,
                      kWorld.min.y + double(gy) * span_y, kWorld.min.z},
                     {kWorld.min.x + double(gx + 1) * span_x,
                      kWorld.min.y + double(gy + 1) * span_y, kWorld.max.z});
    engine.WatchRegion(net::NodeId(100 + i), region,
                       [](net::NodeId node, const pubsub::Event& event) {
                         benchmark::DoNotOptimize(node);
                         benchmark::DoNotOptimize(&event);
                       });
  }
}

// ---------------------------------------------------------------- baseline

void BM_SingleThreadIngestFanout(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  SimClock clock;
  CoSpaceEngine engine(BaseOptions(), &clock);
  for (const Entity& e : w.entities) engine.SpawnPhysical(e);
  AddWatchers(engine);

  uint64_t updates = 0;
  size_t tick = 0;
  for (auto _ : state) {
    const auto& batch = w.batches[tick++ % w.batches.size()];
    for (const SensedUpdate& u : batch) {
      engine.IngestPhysicalPosition(u.id, u.position, u.t);
    }
    updates += batch.size();
  }
  state.SetItemsProcessed(int64_t(updates));
  state.counters["updates_per_s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
  state.counters["mirrored_pct"] =
      100.0 * double(engine.stats().mirrored_updates) /
      double(std::max<uint64_t>(1, engine.stats().physical_updates));
  state.counters["deliveries"] = double(engine.broker().stats().deliveries);
}
BENCHMARK(BM_SingleThreadIngestFanout)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- sharded

void BM_ShardedIngestFanout(benchmark::State& state) {
  const size_t shards = size_t(state.range(0));
  const Workload& w = SharedWorkload();
  SimClock clock;
  ThreadPool pool(shards);
  ParallelEngineOptions opts;
  opts.engine = BaseOptions();
  opts.num_shards = shards;
  ParallelEngine engine(opts, shards > 1 ? &pool : nullptr, &clock);
  for (const Entity& e : w.entities) engine.SpawnPhysical(e);
  AddWatchers(engine);

  uint64_t updates = 0;
  size_t tick = 0;
  for (auto _ : state) {
    const auto& batch = w.batches[tick++ % w.batches.size()];
    engine.IngestBatch(batch);
    updates += batch.size();
  }
  state.SetItemsProcessed(int64_t(updates));
  state.counters["shards"] = double(shards);
  state.counters["updates_per_s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
  EngineStats stats = engine.TotalStats();
  state.counters["mirrored_pct"] =
      100.0 * double(stats.mirrored_updates) /
      double(std::max<uint64_t>(1, stats.physical_updates));
  state.counters["deliveries"] = double(engine.TotalBrokerStats().deliveries);
}
BENCHMARK(BM_ShardedIngestFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ------------------------------------------------------------- batching win

// Same shard count, same input — only the flush batch size varies.  The
// per-batch pipeline cost (task dispatch, lock acquisitions, outbox
// swaps) amortizes across the batch.
void BM_IngestBatchSize(benchmark::State& state) {
  const size_t batch_size = size_t(state.range(0));
  const Workload& w = SharedWorkload();
  SimClock clock;
  ThreadPool pool(4);
  ParallelEngineOptions opts;
  opts.engine = BaseOptions();
  opts.num_shards = 4;
  ParallelEngine engine(opts, &pool, &clock);
  for (const Entity& e : w.entities) engine.SpawnPhysical(e);

  uint64_t updates = 0;
  size_t tick = 0;
  for (auto _ : state) {
    const auto& batch = w.batches[tick++ % w.batches.size()];
    for (size_t off = 0; off < batch.size(); off += batch_size) {
      size_t len = std::min(batch_size, batch.size() - off);
      engine.IngestBatch(std::span<const SensedUpdate>(&batch[off], len));
    }
    updates += batch.size();
  }
  state.SetItemsProcessed(int64_t(updates));
  state.counters["batch"] = double(batch_size);
  state.counters["updates_per_s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestBatchSize)
    ->Arg(1)
    ->Arg(64)
    ->Arg(4096)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ------------------------------------------------------- alloc-free routing

// ShardOf runs once per ingested update and ShardsCovering once per
// watch registration; both must stay off the heap (results return into
// a caller-owned SmallVec).  The new/delete shim above counts this
// thread's allocations across a full sweep of both calls — any nonzero
// count fails the benchmark.
void BM_ShardRoutingAllocFree(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  SpatialSharder sharder(kWorld, 25.0, 8);
  size_t per_axis = 8;
  double span_x = (kWorld.max.x - kWorld.min.x) / double(per_axis);
  double span_y = (kWorld.max.y - kWorld.min.y) / double(per_axis);

  uint64_t queries = 0;
  uint64_t allocs = 0;
  SpatialSharder::ShardList covering;
  for (auto _ : state) {
    const uint64_t before = g_thread_allocs;
    size_t acc = 0;
    for (const auto& batch : w.batches) {
      for (const SensedUpdate& u : batch) {
        acc += sharder.ShardOf(u.position);
        ++queries;
      }
    }
    for (size_t i = 0; i < kWatchers; ++i) {
      size_t gx = i % per_axis, gy = i / per_axis;
      geo::AABB region({kWorld.min.x + double(gx) * span_x,
                        kWorld.min.y + double(gy) * span_y, kWorld.min.z},
                       {kWorld.min.x + double(gx + 1) * span_x,
                        kWorld.min.y + double(gy + 1) * span_y, kWorld.max.z});
      covering.clear();
      sharder.ShardsCovering(region, &covering);
      acc += covering.size();
      ++queries;
    }
    benchmark::DoNotOptimize(acc);
    allocs += g_thread_allocs - before;
  }
  state.SetItemsProcessed(int64_t(queries));
  state.counters["allocs"] = double(allocs);
  if (allocs != 0) {
    state.SkipWithError("shard routing allocated on the hot path");
  }
}
BENCHMARK(BM_ShardRoutingAllocFree)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- determinism

// The 4-shard engine and the single-threaded engine replay the same
// input; every EngineStats field must match byte-for-byte.
void BM_ShardedDeterminism(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  bool stats_match = true;
  for (auto _ : state) {
    SimClock clock;
    CoSpaceEngine serial(BaseOptions(), &clock);
    ThreadPool pool(4);
    ParallelEngineOptions opts;
    opts.engine = BaseOptions();
    opts.num_shards = 4;
    ParallelEngine sharded(opts, &pool, &clock);
    for (const Entity& e : w.entities) {
      serial.SpawnPhysical(e);
      sharded.SpawnPhysical(e);
    }
    for (const auto& batch : w.batches) {
      for (const SensedUpdate& u : batch) {
        serial.IngestPhysicalPosition(u.id, u.position, u.t);
      }
      sharded.IngestBatch(batch);
    }
    EngineStats a = serial.stats();
    EngineStats b = sharded.TotalStats();
    stats_match = stats_match && a.physical_updates == b.physical_updates &&
                  a.mirrored_updates == b.mirrored_updates &&
                  a.suppressed_updates == b.suppressed_updates &&
                  a.events_published == b.events_published;
  }
  state.counters["stats_match"] = stats_match ? 1.0 : 0.0;
}
BENCHMARK(BM_ShardedDeterminism)->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
