// E9 — Section IV-F: spatial index ablation under update-intensive
// moving-object workloads.
//
// Claim validated: no single structure wins everywhere.  The grid and the
// Morton-keyed B+-tree (ST2B-style, [22]) dominate on updates; the R-tree
// is competitive on range queries but pays bounding-box maintenance on
// every move — which is exactly why the paper calls for update-friendly
// indexes for the metaverse's moving entities.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <memory>

#include "common/rng.h"
#include "index/grid_index.h"
#include "index/morton_index.h"
#include "index/rtree.h"

namespace {

using namespace deluge;         // NOLINT
using namespace deluge::index;  // NOLINT

const geo::AABB kWorld({0, 0, 0}, {10000, 10000, 100});

std::unique_ptr<SpatialIndex> MakeIndex(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<GridIndex>(kWorld, 100.0);
    case 1:
      return std::make_unique<RTree>(16);
    default:
      return std::make_unique<MortonIndex>(kWorld, 256);
  }
}

// Mixed workload: `update_pct`% position updates, rest range queries.
void BM_MixedWorkload(benchmark::State& state) {
  const int kind = int(state.range(0));
  const int update_pct = int(state.range(1));
  auto index = MakeIndex(kind);
  Rng rng(7);
  const size_t kEntities = 50000;
  std::vector<geo::Vec3> positions(kEntities);
  for (EntityId id = 0; id < kEntities; ++id) {
    positions[id] = {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000),
                     50};
    index->Insert(id, positions[id]);
  }
  uint64_t ops = 0, results = 0;
  for (auto _ : state) {
    if (rng.Uniform(100) < uint64_t(update_pct)) {
      EntityId id = rng.Uniform(kEntities);
      positions[id] += {rng.UniformDouble(-10, 10),
                        rng.UniformDouble(-10, 10), 0};
      index->Update(id, positions[id]);
    } else {
      geo::Vec3 c{rng.UniformDouble(500, 9500), rng.UniformDouble(500, 9500),
                  50};
      auto hits = index->Range(geo::AABB::Cube(c, 200));
      results += hits.size();
    }
    ++ops;
  }
  state.SetItemsProcessed(int64_t(ops));
  state.SetLabel(index->name());
  state.counters["kind"] = double(kind);
  state.counters["update_pct"] = double(update_pct);
  benchmark::DoNotOptimize(results);
}
// Args: {index kind (0=grid, 1=rtree, 2=morton), update %}.
BENCHMARK(BM_MixedWorkload)
    ->Args({0, 95})->Args({1, 95})->Args({2, 95})
    ->Args({0, 50})->Args({1, 50})->Args({2, 50})
    ->Args({0, 5})->Args({1, 5})->Args({2, 5})
    ->Unit(benchmark::kMicrosecond);

// Pure k-NN performance.
void BM_Knn(benchmark::State& state) {
  const int kind = int(state.range(0));
  auto index = MakeIndex(kind);
  Rng rng(9);
  for (EntityId id = 0; id < 50000; ++id) {
    index->Insert(id, {rng.UniformDouble(0, 10000),
                       rng.UniformDouble(0, 10000), 50});
  }
  for (auto _ : state) {
    geo::Vec3 q{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000), 50};
    auto hits = index->Nearest(q, 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetLabel(index->name());
  state.counters["kind"] = double(kind);
}
BENCHMARK(BM_Knn)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Skewed placement (everyone crowds the mall entrance): grid cells
// overflow while trees adapt.
void BM_SkewedRange(benchmark::State& state) {
  const int kind = int(state.range(0));
  auto index = MakeIndex(kind);
  Rng rng(11);
  for (EntityId id = 0; id < 50000; ++id) {
    // 90% of entities inside one 200 m hotspot.
    geo::Vec3 p = rng.Bernoulli(0.9)
                      ? geo::Vec3{5000 + rng.Gaussian(0, 60),
                                  5000 + rng.Gaussian(0, 60), 50}
                      : geo::Vec3{rng.UniformDouble(0, 10000),
                                  rng.UniformDouble(0, 10000), 50};
    index->Insert(id, p);
  }
  for (auto _ : state) {
    auto hits = index->Range(geo::AABB::Cube({5000, 5000, 50}, 100));
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetLabel(index->name());
  state.counters["kind"] = double(kind);
}
BENCHMARK(BM_SkewedRange)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
