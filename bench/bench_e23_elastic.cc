// E23 — elastic shard rebalancing under skewed load (ROADMAP item 3).
//
// Claims validated: (a) under flash-crowd skew the static Z-order
// striping melts its hot shard while the elastic rebalancer — per-tile
// EWMA load feeding contiguous-Morton-range reassignment — keeps
// per-shard load imbalance (max/mean) near 1 and throughput within 20%
// of the uniform-load baseline even at 10× skew; (b) migration pauses
// are bounded and rare (pause-time percentiles reported from the
// `elastic.migration_us` histogram); (c) the handoff protocol is
// *exact*: per-(watcher, entity) delivery hash chains from an elastic
// run with forced migrations match a single-threaded serial run
// byte-for-byte — no delivery dropped, duplicated, or reordered — and
// summed EngineStats stay byte-identical to the serial engine.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/engine.h"
#include "core/parallel_engine.h"
#include "core/workloads.h"

namespace {

using namespace deluge;        // NOLINT
using namespace deluge::core;  // NOLINT

constexpr size_t kEntities = 20000;
constexpr size_t kShards = 8;
constexpr size_t kWatchers = 64;
constexpr size_t kTicks = 30;  // pre-generated input, replayed cyclically
constexpr Micros kTickDt = 100 * kMicrosPerMilli;

const geo::AABB kWorld({0, 0, 0}, {5000, 5000, 100});

EngineOptions BaseOptions() {
  EngineOptions opts;
  opts.world_bounds = kWorld;
  // Tight bound: per-tick motion (~0.5 m) exceeds it, so nearly every
  // update mirrors and fans out — work is proportional to update count
  // and shard imbalance translates directly into lost throughput.
  opts.default_contract = {0.25, kMicrosPerSecond};
  return opts;
}

ElasticOptions Elastic() {
  ElasticOptions e;
  e.enabled = true;
  e.min_batches_between_rebalances = 2;
  return e;
}

/// Pre-generated replayable input: spawn positions + one update batch
/// per tick.  Generation is deterministic per (kind, skew) and hoisted
/// out of the timed region.
struct Replay {
  std::vector<Entity> entities;
  std::vector<std::vector<SensedUpdate>> batches;
};

template <typename Workload>
Replay Record(Workload&& w) {
  Replay out;
  for (EntityId id = w.first_id(); id < EntityId(w.first_id() + w.size());
       ++id) {
    Entity e;
    e.id = id;
    e.position = w.Position(id);
    out.entities.push_back(e);
  }
  Micros now = 0;
  for (size_t tick = 0; tick < kTicks; ++tick) {
    now += kTickDt;
    out.batches.push_back(w.Tick(kTickDt, now));
  }
  return out;
}

WorkloadOptions FleetOptions() {
  WorkloadOptions opts;
  opts.num_entities = kEntities;
  opts.max_speed = 5.0;
  return opts;
}

const Replay& FlashCrowdReplay(double skew) {
  static std::map<double, Replay>* cache = new std::map<double, Replay>();
  auto it = cache->find(skew);
  if (it == cache->end()) {
    it = cache->emplace(skew, Record(FlashCrowdWorkload(kWorld, FleetOptions(),
                                                        skew)))
             .first;
  }
  return it->second;
}

template <typename Engine>
void AddWatchers(Engine& engine, pubsub::Broker::Deliver deliver) {
  size_t per_axis = 8;  // 8x8 = kWatchers regions
  double span_x = (kWorld.max.x - kWorld.min.x) / double(per_axis);
  double span_y = (kWorld.max.y - kWorld.min.y) / double(per_axis);
  for (size_t i = 0; i < kWatchers; ++i) {
    size_t gx = i % per_axis, gy = i / per_axis;
    geo::AABB region({kWorld.min.x + double(gx) * span_x,
                      kWorld.min.y + double(gy) * span_y, kWorld.min.z},
                     {kWorld.min.x + double(gx + 1) * span_x,
                      kWorld.min.y + double(gy + 1) * span_y, kWorld.max.z});
    engine.WatchRegion(net::NodeId(100 + i), region, deliver);
  }
}

pubsub::Broker::Deliver SinkWatcher() {
  return [](net::NodeId node, const pubsub::Event& event) {
    benchmark::DoNotOptimize(node);
    benchmark::DoNotOptimize(&event);
  };
}

/// Two untimed replay passes before the timed region: the elastic arm
/// detects the skew and migrates during warmup, so the timed region
/// measures *sustained* throughput on the adapted assignment (the
/// migration pauses themselves are still visible in the pause-time
/// histogram and rebalance counters).
void Warmup(ParallelEngine& engine, const Replay& replay) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& batch : replay.batches) engine.IngestBatch(batch);
  }
}

void ReportElastic(benchmark::State& state, const ParallelEngine& engine,
                   uint64_t updates) {
  state.SetItemsProcessed(int64_t(updates));
  state.counters["updates_per_s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
  // Work imbalance over the whole run, from per-shard ingest counters —
  // meaningful for the static arm too (EWMA load is elastic-only).
  double total = 0.0, max_shard = 0.0;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    double v = double(engine.shard_stats(s).physical_updates);
    total += v;
    max_shard = std::max(max_shard, v);
  }
  state.counters["work_imbalance"] =
      total > 0 ? max_shard / (total / double(engine.num_shards())) : 1.0;
  state.counters["imbalance"] = engine.LoadImbalance();
  state.counters["rebalances"] = double(engine.rebalance_count());
  state.counters["entities_migrated"] = double(engine.entities_migrated());
  state.counters["tiles_moved"] = double(engine.tiles_moved());
  deluge::Histogram pauses = engine.migration_histogram()->Snapshot();
  state.counters["migration_p50_us"] = pauses.P50();
  state.counters["migration_p95_us"] = pauses.P95();
  state.counters["migration_p99_us"] = pauses.P99();
}

// ---------------------------------------------------------- skew sweep

// Arg0: flash-crowd skew (hot-region load multiple; 1 = uniform).
// Arg1: 1 = elastic rebalancing on, 0 = static Z-order striping.
void BM_E23_FlashCrowd(benchmark::State& state) {
  const double skew = double(state.range(0));
  const bool elastic = state.range(1) != 0;
  const Replay& replay = FlashCrowdReplay(skew);
  SimClock clock;
  ThreadPool pool(kShards);
  ParallelEngineOptions opts;
  opts.engine = BaseOptions();
  opts.num_shards = kShards;
  if (elastic) opts.elastic = Elastic();
  ParallelEngine engine(opts, &pool, &clock);
  for (const Entity& e : replay.entities) engine.SpawnPhysical(e);
  AddWatchers(engine, SinkWatcher());
  Warmup(engine, replay);

  uint64_t updates = 0;
  size_t tick = 0;
  for (auto _ : state) {
    const auto& batch = replay.batches[tick++ % replay.batches.size()];
    engine.IngestBatch(batch);
    updates += batch.size();
  }
  state.counters["skew"] = skew;
  state.counters["elastic"] = elastic ? 1.0 : 0.0;
  ReportElastic(state, engine, updates);
}
BENCHMARK(BM_E23_FlashCrowd)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------- moving hotspots

// The hotspot orbits the world (follow-the-sun): any single rebalance
// goes stale, so sustained balance requires repeated incremental
// migrations.  Arg0: skew.
void BM_E23_DiurnalWave(benchmark::State& state) {
  const double skew = double(state.range(0));
  Replay replay = Record(DiurnalWaveWorkload(
      kWorld, FleetOptions(), skew, Micros(kTicks) * kTickDt));
  SimClock clock;
  ThreadPool pool(kShards);
  ParallelEngineOptions opts;
  opts.engine = BaseOptions();
  opts.num_shards = kShards;
  opts.elastic = Elastic();
  ParallelEngine engine(opts, &pool, &clock);
  for (const Entity& e : replay.entities) engine.SpawnPhysical(e);
  AddWatchers(engine, SinkWatcher());
  Warmup(engine, replay);

  uint64_t updates = 0;
  size_t tick = 0;
  for (auto _ : state) {
    const auto& batch = replay.batches[tick++ % replay.batches.size()];
    engine.IngestBatch(batch);
    updates += batch.size();
  }
  state.counters["skew"] = skew;
  ReportElastic(state, engine, updates);
}
BENCHMARK(BM_E23_DiurnalWave)
    ->Arg(4)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Cohesive clusters roaming as groups — bursty tiles whose bursts move.
// Arg0: number of swarms.
void BM_E23_RoamingSwarms(benchmark::State& state) {
  const size_t swarms = size_t(state.range(0));
  Replay replay =
      Record(RoamingSwarmWorkload(kWorld, FleetOptions(), swarms, 120.0));
  SimClock clock;
  ThreadPool pool(kShards);
  ParallelEngineOptions opts;
  opts.engine = BaseOptions();
  opts.num_shards = kShards;
  opts.elastic = Elastic();
  ParallelEngine engine(opts, &pool, &clock);
  for (const Entity& e : replay.entities) engine.SpawnPhysical(e);
  AddWatchers(engine, SinkWatcher());
  Warmup(engine, replay);

  uint64_t updates = 0;
  size_t tick = 0;
  for (auto _ : state) {
    const auto& batch = replay.batches[tick++ % replay.batches.size()];
    engine.IngestBatch(batch);
    updates += batch.size();
  }
  state.counters["swarms"] = double(swarms);
  ReportElastic(state, engine, updates);
}
BENCHMARK(BM_E23_RoamingSwarms)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------- exactness

/// Order-sensitive delivery ledger: one FNV-style hash chain per
/// (watcher, entity).  Two runs produce equal ledgers iff each watcher
/// saw exactly the same events for each entity, in the same order —
/// a drop, duplicate, or per-entity reorder anywhere breaks equality.
struct DeliveryLedger {
  std::mutex mu;
  std::map<std::pair<net::NodeId, uint64_t>, uint64_t> chains;

  pubsub::Broker::Deliver Watcher() {
    return [this](net::NodeId node, const pubsub::Event& event) {
      uint64_t entity = std::stoull(event.payload.key);
      uint64_t h = 1469598103934665603ull;
      auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ull; };
      mix(entity);
      mix(uint64_t(event.payload.event_time));
      if (event.position.has_value()) {
        geo::Vec3 p = *event.position;
        uint64_t bits[3];
        static_assert(sizeof(bits) == sizeof(p));
        std::memcpy(bits, &p, sizeof(bits));
        mix(bits[0]);
        mix(bits[1]);
        mix(bits[2]);
      }
      std::lock_guard<std::mutex> lock(mu);
      uint64_t& chain = chains[{node, entity}];
      chain = (chain ^ h) * 1099511628211ull;
    };
  }
};

// The serial engine and the elastic 8-shard engine (with extra forced
// rebalances to maximize migration churn) replay the same 10×-skew
// flash crowd; ledgers and EngineStats must match exactly.
void BM_E23_ExactnessAcrossMigrations(benchmark::State& state) {
  const Replay& replay = FlashCrowdReplay(10.0);
  bool exact = true, stats_match = true;
  uint64_t rebalances = 0, migrated = 0;
  for (auto _ : state) {
    SimClock clock;
    CoSpaceEngine serial(BaseOptions(), &clock);
    ThreadPool pool(kShards);
    ParallelEngineOptions opts;
    opts.engine = BaseOptions();
    opts.num_shards = kShards;
    opts.elastic = Elastic();
    ParallelEngine sharded(opts, &pool, &clock);
    for (const Entity& e : replay.entities) {
      serial.SpawnPhysical(e);
      sharded.SpawnPhysical(e);
    }
    DeliveryLedger serial_ledger, sharded_ledger;
    AddWatchers(serial, serial_ledger.Watcher());
    AddWatchers(sharded, sharded_ledger.Watcher());
    for (size_t tick = 0; tick < replay.batches.size(); ++tick) {
      for (const SensedUpdate& u : replay.batches[tick]) {
        serial.IngestPhysicalPosition(u.id, u.position, u.t);
      }
      sharded.IngestBatch(replay.batches[tick]);
      // Force extra handoffs beyond what the cadence gate would run:
      // exactness must hold no matter how often ownership moves.
      if (tick % 3 == 2) sharded.Rebalance();
    }
    exact = exact && serial_ledger.chains == sharded_ledger.chains &&
            !serial_ledger.chains.empty();
    EngineStats a = serial.stats();
    EngineStats b = sharded.TotalStats();
    stats_match = stats_match && a.physical_updates == b.physical_updates &&
                  a.mirrored_updates == b.mirrored_updates &&
                  a.suppressed_updates == b.suppressed_updates &&
                  a.events_published == b.events_published;
    rebalances = sharded.rebalance_count();
    migrated = sharded.entities_migrated();
  }
  state.counters["exact"] = exact ? 1.0 : 0.0;
  state.counters["stats_match"] = stats_match ? 1.0 : 0.0;
  state.counters["rebalances"] = double(rebalances);
  state.counters["entities_migrated"] = double(migrated);
  if (!exact) state.SkipWithError("delivery ledgers diverged across handoff");
  if (!stats_match) state.SkipWithError("EngineStats diverged across handoff");
}
BENCHMARK(BM_E23_ExactnessAcrossMigrations)->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
