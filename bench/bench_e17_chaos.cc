// E17 — deterministic chaos: the transaction + pub/sub stack under a
// scripted fault schedule (partitions, a crash, correlated burst loss).
//
// Claims validated: (a) commit success recovers after every fault heals
// — retransmission rides out short faults, background redelivery closes
// the committed-then-lost hole (the count must be ZERO), and the
// per-shard circuit breaker converts retry storms against a dead shard
// into cheap fast-fails; (b) pub/sub staleness degrades gracefully
// (late, not lost) across link flaps; (c) the whole scenario is
// bit-for-bit reproducible from its seed (same seed => identical fault
// trace and metrics), which is what makes chaos results debuggable.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "common/histogram.h"
#include "pubsub/reliable.h"
#include "txn/distributed.h"

namespace {

using namespace deluge;       // NOLINT
using namespace deluge::txn;  // NOLINT

constexpr size_t kShards = 4;
constexpr Micros kHorizon = 10 * kMicrosPerSecond;
constexpr Micros kSubmitEvery = 10 * kMicrosPerMilli;
constexpr Micros kTxnTimeout = 500 * kMicrosPerMilli;

struct Cluster {
  net::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<net::SimTransport> transport;
  std::vector<std::unique_ptr<ShardNode>> shards;
  std::unique_ptr<DistributedTxnSystem> system;
};

std::unique_ptr<Cluster> MakeCluster() {
  auto c = std::make_unique<Cluster>();
  c->network = std::make_unique<net::Network>(&c->sim);
  c->transport =
      std::make_unique<net::SimTransport>(c->network.get(), &c->sim);
  std::vector<ShardNode*> ptrs;
  for (size_t i = 0; i < kShards; ++i) {
    c->shards.push_back(std::make_unique<ShardNode>(c->transport.get()));
    ptrs.push_back(c->shards.back().get());
  }
  c->system =
      std::make_unique<DistributedTxnSystem>(c->transport.get(), ptrs);
  c->network->default_link().latency = 5 * kMicrosPerMilli;
  c->network->default_link().bandwidth_bytes_per_sec = 0;
  return c;
}

/// A key for txn `i` guaranteed to live on shard `target`.
std::string KeyOnShard(const DistributedTxnSystem& system, int i,
                       size_t target) {
  for (int probe = 0;; ++probe) {
    std::string key =
        "t" + std::to_string(i) + "_" + std::to_string(probe);
    if (system.ShardOf(key) == target) return key;
  }
}

/// One fault window for bookkeeping: shard `target` is unreachable from
/// the coordinator during [from, until).
struct Window {
  Micros from, until;
  size_t target;
};

struct TxnRecord {
  Micros submitted_at = 0;
  Micros decided_at = 0;
  size_t target_shard = 0;
  bool committed = false;
  std::string key;    ///< the write forced onto target_shard
  std::string value;
};

struct ScenarioResult {
  uint64_t trace_hash = 0;
  uint64_t fault_events = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t committed_then_lost = 0;
  uint64_t retransmits = 0;
  uint64_t redeliveries = 0;
  uint64_t fast_fails = 0;
  uint64_t unresolved = 0;
  double commit_rate_healthy = 0;
  double commit_rate_faulted = 0;
  double max_recovery_ms = 0;
};

/// Runs the full chaos scenario: an open-loop txn workload (one txn per
/// 10 ms, round-robin over target shards) under three scripted fault
/// windows, then audits every reported commit against the stores.
ScenarioResult RunChaosScenario() {
  auto c = MakeCluster();
  const net::NodeId coord = c->system->coordinator_node();

  // The schedule: two coordinator<->shard-1 partitions, a shard-2
  // crash, and a burst-loss window toward shard 3 (silent correlated
  // loss, recovered by retransmission alone).
  const std::vector<Window> windows = {
      {1 * kMicrosPerSecond, 2 * kMicrosPerSecond, 1},
      {4 * kMicrosPerSecond, 5500 * kMicrosPerMilli, 1},
      {6500 * kMicrosPerMilli, 7 * kMicrosPerSecond, 2},
  };
  chaos::FaultSchedule schedule(c->transport.get());
  schedule
      .PartitionWindow(windows[0].from, coord,
                       c->shards[1]->node_id(),
                       windows[0].until - windows[0].from)
      .PartitionWindow(windows[1].from, coord,
                       c->shards[1]->node_id(),
                       windows[1].until - windows[1].from)
      .CrashNode(windows[2].from, c->shards[2]->node_id(),
                 windows[2].until - windows[2].from);
  net::BurstLossModel burst;
  burst.p_good_to_bad = 0.1;
  burst.p_bad_to_good = 0.3;
  schedule.BurstLossWindow(8 * kMicrosPerSecond, coord,
                           c->shards[3]->node_id(), burst,
                           kMicrosPerSecond);
  schedule.Arm();

  // Open-loop workload: txn i targets shard i % kShards plus one free
  // key; every key is unique so commits can be audited afterwards.
  const int kTxns = int(kHorizon / kSubmitEvery);
  std::vector<TxnRecord> txns(kTxns);
  for (int i = 0; i < kTxns; ++i) {
    TxnRecord& rec = txns[i];
    rec.submitted_at = Micros(i) * kSubmitEvery;
    rec.target_shard = size_t(i) % kShards;
    rec.key = KeyOnShard(*c->system, i, rec.target_shard);
    rec.value = "v" + std::to_string(i);
    c->sim.At(rec.submitted_at, [&c, &rec, i] {
      c->system->Submit(
          {{rec.key, rec.value}, {"u" + std::to_string(i), rec.value}},
          CommitProtocol::kTwoPhase,
          [&c, &rec](const TxnResult& r) {
            rec.committed = r.committed;
            rec.decided_at = c->sim.Now();
          },
          kTxnTimeout);
    });
  }
  c->sim.Run();  // drains the workload, faults, and all redeliveries

  ScenarioResult out;
  out.trace_hash = schedule.TraceHash();
  out.fault_events = schedule.stats().total;
  out.committed = c->system->committed();
  out.aborted = c->system->aborted();
  out.retransmits = c->system->retransmits();
  out.redeliveries = c->system->redeliveries();
  out.fast_fails = c->system->fast_fails();
  out.unresolved = c->system->unresolved_decisions();

  // Audit: every transaction reported committed must be readable with
  // the value it wrote — a commit answered to the client and then lost
  // to a partition would show up here.
  uint64_t healthy = 0, healthy_committed = 0;
  uint64_t faulted = 0, faulted_committed = 0;
  std::vector<Micros> first_commit_after(windows.size(), -1);
  for (const TxnRecord& rec : txns) {
    if (rec.committed) {
      std::string v;
      if (!c->system->Read(rec.key, &v).ok() || v != rec.value) {
        ++out.committed_then_lost;
      }
    }
    bool in_fault = false;
    for (size_t w = 0; w < windows.size(); ++w) {
      if (rec.target_shard == windows[w].target &&
          rec.submitted_at >= windows[w].from &&
          rec.submitted_at < windows[w].until) {
        in_fault = true;
      }
      // Recovery: first post-heal commit on the window's target shard.
      if (rec.committed && rec.target_shard == windows[w].target &&
          rec.decided_at >= windows[w].until &&
          (first_commit_after[w] < 0 ||
           rec.decided_at < first_commit_after[w])) {
        first_commit_after[w] = rec.decided_at;
      }
    }
    (in_fault ? faulted : healthy) += 1;
    if (rec.committed) (in_fault ? faulted_committed : healthy_committed) += 1;
  }
  out.commit_rate_healthy =
      healthy == 0 ? 0.0 : double(healthy_committed) / double(healthy);
  out.commit_rate_faulted =
      faulted == 0 ? 0.0 : double(faulted_committed) / double(faulted);
  for (size_t w = 0; w < windows.size(); ++w) {
    if (first_commit_after[w] < 0) continue;  // never recovered: visible
    double ms = double(first_commit_after[w] - windows[w].until) /
                double(kMicrosPerMilli);
    out.max_recovery_ms = std::max(out.max_recovery_ms, ms);
  }
  return out;
}

void BM_ChaosTxnRecovery(benchmark::State& state) {
  ScenarioResult r;
  for (auto _ : state) r = RunChaosScenario();
  state.counters["committed"] = double(r.committed);
  state.counters["aborted"] = double(r.aborted);
  state.counters["commit_rate_healthy"] = r.commit_rate_healthy;
  state.counters["commit_rate_faulted"] = r.commit_rate_faulted;
  state.counters["max_recovery_ms"] = r.max_recovery_ms;
  state.counters["committed_then_lost"] = double(r.committed_then_lost);
  state.counters["retransmits"] = double(r.retransmits);
  state.counters["redeliveries"] = double(r.redeliveries);
  state.counters["fast_fails"] = double(r.fast_fails);
  state.counters["unresolved"] = double(r.unresolved);
  state.counters["fault_events"] = double(r.fault_events);
}
BENCHMARK(BM_ChaosTxnRecovery)->Unit(benchmark::kMillisecond);

// Reproducibility: the same scenario runs twice and must match
// bit-for-bit — fault trace hash and every headline metric.
void BM_ChaosDeterminism(benchmark::State& state) {
  bool trace_match = true, metrics_match = true;
  for (auto _ : state) {
    ScenarioResult a = RunChaosScenario();
    ScenarioResult b = RunChaosScenario();
    trace_match = trace_match && a.trace_hash == b.trace_hash;
    metrics_match = metrics_match && a.committed == b.committed &&
                    a.aborted == b.aborted &&
                    a.retransmits == b.retransmits &&
                    a.redeliveries == b.redeliveries;
  }
  state.counters["trace_match"] = trace_match ? 1.0 : 0.0;
  state.counters["metrics_match"] = metrics_match ? 1.0 : 0.0;
}
BENCHMARK(BM_ChaosDeterminism)->Unit(benchmark::kMillisecond);

// Pub/sub staleness under link flaps: events retried through transient
// faults arrive late rather than never — graceful degradation measured
// as a staleness distribution, not a loss rate.
void BM_PubsubStalenessUnderFlaps(benchmark::State& state) {
  Histogram staleness;
  uint64_t published = 0, delivered = 0;
  pubsub::ReliableStats rstats;
  for (auto _ : state) {
    net::Simulator sim;
    net::Network net(&sim);
    net::NodeId pub = net.AddNode([](const net::Message&) {});
    std::vector<Micros> published_at;
    net::NodeId sub = net.AddNode([&](const net::Message& m) {
      // The payload is the event's wire form; its topic carries the
      // publish index.
      pubsub::Event e;
      if (!pubsub::Event::Decode(m.payload.slice(), &e)) return;
      size_t i = size_t(std::stoull(e.topic));
      staleness.Record(sim.Now() - published_at[i]);
      ++delivered;
    });
    net.default_link().latency = 5 * kMicrosPerMilli;
    net.default_link().bandwidth_bytes_per_sec = 0;
    net::SimTransport transport(&net, &sim);

    chaos::FaultSchedule schedule(&transport);
    schedule.FlapLink(kMicrosPerSecond, pub, sub, 300 * kMicrosPerMilli)
        .FlapLink(3 * kMicrosPerSecond, pub, sub, 500 * kMicrosPerMilli);
    schedule.Arm();

    RetryPolicy policy;
    policy.max_attempts = 10;
    policy.initial_backoff = 20 * kMicrosPerMilli;
    policy.max_backoff = 200 * kMicrosPerMilli;
    pubsub::ReliableDeliverer deliverer(&transport, policy);
    deliverer.breaker_options().failure_threshold = 1000;  // retries only

    const int kEvents = int(5 * kMicrosPerSecond / (5 * kMicrosPerMilli));
    published_at.resize(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      Micros at = Micros(i) * 5 * kMicrosPerMilli;
      sim.At(at, [&, i, at] {
        published_at[i] = at;
        pubsub::Event e;
        e.topic = std::to_string(i);  // payload carries the event index
        e.published_at = at;
        deliverer.Deliver(pub, sub, e);
      });
      ++published;
    }
    sim.Run();
    rstats = deliverer.stats();
  }
  state.counters["published"] = double(published);
  state.counters["delivered_pct"] =
      100.0 * double(delivered) / double(std::max<uint64_t>(1, published));
  state.counters["staleness_p50_ms"] =
      staleness.P50() / double(kMicrosPerMilli);
  state.counters["staleness_p99_ms"] =
      staleness.P99() / double(kMicrosPerMilli);
  state.counters["retries"] = double(rstats.retries);
  state.counters["gave_up"] = double(rstats.gave_up);
}
BENCHMARK(BM_PubsubStalenessUnderFlaps)->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
