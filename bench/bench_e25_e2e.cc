// E25 — the end-to-end QoS regression gate (DESIGN.md §13).
//
// Composes the paper's three §II applications — live event streaming
// (kRealtime/kInteractive), the digital-twin hospital (kTelemetry), and
// city-scale AR navigation (kInteractive/kBulk) — into one
// `MixedScenario`, then grades every per-class hop histogram against
// `QosPolicy::Default()` via `ComputeSloReport`.
//
// Unlike the other benches this binary is a *gate*: it exits non-zero
// when
//   - the kRealtime delivery SLO (broker.delivery_us / net.send_us)
//     is violated or has silently stopped being measured, or
//   - the kTelemetry durability SLO regresses (commit latency misses
//     its target, or durable commits stop issuing WAL syncs).
// CI runs it as a smoke step with DELUGE_E25_TICKS=40.
//
// Results still land in bench_results.json (one line per totals/SLO
// value plus the full registry dump), so the perf-trajectory tooling
// diffs E25 like every other experiment.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_json.h"
#include "core/scenarios.h"

namespace {

using namespace deluge;        // NOLINT
using namespace deluge::core;  // NOLINT

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

void EmitLine(std::ofstream& out, const std::string& metric, double value) {
  out << "{\"bench\": \"e25_e2e\", \"metric\": \""
      << deluge::bench::JsonEscape(metric) << "\", \"value\": " << value
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioOptions options;
  options.ticks = EnvInt("DELUGE_E25_TICKS", options.ticks);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ticks=", 0) == 0) {
      const int ticks = std::atoi(arg.c_str() + 8);
      if (ticks > 0) options.ticks = ticks;
    }
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path store_dir =
      fs::temp_directory_path(ec) /
      ("deluge_e25_" + std::to_string(uint64_t(::getpid())));
  if (!ec) {
    fs::create_directories(store_dir, ec);
    if (!ec) options.storage_dir = store_dir.string();
  }

  std::printf("E25: mixed scenario, %d ticks x %lld ms, %zu shards%s\n",
              options.ticks,
              static_cast<long long>(options.tick_dt / kMicrosPerMilli),
              options.num_shards,
              options.storage_dir.empty() ? " (no storage leg)" : "");

  ScenarioTotals totals;
  {
    MixedScenario scenario(options);
    totals = scenario.Run();
  }  // scopes retire -> registry folds into instance="all" aggregates

  const SloReport report = ComputeSloReport();
  std::printf(
      "ingested=%llu refreshes=%llu delivered=%llu shed=%llu "
      "rebalances=%llu\n"
      "nav_completed=%llu serverless_shed=%llu telemetry_commits=%llu "
      "wal_syncs=%llu\n"
      "wan: forwarded=%llu received=%llu gave_up=%llu\n\n%s",
      static_cast<unsigned long long>(totals.updates_ingested),
      static_cast<unsigned long long>(totals.mirror_refreshes),
      static_cast<unsigned long long>(totals.broker_deliveries),
      static_cast<unsigned long long>(totals.broker_shed),
      static_cast<unsigned long long>(totals.rebalances),
      static_cast<unsigned long long>(totals.nav_completed),
      static_cast<unsigned long long>(totals.serverless_shed),
      static_cast<unsigned long long>(totals.telemetry_commits),
      static_cast<unsigned long long>(totals.wal_syncs),
      static_cast<unsigned long long>(totals.remote_forwarded),
      static_cast<unsigned long long>(totals.remote_received),
      static_cast<unsigned long long>(totals.remote_gave_up),
      report.ToString().c_str());

  // ---- JSONL sidecar --------------------------------------------------
  const std::string path = deluge::bench::ResultsPath();
  {
    std::ofstream out(path, std::ios::app);
    EmitLine(out, "ticks", double(options.ticks));
    EmitLine(out, "updates_ingested", double(totals.updates_ingested));
    EmitLine(out, "mirror_refreshes", double(totals.mirror_refreshes));
    EmitLine(out, "broker_deliveries", double(totals.broker_deliveries));
    EmitLine(out, "broker_shed", double(totals.broker_shed));
    EmitLine(out, "nav_completed", double(totals.nav_completed));
    EmitLine(out, "telemetry_commits", double(totals.telemetry_commits));
    EmitLine(out, "wal_syncs", double(totals.wal_syncs));
    EmitLine(out, "remote_received", double(totals.remote_received));
    EmitLine(out, "remote_gave_up", double(totals.remote_gave_up));
    for (const auto& cls : report.classes) {
      for (const auto& leg : cls.legs) {
        const std::string prefix =
            std::string("slo/") + QosClassName(cls.cls) + "/" + leg.leg;
        EmitLine(out, prefix + "/attainment", leg.attainment);
        EmitLine(out, prefix + "/p99_us", leg.p99_us);
        EmitLine(out, prefix + "/samples", double(leg.samples));
      }
    }
  }
  deluge::bench::DumpRegistry(
      path, deluge::bench::BinaryName(argc > 0 ? argv[0] : nullptr));

  if (!options.storage_dir.empty()) {
    fs::remove_all(options.storage_dir, ec);
  }

  // ---- The gate -------------------------------------------------------
  int violations = 0;
  auto require = [&](bool ok, const char* what) {
    if (ok) return;
    ++violations;
    std::printf("E25 GATE: %s\n", what);
  };

  const LegSlo* rt_delivery =
      report.leg(QosClass::kRealtime, "broker.delivery_us");
  require(rt_delivery != nullptr && rt_delivery->samples > 0,
          "kRealtime broker deliveries are no longer being measured");
  require(rt_delivery == nullptr || rt_delivery->met,
          "kRealtime broker delivery SLO violated");
  const LegSlo* rt_wan = report.leg(QosClass::kRealtime, "net.send_us");
  require(rt_wan == nullptr || rt_wan->met,
          "kRealtime WAN delivery SLO violated");

  const LegSlo* tel_commit =
      report.leg(QosClass::kTelemetry, "storage.commit_us");
  if (!options.storage_dir.empty()) {
    require(tel_commit != nullptr && tel_commit->samples > 0,
            "kTelemetry commits are no longer being measured");
    require(totals.telemetry_commits == 0 || totals.wal_syncs > 0,
            "durable kTelemetry commits issued no WAL syncs");
  }
  require(tel_commit == nullptr || tel_commit->met,
          "kTelemetry commit-latency SLO violated");

  std::printf("\nE25 gate: %s\n", violations == 0 ? "PASS" : "FAIL");
  return violations == 0 ? 0 : 1;
}
