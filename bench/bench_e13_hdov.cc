// E13 — Section IV-F: walkthrough visibility indexing (HDoV tree, [71]).
//
// Claims validated: (a) the visibility tree prunes to a tiny fraction of
// the scene vs a full scan, with the win growing in scene size; (b) the
// dynamic variant absorbs scene churn (which the original static HDoV
// tree could not) at modest cost, recovered by periodic Rebuild.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "common/rng.h"
#include "index/hdov_tree.h"

namespace {

using namespace deluge;         // NOLINT
using namespace deluge::index;  // NOLINT

const geo::AABB kScene({0, 0, 0}, {10000, 10000, 200});

SceneObject RandomObject(EntityId id, Rng* rng) {
  SceneObject o;
  o.id = id;
  o.position = {rng->UniformDouble(0, 10000), rng->UniformDouble(0, 10000),
                rng->UniformDouble(0, 200)};
  o.radius = rng->UniformDouble(0.2, 5.0);
  o.full_bytes = 1 << 20;
  o.low_bytes = 1 << 12;
  return o;
}

void BM_VisibilityQuery(benchmark::State& state) {
  const size_t scene_size = size_t(state.range(0));
  Rng rng(3);
  HdovTree tree(kScene, 16, 12);
  for (EntityId id = 0; id < scene_size; ++id) {
    tree.Insert(RandomObject(id, &rng));
  }
  uint64_t visible_total = 0, nodes_total = 0, queries = 0;
  for (auto _ : state) {
    geo::ViewRegion view;
    view.eye = {rng.UniformDouble(1000, 9000), rng.UniformDouble(1000, 9000),
                100};
    view.radius = 300.0;
    auto visible = tree.QueryVisible(view, 0.01);
    visible_total += visible.size();
    nodes_total += tree.last_nodes_visited();
    ++queries;
  }
  state.SetItemsProcessed(int64_t(queries));
  state.counters["scene_objects"] = double(scene_size);
  state.counters["visible_per_query"] =
      double(visible_total) / double(std::max<uint64_t>(1, queries));
  state.counters["nodes_visited"] =
      double(nodes_total) / double(std::max<uint64_t>(1, queries));
}
BENCHMARK(BM_VisibilityQuery)->Arg(10000)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMicrosecond);

// Baseline: linear scan over all scene objects.
void BM_VisibilityFullScan(benchmark::State& state) {
  const size_t scene_size = size_t(state.range(0));
  Rng rng(3);
  std::vector<SceneObject> scene;
  for (EntityId id = 0; id < scene_size; ++id) {
    scene.push_back(RandomObject(id, &rng));
  }
  for (auto _ : state) {
    geo::ViewRegion view;
    view.eye = {rng.UniformDouble(1000, 9000), rng.UniformDouble(1000, 9000),
                100};
    view.radius = 300.0;
    size_t visible = 0;
    for (const auto& o : scene) {
      if (!view.Contains(o.position)) continue;
      double dist = std::max(geo::Distance(view.eye, o.position), 0.5);
      if (o.radius / dist >= 0.01) ++visible;
    }
    benchmark::DoNotOptimize(visible);
  }
  state.counters["scene_objects"] = double(scene_size);
}
BENCHMARK(BM_VisibilityFullScan)->Arg(10000)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMicrosecond);

// Dynamic churn ablation (design decision 1 in DESIGN.md): per-node
// max-radius bounds only LOOSEN on removal, so after heavy churn stale
// bounds defeat pruning until a Rebuild tightens them.  Scenario chosen
// to expose it: the scene's few HUGE objects (stadium screens, blimps)
// all start in one district, then churn scatters/moves them; queries in
// the vacated district should prune by radius but the stale bounds say
// "a 100 m object might be here".  Rebuild cost is excluded from timing.
void BM_ChurnAndRebuild(benchmark::State& state) {
  const bool rebuild = state.range(0) == 1;
  Rng rng(5);
  HdovTree tree(kScene, 16, 12);
  const size_t kObjects = 100000;
  for (EntityId id = 0; id < kObjects; ++id) {
    SceneObject o = RandomObject(id, &rng);
    if (id < 200) {
      // Giant objects clustered in the north-east district.
      o.radius = 100.0;
      o.position = {9000 + rng.UniformDouble(0, 900),
                    9000 + rng.UniformDouble(0, 900), 100};
    }
    tree.Insert(o);
  }
  // Churn: every giant object relocates far away (drops its old district
  // to small-radius content, but the subtree bounds still read 100 m).
  for (EntityId id = 0; id < 200; ++id) {
    tree.Move(id, {rng.UniformDouble(0, 4000), rng.UniformDouble(0, 4000),
                   100});
  }
  if (rebuild) tree.Rebuild();

  uint64_t nodes_total = 0, queries = 0;
  for (auto _ : state) {
    geo::ViewRegion view;
    // Query the vacated district with a high-DoV threshold that only
    // giant objects could satisfy from afar.
    view.eye = {9400 + rng.UniformDouble(-200, 200),
                9400 + rng.UniformDouble(-200, 200), 100};
    view.radius = 400.0;
    auto visible = tree.QueryVisible(view, 0.5);
    benchmark::DoNotOptimize(visible.data());
    nodes_total += tree.last_nodes_visited();
    ++queries;
  }
  state.counters["rebuild"] = double(state.range(0));
  state.counters["nodes_visited"] =
      double(nodes_total) / double(std::max<uint64_t>(1, queries));
}
BENCHMARK(BM_ChurnAndRebuild)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
