// E21 — zero-copy event path: refcounted payload buffers + flat tuples.
//
// Measures the refactored path against the recorded pre-refactor
// baseline (EXPERIMENTS.md E21): queued fan-out hands every subscriber
// slot one shared EventRef, the wire path serialises once into a
// refcounted Buffer shared across subscribers and retries, and payload
// slabs recycle through the arena.
//
// Claims measured: (a) broker fan-out cost per delivery as subscriber
// count grows — per-subscriber cost is a refcount bump, not an Event
// deep copy; (b) allocations per delivery (operator-new override);
// (c) `buffer.bytes_copied` stays flat (zero on these paths) as the
// subscriber count grows; (d) wire-path materialisation cost via
// ReliableDeliverer; (e) raw Tuple copy cost (flat record vs the old
// hash map); (f) steady-state payload slab reuse.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/simulator.h"
#include "obs/metrics.h"
#include "pubsub/broker.h"
#include "pubsub/reliable.h"
#include "runtime/buffer_pool.h"

// ---------------------------------------------------------------- alloc hook
// Bench-local operator new/delete: counts every heap allocation in the
// process so "allocations per delivery" is a direct, honest measure.

static std::atomic<uint64_t> g_allocs{0};
static std::atomic<uint64_t> g_alloc_bytes{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace deluge;  // NOLINT

const geo::AABB kWorld({0, 0, 0}, {1000, 1000, 100});

deluge::obs::Counter* BytesCopiedCounter() {
  return obs::MetricsRegistry::Global().GetCounter("buffer.bytes_copied");
}

/// A realistic sensor event: numeric pose fields plus a ~160-byte
/// descriptor blob (the "media frame descriptor" class of payload).
pubsub::Event MakeSensorEvent() {
  pubsub::Event e;
  e.topic = "sensor.pose";
  e.position = geo::Vec3{500, 500, 10};
  e.qos = QosClass::kInteractive;
  e.payload.event_time = 12345;
  e.payload.key = "entity-000042";
  e.payload.Set("entity", int64_t(42));
  e.payload.Set("x", 500.0);
  e.payload.Set("y", 500.0);
  e.payload.Set("z", 10.0);
  e.payload.Set("blob", std::string(160, 'b'));
  return e;
}

// ---------------------------------------------------------------- fan-out

// One publish, N matching subscribers, queued delivery + drain — the
// dissemination hot loop.  The refactored path wraps the Event in one
// EventRef per publish; every queue slot shares it, so per-subscriber
// cost is a refcount bump and `bytes_copied` stays flat in N.
void BM_BrokerFanout(benchmark::State& state) {
  const size_t subs = size_t(state.range(0));
  uint64_t delivered = 0;
  pubsub::Broker broker(kWorld, 50.0,
                        [&](net::NodeId, const pubsub::Event& event) {
                          benchmark::DoNotOptimize(&event);
                          ++delivered;
                        });
  for (size_t i = 0; i < subs; ++i) {
    pubsub::Subscription s;
    s.subscriber = net::NodeId(i + 1);
    s.topic = "sensor.pose";
    broker.Subscribe(std::move(s));
  }
  broker.SetQueueLimit(4 * subs + 4);
  pubsub::Event event = MakeSensorEvent();

  uint64_t allocs0 = g_allocs.load(), bytes0 = g_alloc_bytes.load();
  uint64_t copied0 = BytesCopiedCounter()->Value();
  uint64_t events = 0;
  for (auto _ : state) {
    broker.Publish(event);
    broker.Drain();
    ++events;
  }
  uint64_t allocs = g_allocs.load() - allocs0;
  uint64_t bytes = g_alloc_bytes.load() - bytes0;
  uint64_t copied = BytesCopiedCounter()->Value() - copied0;

  state.SetItemsProcessed(int64_t(delivered));
  state.counters["subs"] = double(subs);
  state.counters["deliveries_per_s"] =
      benchmark::Counter(double(delivered), benchmark::Counter::kIsRate);
  state.counters["events_per_s"] =
      benchmark::Counter(double(events), benchmark::Counter::kIsRate);
  state.counters["allocs_per_delivery"] =
      double(allocs) / double(std::max<uint64_t>(1, delivered));
  state.counters["alloc_bytes_per_delivery"] =
      double(bytes) / double(std::max<uint64_t>(1, delivered));
  state.counters["bytes_copied_per_event"] =
      double(copied) / double(std::max<uint64_t>(1, events));
}
BENCHMARK(BM_BrokerFanout)->Arg(1)->Arg(8)->Arg(64);

// ---------------------------------------------------------------- wire path

// Publish-to-network materialisation: every delivery builds a fresh
// net::Message, but the payload is the event's cached wire Buffer —
// encoded once via EnsureEncoded and shared by refcount across all
// subscribers and any retries.
void BM_WireFanout(benchmark::State& state) {
  const size_t subs = size_t(state.range(0));
  net::Simulator sim;
  net::Network net(&sim);
  net::NodeId pub = net.AddNode([](const net::Message&) {});
  uint64_t delivered = 0;
  std::vector<net::NodeId> targets;
  for (size_t i = 0; i < subs; ++i) {
    targets.push_back(net.AddNode([&](const net::Message& m) {
      benchmark::DoNotOptimize(&m);
      ++delivered;
    }));
  }
  net.default_link().latency = 0;
  net.default_link().bandwidth_bytes_per_sec = 0;
  net::SimTransport transport(&net, &sim);
  pubsub::ReliableDeliverer deliverer(&transport);
  pubsub::Event event = MakeSensorEvent();

  uint64_t allocs0 = g_allocs.load();
  uint64_t copied0 = BytesCopiedCounter()->Value();
  uint64_t events = 0;
  for (auto _ : state) {
    for (net::NodeId to : targets) deliverer.Deliver(pub, to, event);
    sim.Run();
    ++events;
  }
  uint64_t allocs = g_allocs.load() - allocs0;
  uint64_t copied = BytesCopiedCounter()->Value() - copied0;

  state.SetItemsProcessed(int64_t(delivered));
  state.counters["subs"] = double(subs);
  state.counters["deliveries_per_s"] =
      benchmark::Counter(double(delivered), benchmark::Counter::kIsRate);
  state.counters["allocs_per_delivery"] =
      double(allocs) / double(std::max<uint64_t>(1, delivered));
  state.counters["bytes_copied_per_event"] =
      double(copied) / double(std::max<uint64_t>(1, events));
}
BENCHMARK(BM_WireFanout)->Arg(64);

// ---------------------------------------------------------------- tuple copy

// Raw cost of copying the payload record: the flat inline-vector Tuple
// copies as one contiguous block (plus its string values) instead of
// rehashing an unordered_map.
void BM_TupleCopy(benchmark::State& state) {
  pubsub::Event event = MakeSensorEvent();
  for (auto _ : state) {
    stream::Tuple copy = event.payload;
    benchmark::DoNotOptimize(&copy);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_TupleCopy);

// ---------------------------------------------------------------- slab reuse

// Steady-state payload allocation through the arena: each iteration
// copies a payload into a slab and drops it; after warm-up every
// allocation is served from the free list, so the event path stops
// touching the heap.
void BM_PayloadSlabReuse(benchmark::State& state) {
  const std::string payload_bytes(400, 'p');
  common::BufferArena& arena = runtime::BufferPool::payload_arena();
  // Warm the free list so the loop measures the steady state.
  { common::Buffer warm = runtime::BufferPool::AllocatePayload(payload_bytes); }
  uint64_t reused0 = arena.slabs_reused();
  uint64_t allocs0 = g_allocs.load();
  for (auto _ : state) {
    common::Buffer b = runtime::BufferPool::AllocatePayload(payload_bytes);
    benchmark::DoNotOptimize(&b);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
  state.counters["slab_reuse_ratio"] =
      double(arena.slabs_reused() - reused0) / double(state.iterations());
  state.counters["allocs_per_iter"] =
      double(g_allocs.load() - allocs0) / double(state.iterations());
}
BENCHMARK(BM_PayloadSlabReuse);

}  // namespace

DELUGE_BENCH_MAIN();
