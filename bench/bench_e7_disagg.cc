// E7 — Section IV-E-2 / Fig. 7: device–cloud–storage disaggregation.
//
// Claims validated: (a) offloading pre-aggregation to the device cuts
// end-to-end latency until the device compute budget binds; (b) the
// semantics-aware buffer pool keeps physical-space pages hot under mixed
// pressure; (c) the elastic executor tier absorbs a flash-sale burst.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "common/rng.h"
#include "query/optimizer.h"
#include "runtime/buffer_pool.h"
#include "runtime/elastic_executor.h"

namespace {

using namespace deluge;         // NOLINT
using namespace deluge::query;  // NOLINT
using namespace deluge::runtime;  // NOLINT

std::vector<PlanStage> IngestPipeline() {
  return {
      {"sense", 1.0, 200000, /*device_only=*/true, false},
      {"decode", 8.0, 80000, false, false},
      {"clean", 6.0, 40000, false, false},
      {"aggregate", 12.0, 1000, false, false},
      {"mirror-apply", 30.0, 800, false, /*cloud_only=*/true},
  };
}

// Latency of the best feasible plan as the device budget sweeps — the
// Fig. 7 story: more device-side computation, less uplink traffic.
void BM_DeviceOffloadSweep(benchmark::State& state) {
  DeviceCloudModel model;
  model.device_speed = 1.0;
  model.cloud_speed = 20.0;
  model.uplink_bytes_per_ms = 625.0;  // 5 Mbps uplink
  model.device_work_budget = double(state.range(0));
  DevicePlanOptimizer opt(model);
  auto stages = IngestPipeline();
  PlacedPlan plan;
  for (auto _ : state) {
    plan = opt.Optimize(stages);
    benchmark::DoNotOptimize(plan.latency_ms);
  }
  int device_stages = 0;
  for (auto p : plan.placements) {
    device_stages += (p == Placement::kDevice);
  }
  state.counters["device_budget"] = double(state.range(0));
  state.counters["latency_ms"] = plan.latency_ms;
  state.counters["device_stages"] = double(device_stages);
  state.counters["uplink_kb"] = double(plan.bytes_uplinked) / 1024.0;
}
BENCHMARK(BM_DeviceOffloadSweep)->Arg(1)->Arg(10)->Arg(20)->Arg(30)->Arg(100)
    ->Unit(benchmark::kNanosecond);

// Buffer pool: hit ratio for physical-space pages under virtual-page
// flood, space-aware vs space-blind (virtual_share=1.0 disables the
// protection and priority collapses to plain LRU behaviour).
void BM_SemanticBufferPool(benchmark::State& state) {
  const bool space_aware = state.range(0) == 1;
  Rng rng(7);
  uint64_t physical_hits = 0, physical_gets = 0;
  for (auto _ : state) {
    BufferPool pool(1000 * 4096,
                    [](const std::string&) { return std::string(4096, 'x'); },
                    space_aware ? 0.25 : 1.0);
    // Working set: 300 hot physical pages + 5000 cold virtual pages.
    for (int op = 0; op < 30000; ++op) {
      std::string data;
      if (rng.Bernoulli(0.4)) {
        std::string id = "phys" + std::to_string(rng.Zipf(300, 0.9));
        bool hit = pool.Contains(id);
        pool.Get(id, stream::Space::kPhysical, &data);
        physical_hits += hit;
        ++physical_gets;
      } else {
        std::string id = "virt" + std::to_string(rng.Uniform(5000));
        pool.Get(id, stream::Space::kVirtual, &data);
      }
    }
  }
  state.counters["space_aware"] = double(state.range(0));
  state.counters["phys_hit_pct"] =
      100.0 * double(physical_hits) / double(std::max<uint64_t>(1, physical_gets));
}
BENCHMARK(BM_SemanticBufferPool)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Elastic executors absorbing a flash-sale burst (the paper's "Black
// Friday in metaverse shops" example): fixed pool vs elastic pool.
void BM_FlashSaleElasticity(benchmark::State& state) {
  const bool elastic = state.range(0) == 1;
  Histogram latency;
  double executor_seconds = 0;
  for (auto _ : state) {
    net::Simulator sim;
    ElasticOptions opts;
    opts.min_executors = 4;
    opts.max_executors = elastic ? 64 : 4;
    opts.scale_out_delay = 200 * kMicrosPerMilli;
    opts.evaluate_every = 50 * kMicrosPerMilli;
    ElasticExecutorPool pool(&sim, opts);
    Rng rng(11);
    // Background trickle, then a 10x burst.
    Micros t = 0;
    for (int i = 0; i < 500; ++i) {
      t += Micros(rng.Exponential(1.0 / 10000.0));
      sim.At(t, [&pool] { pool.Submit(5 * kMicrosPerMilli); });
    }
    Micros burst_start = t;
    for (int i = 0; i < 3000; ++i) {
      Micros at = burst_start + Micros(rng.Exponential(1.0 / 1000.0)) * i;
      sim.At(at, [&pool] { pool.Submit(5 * kMicrosPerMilli); });
    }
    sim.Run();
    latency.Merge(pool.stats().task_latency);
    executor_seconds += pool.stats().executor_time / double(kMicrosPerSecond);
  }
  state.counters["elastic"] = double(state.range(0));
  state.counters["task_p99_ms"] = latency.P99() / double(kMicrosPerMilli);
  state.counters["executor_s"] =
      executor_seconds / double(state.iterations());
}
BENCHMARK(BM_FlashSaleElasticity)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
