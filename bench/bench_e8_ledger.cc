// E8 — Section IV-D: verifiable-ledger proof sizes and verification cost.
//
// Claims validated: inclusion/consistency proofs are O(log n) digests and
// verify in microseconds, so third-party auditing stays cheap even at
// metaverse transaction volumes — the "efficient proof sizes" requirement
// the paper sets for verifiable ledger databases.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <memory>

#include "common/clock.h"
#include "common/rng.h"
#include "ledger/ledger.h"

namespace {

using namespace deluge;          // NOLINT
using namespace deluge::ledger;  // NOLINT

std::unique_ptr<TransparencyLedger> BuildLedger(size_t entries,
                                                SimClock* clock) {
  auto ledger = std::make_unique<TransparencyLedger>(clock);
  for (size_t i = 0; i < entries; ++i) {
    ledger->Append("txn{buyer:" + std::to_string(i % 997) +
                   ",item:" + std::to_string(i) + "}");
  }
  return ledger;
}

void BM_AppendThroughput(benchmark::State& state) {
  SimClock clock;
  TransparencyLedger ledger(&clock);
  uint64_t n = 0;
  for (auto _ : state) {
    ledger.Append("txn" + std::to_string(n++));
  }
  state.SetItemsProcessed(int64_t(n));
}
BENCHMARK(BM_AppendThroughput)->Unit(benchmark::kNanosecond);

void BM_InclusionProof(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  SimClock clock;
  auto ledger = BuildLedger(n, &clock);
  Rng rng(3);
  size_t proof_digests = 0;
  uint64_t proofs = 0;
  for (auto _ : state) {
    size_t index = size_t(rng.Uniform(n));
    auto proof = ledger->ProveInclusion(index, n);
    proof_digests += proof.size();
    ++proofs;
    benchmark::DoNotOptimize(proof.data());
  }
  state.counters["log_entries"] = double(n);
  state.counters["proof_digests"] = double(proof_digests) / double(proofs);
  state.counters["proof_bytes"] =
      32.0 * double(proof_digests) / double(proofs);
}
BENCHMARK(BM_InclusionProof)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_InclusionVerify(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  SimClock clock;
  auto ledger = BuildLedger(n, &clock);
  TreeHead head = ledger->PublishHead();
  Rng rng(5);
  // Pre-generate proofs; measure verification only (the auditor's cost).
  std::vector<std::pair<size_t, std::vector<Digest>>> proofs;
  for (int i = 0; i < 64; ++i) {
    size_t index = size_t(rng.Uniform(n));
    proofs.emplace_back(index, ledger->ProveInclusion(index, n));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    const auto& [index, proof] = proofs[cursor++ % proofs.size()];
    std::string data;
    ledger->GetEntry(index, &data);
    bool ok = MerkleTree::VerifyInclusion(MerkleTree::HashLeaf(data), index,
                                          n, proof, head.root);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["log_entries"] = double(n);
}
BENCHMARK(BM_InclusionVerify)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_ConsistencyProofAndAudit(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  SimClock clock;
  auto ledger = BuildLedger(n, &clock);
  Auditor auditor;
  // The auditor last saw a non-aligned prefix; reconstruct that head
  // from the same prefix of records.
  TransparencyLedger half(&clock);
  for (size_t i = 0; i < n / 3 + 1; ++i) {
    std::string data;
    ledger->GetEntry(i, &data);
    half.Append(data);
  }
  TreeHead old_head = half.PublishHead();  // a non-aligned prefix size
  auditor.ObserveHead(old_head, {});

  TreeHead new_head = ledger->PublishHead();
  size_t proof_digests = 0;
  uint64_t audits = 0;
  for (auto _ : state) {
    auto proof = ledger->ProveConsistency(n / 3 + 1, n);
    proof_digests = proof.size();
    Auditor fresh = auditor;  // each audit starts from the old baseline
    Status s = fresh.ObserveHead(new_head, proof);
    benchmark::DoNotOptimize(s.ok());
    ++audits;
  }
  state.counters["log_entries"] = double(n);
  state.counters["consistency_digests"] = double(proof_digests);
}
BENCHMARK(BM_ConsistencyProofAndAudit)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
