// E6 — Section IV-E-1: distributed transactions across data centers.
//
// Claims validated: (a) commit latency is dominated by inter-DC RTT and
// degrades linearly with it; (b) the single-round protocol halves
// decision latency vs 2PC, with the gap growing with RTT — the paper's
// motivation for new decentralized commit protocols ([51], [86]).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <memory>
#include <set>

#include "net/topology.h"
#include "txn/distributed.h"

namespace {

using namespace deluge;       // NOLINT
using namespace deluge::txn;  // NOLINT

struct Cluster {
  net::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<net::SimTransport> transport;
  std::vector<std::unique_ptr<ShardNode>> shards;
  std::unique_ptr<DistributedTxnSystem> system;
};

std::unique_ptr<Cluster> MakeCluster(size_t num_dcs, Micros inter_dc_rtt) {
  auto c = std::make_unique<Cluster>();
  c->network = std::make_unique<net::Network>(&c->sim);
  c->transport =
      std::make_unique<net::SimTransport>(c->network.get(), &c->sim);
  // One shard per DC; the coordinator lives in DC 0.
  std::vector<ShardNode*> ptrs;
  for (size_t i = 0; i < num_dcs; ++i) {
    c->shards.push_back(std::make_unique<ShardNode>(c->transport.get()));
    ptrs.push_back(c->shards.back().get());
  }
  c->system =
      std::make_unique<DistributedTxnSystem>(c->transport.get(), ptrs);
  // Coordinator <-> shard 0 is local; others are inter-DC.
  net::LinkOptions local = net::LinkPresets::IntraDc();
  net::LinkOptions wan = net::LinkPresets::InterDc(inter_dc_rtt / 2);
  for (size_t i = 0; i < num_dcs; ++i) {
    c->network->SetBidirectional(c->system->coordinator_node(),
                                 c->shards[i]->node_id(),
                                 i == 0 ? local : wan);
  }
  return c;
}

void RunTxns(Cluster* c, CommitProtocol protocol, int count,
             int keys_per_txn) {
  Rng rng(13);
  for (int i = 0; i < count; ++i) {
    std::vector<WriteOp> writes;
    for (int k = 0; k < keys_per_txn; ++k) {
      writes.push_back({"key" + std::to_string(rng.Uniform(100000)), "v"});
    }
    c->system->Submit(writes, protocol, [](const TxnResult&) {});
    c->sim.Run();  // closed loop: one txn at a time
  }
}

void BM_CommitLatencyVsRtt(benchmark::State& state) {
  const Micros rtt = state.range(0) * kMicrosPerMilli;
  const CommitProtocol protocol = CommitProtocol(state.range(1));
  Histogram latency;
  uint64_t committed = 0, aborted = 0;
  for (auto _ : state) {
    auto cluster = MakeCluster(4, rtt);
    RunTxns(cluster.get(), protocol, 50, 4);
    latency.Merge(cluster->system->commit_latency());
    committed += cluster->system->committed();
    aborted += cluster->system->aborted();
  }
  state.counters["rtt_ms"] = double(state.range(0));
  state.counters["protocol"] = double(state.range(1));  // 0=2PC, 1=1RT
  state.counters["commit_p50_ms"] = latency.P50() / double(kMicrosPerMilli);
  state.counters["commit_p99_ms"] = latency.P99() / double(kMicrosPerMilli);
  state.counters["abort_pct"] =
      100.0 * double(aborted) / double(std::max<uint64_t>(1, committed + aborted));
}
// Args: {inter-DC RTT ms, protocol}.
BENCHMARK(BM_CommitLatencyVsRtt)
    ->Args({1, 0})->Args({1, 1})
    ->Args({10, 0})->Args({10, 1})
    ->Args({50, 0})->Args({50, 1})
    ->Args({200, 0})->Args({200, 1})
    ->Unit(benchmark::kMillisecond);

// Cross-shard fan-out: latency vs the number of participant DCs per
// transaction.  Prepare rounds are parallel, so latency stays ~flat in
// fan-out while the message count grows linearly — the WAN RTT, not the
// participant count, is the cost (the paper's "non-negligible
// inter-data-center network latency" point).
void BM_LatencyVsFanout(benchmark::State& state) {
  const int fanout = int(state.range(0));
  Histogram latency;
  uint64_t messages = 0, txns = 0;
  for (auto _ : state) {
    auto cluster = MakeCluster(8, 40 * kMicrosPerMilli);
    for (int i = 0; i < 30; ++i) {
      // One write per target shard: probe keys until `fanout` distinct
      // shards are covered.
      std::vector<WriteOp> writes;
      std::set<size_t> shards;
      int probe = 0;
      while (int(shards.size()) < fanout) {
        std::string key =
            "k" + std::to_string(i) + "_" + std::to_string(probe++);
        size_t s = cluster->system->ShardOf(key);
        if (shards.insert(s).second) writes.push_back({key, "v"});
      }
      cluster->system->Submit(writes, CommitProtocol::kTwoPhase,
                              [](const TxnResult&) {});
      cluster->sim.Run();
      ++txns;
    }
    latency.Merge(cluster->system->commit_latency());
    messages += cluster->network->stats().messages_sent;
  }
  state.counters["fanout"] = double(fanout);
  state.counters["commit_p50_ms"] = latency.P50() / double(kMicrosPerMilli);
  state.counters["msgs_per_txn"] =
      double(messages) / double(std::max<uint64_t>(1, txns));
}
BENCHMARK(BM_LatencyVsFanout)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
