// E11 — Sections IV-B / IV-D: privacy-utility tradeoffs and federated
// collaboration under heterogeneity.
//
// Claims validated: (a) DP error scales as 1/epsilon (the knob the paper
// says must balance "privacy risk and data utility"); (b) FedAvg degrades
// gracefully with Non-IID skew; (c) incentive weighting that excludes
// free riders recovers accuracy.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cmath>

#include "privacy/dp.h"
#include "privacy/federated.h"
#include "privacy/incentive.h"

namespace {

using namespace deluge;           // NOLINT
using namespace deluge::privacy;  // NOLINT

// DP utility: mean absolute error of noisy counting-query answers vs
// epsilon (x100 in the arg to keep integers).
void BM_DpErrorVsEpsilon(benchmark::State& state) {
  const double epsilon = double(state.range(0)) / 100.0;
  LaplaceMechanism mech(1.0, 29);
  double abs_err_sum = 0;
  uint64_t n = 0;
  for (auto _ : state) {
    PrivacyBudget budget(epsilon);
    auto r = mech.Release(1000.0, epsilon, &budget);
    abs_err_sum += std::fabs(r.value() - 1000.0);
    ++n;
  }
  state.counters["epsilon"] = epsilon;
  state.counters["mean_abs_err"] = abs_err_sum / double(std::max<uint64_t>(1, n));
}
BENCHMARK(BM_DpErrorVsEpsilon)->Arg(10)->Arg(50)->Arg(100)->Arg(500)
    ->Unit(benchmark::kNanosecond);

// Randomized-response population estimates: error vs epsilon and cohort
// size (location-presence queries on metaverse users).
void BM_RandomizedResponseUtility(benchmark::State& state) {
  const double epsilon = double(state.range(0)) / 100.0;
  const int cohort = int(state.range(1));
  Rng rng(31);
  double err_sum = 0;
  uint64_t trials = 0;
  for (auto _ : state) {
    RandomizedResponse rr(epsilon, rng.Next());
    const double truth = 0.25;
    int yes = 0;
    for (int i = 0; i < cohort; ++i) {
      yes += rr.Respond(rng.Bernoulli(truth));
    }
    err_sum += std::fabs(rr.EstimateTrueFraction(double(yes) / cohort) -
                         truth);
    ++trials;
  }
  state.counters["epsilon"] = epsilon;
  state.counters["cohort"] = double(cohort);
  state.counters["mean_abs_err"] = err_sum / double(std::max<uint64_t>(1, trials));
}
BENCHMARK(BM_RandomizedResponseUtility)
    ->Args({50, 1000})->Args({100, 1000})->Args({300, 1000})
    ->Args({100, 100})->Args({100, 10000})
    ->Unit(benchmark::kMicrosecond);

// FedAvg convergence vs Non-IID skew (x10 in the arg).
void BM_FedAvgNonIid(benchmark::State& state) {
  const double skew = double(state.range(0)) / 10.0;
  double distance = 0;
  for (auto _ : state) {
    FederationConfig config;
    config.num_clients = 10;
    config.noniid_skew = skew;
    config.seed = 37;
    Federation fed = Federation::Synthesize(config);
    FederatedAveraging::Options opts;
    // Conservative step size: stays in the stable regime even at high
    // skew (feature variance grows with skew^2), so the sweep isolates
    // the Non-IID averaging effect from SGD divergence.
    opts.learning_rate = 0.002;
    FederatedAveraging fedavg(&fed, opts);
    for (int round = 0; round < 25; ++round) fedavg.Round();
    distance = fedavg.DistanceToTruth();
  }
  state.counters["skew"] = skew;
  state.counters["dist_to_truth"] = distance;
}
BENCHMARK(BM_FedAvgNonIid)->Arg(0)->Arg(10)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

// Free-rider effect: federation accuracy with (a) everyone weighted
// equally vs (b) leave-one-out incentive weights zeroing free riders.
void BM_IncentiveWeighting(benchmark::State& state) {
  const bool incentive_weighted = state.range(0) == 1;
  double distance = 0;
  for (auto _ : state) {
    FederationConfig config;
    config.num_clients = 6;
    config.rows_per_client = 80;
    config.seed = 41;
    Federation fed = Federation::Synthesize(config);
    // Two free riders submit noise.
    Rng rng(43);
    for (size_t c : {4u, 5u}) {
      for (auto& y : fed.clients[c].ys) y = rng.UniformDouble(-50, 50);
    }
    std::vector<double> weights(6, 1.0);
    if (incentive_weighted) {
      IncentiveScorer scorer(6, [&](const std::vector<size_t>& coalition) {
        if (coalition.empty()) return -1e6;
        Federation sub;
        sub.true_weights = fed.true_weights;
        for (size_t c : coalition) sub.clients.push_back(fed.clients[c]);
        FederatedAveraging::Options opts;
        FederatedAveraging fa(&sub, opts);
        for (int r = 0; r < 4; ++r) fa.Round();
        double loss = 0;
        for (size_t c = 0; c < 4; ++c) loss += fa.LossOn(fed.clients[c]);
        return -loss;
      });
      auto scores = scorer.LeaveOneOut();
      for (size_t flagged : IncentiveScorer::FlagFreeRiders(scores)) {
        weights[flagged] = 0.0;
      }
    }
    FederatedAveraging::Options opts;
    FederatedAveraging fedavg(&fed, opts);
    for (int round = 0; round < 15; ++round) fedavg.Round(weights);
    distance = fedavg.DistanceToTruth();
  }
  state.counters["incentive_weighted"] = double(state.range(0));
  state.counters["dist_to_truth"] = distance;
}
BENCHMARK(BM_IncentiveWeighting)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
