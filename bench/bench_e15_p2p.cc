// E15 (extension) — Section IV-E: peer-to-peer search for decentralized
// metaverse data ("P2P search methods may be applicable here
// [42][45][83]"; Section IV-E-1's worldwide-decentralized databases).
//
// Claims validated: Chord-style overlay lookups take O(log n) hops with
// O(log n) routing state per peer, vs O(n) state for a full directory or
// O(n) messages for flooding — the property that lets a decentralized
// metaverse database scale membership without global coordination.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <memory>

#include "p2p/chord.h"

namespace {

using namespace deluge;       // NOLINT
using namespace deluge::p2p;  // NOLINT

struct Overlay {
  net::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::SimTransport> transport;
  std::unique_ptr<ChordRing> ring;
  std::vector<RingId> peers;
};

std::unique_ptr<Overlay> MakeOverlay(size_t n, Micros latency) {
  auto o = std::make_unique<Overlay>();
  o->net = std::make_unique<net::Network>(&o->sim);
  o->net->default_link().latency = latency;
  o->net->default_link().bandwidth_bytes_per_sec = 0;
  o->transport = std::make_unique<net::SimTransport>(o->net.get(), &o->sim);
  o->ring = std::make_unique<ChordRing>(o->transport.get());
  for (size_t i = 0; i < n; ++i) {
    o->peers.push_back(o->ring->AddPeer("peer" + std::to_string(i)));
  }
  return o;
}

void BM_LookupHopsVsRingSize(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  auto overlay = MakeOverlay(n, 20 * kMicrosPerMilli);
  Rng rng(3);
  Histogram latency;
  for (auto _ : state) {
    RingId origin = overlay->peers[rng.Uniform(overlay->peers.size())];
    LookupResult result;
    overlay->ring->Get(origin, "key" + std::to_string(rng.Next() % 100000),
                       [&](const LookupResult& r) { result = r; });
    overlay->sim.Run();
    latency.Record(result.latency);
  }
  state.counters["peers"] = double(n);
  state.counters["mean_hops"] = overlay->ring->hop_histogram().mean();
  state.counters["p99_hops"] = overlay->ring->hop_histogram().P99();
  state.counters["virtual_p50_ms"] = latency.P50() / double(kMicrosPerMilli);
}
BENCHMARK(BM_LookupHopsVsRingSize)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Churn cost: peers joining/leaving move only the key ranges they own
// (O(keys/n) per event), not the whole keyspace.
void BM_ChurnKeyMigration(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  auto overlay = MakeOverlay(n, kMicrosPerMilli);
  Rng rng(7);
  // Preload 2000 keys.
  for (int i = 0; i < 2000; ++i) {
    overlay->ring->Put(overlay->peers[0], "key" + std::to_string(i), "v",
                       [](const LookupResult&) {});
    overlay->sim.Run();
  }
  int joined = 0;
  for (auto _ : state) {
    overlay->ring->AddPeer("new" + std::to_string(joined++));
  }
  // Verify integrity after churn: sample keys still resolve.
  int found = 0;
  for (int i = 0; i < 100; ++i) {
    overlay->ring->Get(overlay->peers[0],
                       "key" + std::to_string(rng.Uniform(2000)),
                       [&](const LookupResult& r) { found += r.found; });
    overlay->sim.Run();
  }
  state.counters["peers"] = double(n);
  state.counters["sample_found_pct"] = double(found);
}
BENCHMARK(BM_ChurnKeyMigration)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
