#ifndef DELUGE_BENCH_BENCH_JSON_H_
#define DELUGE_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

// Machine-readable benchmark results: every `bench_e*` binary appends
// one JSON line per (run, metric) to `bench_results.json` — the file
// the perf-trajectory tooling diffs across PRs.  Use
// `DELUGE_BENCH_MAIN()` in place of `BENCHMARK_MAIN()` to get both the
// normal console output and the JSONL sidecar.

namespace deluge::bench {

/// Target file: $DELUGE_BENCH_JSON, or ./bench_results.json.
inline std::string ResultsPath() {
  const char* env = std::getenv("DELUGE_BENCH_JSON");
  return (env != nullptr && *env != '\0') ? env : "bench_results.json";
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Appends `{"bench": ..., "metric": ..., "value": ...}` lines — one
/// per user counter plus the per-iteration real time — for every
/// finished benchmark run.  Plugged into `RunSpecifiedBenchmarks` as
/// the file reporter alongside the default console reporter.
class JsonLinesReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonLinesReporter(const std::string& path)
      : out_(path, std::ios::app) {}

  bool ReportContext(const Context&) override { return out_.good(); }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = JsonEscape(run.benchmark_name());
      double iters = run.iterations > 0 ? double(run.iterations) : 1.0;
      Emit(name, "real_time_s_per_iter", run.real_accumulated_time / iters);
      for (const auto& [metric, counter] : run.counters) {
        Emit(name, JsonEscape(metric), double(counter));
      }
    }
    out_.flush();
  }

 private:
  void Emit(const std::string& bench, const std::string& metric,
            double value) {
    out_ << "{\"bench\":\"" << bench << "\",\"metric\":\"" << metric
         << "\",\"value\":" << value << "}\n";
  }

  std::ofstream out_;
};

/// Forwards every callback to the default console reporter and the
/// JSONL reporter.  Runs in the *display* reporter slot because the
/// benchmark library insists `--benchmark_out` accompany any custom
/// file reporter.
class TeeReporter : public benchmark::BenchmarkReporter {
 public:
  TeeReporter(benchmark::BenchmarkReporter* console, JsonLinesReporter* json)
      : console_(console), json_(json) {}

  bool ReportContext(const Context& context) override {
    bool ok = console_->ReportContext(context);
    json_->ReportContext(context);
    return ok;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_->ReportRuns(runs);
    json_->ReportRuns(runs);
  }

  void Finalize() override {
    console_->Finalize();
    json_->Finalize();
  }

 private:
  benchmark::BenchmarkReporter* console_;
  JsonLinesReporter* json_;
};

}  // namespace deluge::bench

/// BENCHMARK_MAIN plus the JSONL file reporter.
#define DELUGE_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                          \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    std::unique_ptr<::benchmark::BenchmarkReporter> console(                 \
        ::benchmark::CreateDefaultDisplayReporter());                       \
    ::deluge::bench::JsonLinesReporter json(::deluge::bench::ResultsPath()); \
    ::deluge::bench::TeeReporter tee(console.get(), &json);                  \
    ::benchmark::RunSpecifiedBenchmarks(&tee);                               \
    ::benchmark::Shutdown();                                                 \
    return 0;                                                                \
  }                                                                          \
  int main(int, char**)

#endif  // DELUGE_BENCH_BENCH_JSON_H_
