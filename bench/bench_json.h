#ifndef DELUGE_BENCH_BENCH_JSON_H_
#define DELUGE_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

// Machine-readable benchmark results: every `bench_e*` binary appends
// one JSON line per (run, metric) to `bench_results.json` — the file
// the perf-trajectory tooling diffs across PRs.  Use
// `DELUGE_BENCH_MAIN()` in place of `BENCHMARK_MAIN()` to get both the
// normal console output and the JSONL sidecar.  The same main also
// dumps the process-wide `obs::MetricsRegistry` (every counter, gauge,
// and histogram percentile the workload touched) into the same file,
// and — when $DELUGE_TRACE_JSONL is set — any sampled trace spans.

namespace deluge::bench {

/// Target file: $DELUGE_BENCH_JSON, or ./bench_results.json.
inline std::string ResultsPath() {
  const char* env = std::getenv("DELUGE_BENCH_JSON");
  return (env != nullptr && *env != '\0') ? env : "bench_results.json";
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Appends `{"bench": ..., "metric": ..., "value": ...}` lines — one
/// per user counter plus the per-iteration real time — for every
/// finished benchmark run.  Plugged into `RunSpecifiedBenchmarks` as
/// the file reporter alongside the default console reporter.
class JsonLinesReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonLinesReporter(const std::string& path)
      : out_(path, std::ios::app) {}

  bool ReportContext(const Context&) override { return out_.good(); }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = JsonEscape(run.benchmark_name());
      double iters = run.iterations > 0 ? double(run.iterations) : 1.0;
      Emit(name, "real_time_s_per_iter", run.real_accumulated_time / iters);
      for (const auto& [metric, counter] : run.counters) {
        Emit(name, JsonEscape(metric), double(counter));
      }
    }
    out_.flush();
  }

 private:
  void Emit(const std::string& bench, const std::string& metric,
            double value) {
    out_ << "{\"bench\":\"" << bench << "\",\"metric\":\"" << metric
         << "\",\"value\":" << value << "}\n";
  }

  std::ofstream out_;
};

/// Forwards every callback to the default console reporter and the
/// JSONL reporter.  Runs in the *display* reporter slot because the
/// benchmark library insists `--benchmark_out` accompany any custom
/// file reporter.
class TeeReporter : public benchmark::BenchmarkReporter {
 public:
  TeeReporter(benchmark::BenchmarkReporter* console, JsonLinesReporter* json)
      : console_(console), json_(json) {}

  bool ReportContext(const Context& context) override {
    bool ok = console_->ReportContext(context);
    json_->ReportContext(context);
    return ok;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_->ReportRuns(runs);
    json_->ReportRuns(runs);
  }

  void Finalize() override {
    console_->Finalize();
    json_->Finalize();
  }

 private:
  benchmark::BenchmarkReporter* console_;
  JsonLinesReporter* json_;
};

/// Appends the full `obs::MetricsRegistry` snapshot to the results
/// file, one line per exported value, under the pseudo-bench name
/// "registry/<binary>".  Counters and gauges emit their value;
/// histograms fan out into count/mean/p50/p95/p99/max lines, so
/// bench_results.json carries tail latencies from *inside* the
/// subsystems (storage commit_us, per-class delivery latency, …), not
/// just the end-to-end numbers the bench loop can see.
inline void DumpRegistry(const std::string& path, const std::string& binary) {
  std::ofstream out(path, std::ios::app);
  if (!out.good()) return;
  const std::string bench = JsonEscape("registry/" + binary);
  auto emit = [&](const std::string& metric, double value) {
    out << "{\"bench\":\"" << bench << "\",\"metric\":\""
        << JsonEscape(metric) << "\",\"value\":" << value << "}\n";
  };
  for (const auto& sample : ::deluge::obs::MetricsRegistry::Global()
           .Snapshot()) {
    const std::string key = sample.Key();
    if (sample.kind == ::deluge::obs::MetricKind::kHistogram) {
      if (sample.hist.count() == 0) continue;
      emit(key + ".count", double(sample.hist.count()));
      emit(key + ".mean", sample.hist.mean());
      emit(key + ".p50", sample.hist.P50());
      emit(key + ".p95", sample.hist.P95());
      emit(key + ".p99", sample.hist.P99());
      emit(key + ".max", double(sample.hist.max()));
    } else {
      emit(key, sample.value);
    }
  }
  out.flush();
}

/// When $DELUGE_TRACE_SAMPLE is a positive integer n, samples one in n
/// root spans for the whole run (tracing is otherwise disabled, its
/// default).
inline void MaybeEnableTracing() {
  const char* env = std::getenv("DELUGE_TRACE_SAMPLE");
  if (env == nullptr || *env == '\0') return;
  long n = std::atol(env);
  if (n > 0) ::deluge::obs::Tracer::Global().Enable(uint64_t(n));
}

/// When $DELUGE_TRACE_JSONL names a file, dumps any spans the global
/// tracer sampled during the run (no-op while tracing is disabled,
/// which is the default).
inline void MaybeDumpTraces() {
  const char* env = std::getenv("DELUGE_TRACE_JSONL");
  if (env == nullptr || *env == '\0') return;
  ::deluge::obs::Tracer::Global().DumpJsonl(env);
}

/// argv[0] without its directory prefix — the registry pseudo-bench id.
inline std::string BinaryName(const char* argv0) {
  std::string name = (argv0 != nullptr) ? argv0 : "bench";
  size_t slash = name.find_last_of('/');
  return slash == std::string::npos ? name : name.substr(slash + 1);
}

}  // namespace deluge::bench

/// BENCHMARK_MAIN plus the JSONL file reporter, registry dump, and the
/// optional trace dump.
#define DELUGE_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                          \
    std::string binary = ::deluge::bench::BinaryName(argc > 0 ? argv[0]      \
                                                              : nullptr);    \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    std::unique_ptr<::benchmark::BenchmarkReporter> console(                 \
        ::benchmark::CreateDefaultDisplayReporter());                       \
    ::deluge::bench::JsonLinesReporter json(::deluge::bench::ResultsPath()); \
    ::deluge::bench::TeeReporter tee(console.get(), &json);                  \
    ::deluge::bench::MaybeEnableTracing();                                   \
    ::benchmark::RunSpecifiedBenchmarks(&tee);                               \
    ::deluge::bench::DumpRegistry(::deluge::bench::ResultsPath(), binary);   \
    ::deluge::bench::MaybeDumpTraces();                                      \
    ::benchmark::Shutdown();                                                 \
    return 0;                                                                \
  }                                                                          \
  int main(int, char**)

#endif  // DELUGE_BENCH_BENCH_JSON_H_
