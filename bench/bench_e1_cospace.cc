// E1 — Fig. 1 / Section III: the co-space engine's bidirectional
// synchronization throughput as the entity population grows.
//
// Claim validated: ingest cost grows ~linearly with entities (constant
// per-update work), so the engine sustains high update rates at metaverse
// populations; coherency contracts shed most mirror traffic.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/engine.h"
#include "core/sensors.h"

namespace {

using namespace deluge;           // NOLINT
using namespace deluge::core;     // NOLINT

void BM_CoSpaceIngest(benchmark::State& state) {
  const size_t entities = size_t(state.range(0));
  const geo::AABB world({0, 0, 0}, {5000, 5000, 100});

  EngineOptions opts;
  opts.world_bounds = world;
  opts.default_contract = {2.0, kMicrosPerSecond};
  SimClock clock;
  CoSpaceEngine engine(opts, &clock);

  SensorFleetOptions fleet_opts;
  fleet_opts.num_entities = entities;
  fleet_opts.max_speed = 5.0;
  SensorFleet fleet(world, fleet_opts);
  for (EntityId id = 1; id <= entities; ++id) {
    Entity e;
    e.id = id;
    e.position = fleet.TruePosition(id);
    engine.SpawnPhysical(e);
  }

  Micros now = 0;
  uint64_t updates = 0;
  for (auto _ : state) {
    now += 100 * kMicrosPerMilli;
    auto readings = fleet.Tick(100 * kMicrosPerMilli, now);
    for (const auto& r : readings) {
      engine.IngestPhysicalPosition(r.entity, r.position, r.t);
    }
    updates += readings.size();
  }
  state.SetItemsProcessed(int64_t(updates));
  state.counters["entities"] = double(entities);
  state.counters["mirrored_pct"] =
      100.0 * double(engine.stats().mirrored_updates) /
      double(std::max<uint64_t>(1, engine.stats().physical_updates));
  state.counters["updates_per_s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoSpaceIngest)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// Virtual->physical direction: command relay cost vs region size.
void BM_CoSpaceCommandRelay(benchmark::State& state) {
  const double region_half = double(state.range(0));
  const geo::AABB world({0, 0, 0}, {5000, 5000, 100});
  EngineOptions opts;
  opts.world_bounds = world;
  SimClock clock;
  CoSpaceEngine engine(opts, &clock);
  Rng rng(5);
  for (EntityId id = 1; id <= 20000; ++id) {
    Entity e;
    e.id = id;
    e.position = {rng.UniformDouble(0, 5000), rng.UniformDouble(0, 5000), 50};
    engine.SpawnPhysical(e);
  }
  uint64_t relayed = 0;
  engine.OnPhysicalCommand(
      [&](EntityId, const stream::Tuple&) { ++relayed; });
  stream::Tuple cmd;
  cmd.Set("type", std::string("air-raid"));
  size_t affected = 0;
  for (auto _ : state) {
    geo::Vec3 c{rng.UniformDouble(500, 4500), rng.UniformDouble(500, 4500),
                50};
    affected += engine.IssueVirtualCommand(geo::AABB::Cube(c, region_half),
                                           cmd);
  }
  state.counters["affected_per_cmd"] =
      double(affected) / double(state.iterations());
}
BENCHMARK(BM_CoSpaceCommandRelay)->Arg(50)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
