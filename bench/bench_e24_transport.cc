// E24 — transport abstraction: the same protocol objects over the
// simulated network and over real sockets as separate OS processes.
//
// Two workloads, each run on both `net::Transport` backends:
//
//  1. Replica quorum (E22's shape): a `ReplicatedStore` coordinator
//     quorums N=3, R=W=2 over six replicas.  In-sim the replicas are
//     in-process; over sockets they live in two forked
//     `tools/deluge_node` child processes reached via Unix-domain
//     sockets on loopback.  Claims: (a) quorum outcomes match — every
//     write and read that succeeds in-sim succeeds over the wire;
//     (b) zero acked-write loss on either backend (audited with R=N
//     reads); (c) the socket path reports real wall-clock
//     throughput/latency, not virtual time.
//
//  2. Fan-out (E18's shape): one driver sprays fixed-size events at
//     six sink endpoints split across the two child processes, then
//     audits delivery by querying each sink's counters over the wire.
//     Claims: loopback stream delivery is lossless (delivered ==
//     sent, both counted end-to-end across process boundaries) and
//     wall-clock throughput is reported.
//
// The children are forked from this binary (`tools/deluge_node`,
// located next to the bench in the build tree), handed the shared
// cluster config file, and SIGTERMed on teardown; PDEATHSIG in the
// host reaps them even if the bench dies.

#include <benchmark/benchmark.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_json.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/thread_pool.h"
#include "net/network.h"
#include "net/node_config.h"
#include "net/simulator.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "replica/node.h"
#include "replica/replicated_store.h"
#include "storage/format.h"

namespace {

using namespace deluge;           // NOLINT
using namespace deluge::replica;  // NOLINT

constexpr int kReplicas = 6;       // r0..r5, three per child process
constexpr int kQuorumOps = 400;    // alternating write / read
constexpr int kKeys = 64;
constexpr int kWindow = 8;         // outstanding ops over the socket path

constexpr int kSinks = 6;          // three per child process
constexpr int kFanPerSink = 2000;  // messages sprayed at each sink
constexpr size_t kFanPayload = 512;

std::string ReplicaName(int i) { return "r" + std::to_string(i); }

// ----------------------------------------------------------- child hosts

/// `tools/deluge_node`, resolved relative to this binary's build dir.
std::string NodeHostBinary() {
  const char* env = std::getenv("DELUGE_NODE_BIN");
  if (env != nullptr && *env != '\0') return env;
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) return "build/tools/deluge_node";
  self[n] = '\0';
  std::string dir(self);
  const size_t slash = dir.find_last_of('/');
  dir.erase(slash == std::string::npos ? 0 : slash);
  return dir + "/../tools/deluge_node";
}

pid_t SpawnNodeHost(const std::string& bin, const std::string& config,
                    uint32_t process) {
  const std::string proc_arg = std::to_string(process);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(bin.c_str(), bin.c_str(), "--config", config.c_str(),
            "--process", proc_arg.c_str(), static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec %s failed: %s\n", bin.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

void StopNodeHosts(std::vector<pid_t>* pids) {
  for (pid_t pid : *pids) {
    if (pid > 0) ::kill(pid, SIGTERM);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (pid_t pid : *pids) {
    if (pid <= 0) continue;
    while (::waitpid(pid, nullptr, WNOHANG) == 0) {
      if (std::chrono::steady_clock::now() > deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  pids->clear();
}

/// Scratch dir for the config file and Unix socket paths.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/deluge_e24_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!path.empty()) {
      const std::string cmd = "rm -rf " + path;
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
};

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// ------------------------------------------------------ quorum workloads

struct QuorumResult {
  uint64_t write_attempts = 0, write_ok = 0;
  uint64_t read_attempts = 0, read_ok = 0;
  uint64_t acked_writes = 0, acked_writes_lost = 0;
  double elapsed_s = 0;     // wall clock (socket backend only)
  double write_p50_ms = 0, write_p99_ms = 0;
  double read_p50_ms = 0, read_p99_ms = 0;
  uint64_t net_messages = 0, net_bytes = 0;
  bool completed = true;
};

ReplicaOptions QuorumOptions() {
  ReplicaOptions opts;
  opts.n = 3;
  opts.r = 2;
  opts.w = 2;
  return opts;
}

/// The E22-shaped workload against a store: alternating writes and
/// reads over a shared key space, then an R=N audit of every acked
/// write.  `issue` schedules op `i`; the backends differ only in how
/// ops are paced and how completion is awaited.
struct QuorumOp {
  bool is_write = false;
  std::string key, value;
};

QuorumOp MakeOp(int i) {
  QuorumOp op;
  op.is_write = i % 2 == 0;
  op.key = "obj" + std::to_string(i % kKeys);
  op.value = "v" + std::to_string(i);
  return op;
}

/// In-sim run: virtual-time open loop, replicas in-process.  Uses the
/// same nullptr-ring store configuration as the socket path, so ring
/// placement (RingIdFor of the same names) is identical on both
/// backends.
QuorumResult RunQuorumSim() {
  net::Simulator sim;
  net::Network net(&sim);
  net.default_link().latency = 2 * kMicrosPerMilli;
  net.default_link().bandwidth_bytes_per_sec = 0;
  net::SimTransport transport(&net, &sim);
  ReplicatedStore store(&transport, /*ring=*/nullptr, QuorumOptions());
  std::vector<uint64_t> rings;
  for (int i = 0; i < kReplicas; ++i) {
    rings.push_back(store.AddReplica(ReplicaName(i)));
  }

  QuorumResult out;
  Histogram write_us, read_us;
  std::map<std::string, std::pair<Version, std::string>> acked;
  for (int i = 0; i < kQuorumOps; ++i) {
    const QuorumOp op = MakeOp(i);
    const Micros at = Micros(i) * 2 * kMicrosPerMilli;
    if (op.is_write) {
      sim.At(at, [&, op, at] {
        ++out.write_attempts;
        store.Put(op.key, op.value, {},
                  [&, op, at](const Status& s, Version ver) {
                    if (!s.ok()) return;
                    ++out.write_ok;
                    write_us.Record(sim.Now() - at);
                    auto& slot = acked[op.key];
                    if (slot.first < ver) slot = {ver, op.value};
                  });
      });
    } else {
      sim.At(at, [&, op, at] {
        ++out.read_attempts;
        store.Get(op.key, {},
                  [&, at](const Status& s, const std::string&, Version) {
                    if (!s.ok() && !s.IsNotFound()) return;
                    ++out.read_ok;
                    read_us.Record(sim.Now() - at);
                  });
      });
    }
  }
  sim.Run();

  // Audit: R=N reads must return every acked version (or newer).
  out.acked_writes = acked.size();
  for (const auto& [key, want] : acked) {
    ReadOptions ro;
    ro.r = QuorumOptions().n;
    bool lost = true;
    store.Get(key, ro,
              [&](const Status& s, const std::string&, Version ver) {
                lost = !s.ok() || ver < want.first;
              });
    sim.Run();
    if (lost) ++out.acked_writes_lost;
  }
  out.write_p50_ms = write_us.P50() / double(kMicrosPerMilli);
  out.write_p99_ms = write_us.P99() / double(kMicrosPerMilli);
  out.read_p50_ms = read_us.P50() / double(kMicrosPerMilli);
  out.read_p99_ms = read_us.P99() / double(kMicrosPerMilli);
  out.net_messages = net.stats().messages_sent;
  out.net_bytes = net.stats().bytes_sent;
  return out;
}

/// Socket run: the coordinator in this process, six replicas in two
/// forked `deluge_node` hosts, Unix-domain sockets, wall-clock time.
/// Ops run in a bounded-concurrency pipeline on the event strand.
QuorumResult RunQuorumSocket() {
  TempDir dir;
  net::ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, dir.path + "/driver.sock"}});
  cfg.processes.push_back({1, {"", 0, dir.path + "/host1.sock"}});
  cfg.processes.push_back({2, {"", 0, dir.path + "/host2.sock"}});
  cfg.nodes.push_back({0, 0, "driver", ""});
  for (int i = 0; i < kReplicas; ++i) {
    cfg.nodes.push_back({net::NodeId(1 + i), uint32_t(1 + i / 3), "replica",
                         ReplicaName(i)});
  }
  const std::string cfg_path = dir.path + "/cluster.cfg";
  QuorumResult out;
  if (!cfg.Save(cfg_path).ok()) {
    out.completed = false;
    return out;
  }

  const std::string bin = NodeHostBinary();
  std::vector<pid_t> children;
  children.push_back(SpawnNodeHost(bin, cfg_path, 1));
  children.push_back(SpawnNodeHost(bin, cfg_path, 2));

  ThreadPool pool(cfg.processes.size() + 2);
  net::SocketTransportOptions topts;
  topts.config = cfg;
  topts.local_process = 0;
  topts.pool = &pool;
  net::SocketTransport transport(std::move(topts));
  // No Start(): without heartbeats every peer is presumed alive and
  // strict per-op timeouts police the (fault-free) loopback cluster.
  ReplicatedStore store(&transport, /*ring=*/nullptr, QuorumOptions());
  for (int i = 0; i < kReplicas; ++i) {
    store.AddRemoteReplica(ReplicaName(i), net::NodeId(1 + i));
  }
  if (!transport.Start().ok()) {
    out.completed = false;
    StopNodeHosts(&children);
    return out;
  }

  // Strand-owned pipeline state (callbacks all run on the strand; the
  // main thread only watches `finished`).
  Histogram write_us, read_us;
  std::map<std::string, std::pair<Version, std::string>> acked;
  int next_op = 0, inflight = 0;
  std::atomic<int> finished{0};
  std::function<void()> issue = [&] {
    while (inflight < kWindow && next_op < kQuorumOps) {
      const QuorumOp op = MakeOp(next_op++);
      ++inflight;
      const Micros at = transport.Now();
      if (op.is_write) {
        ++out.write_attempts;
        store.Put(op.key, op.value, {},
                  [&, op, at](const Status& s, Version ver) {
                    if (s.ok()) {
                      ++out.write_ok;
                      write_us.Record(transport.Now() - at);
                      auto& slot = acked[op.key];
                      if (slot.first < ver) slot = {ver, op.value};
                    }
                    --inflight;
                    issue();
                  });
      } else {
        ++out.read_attempts;
        store.Get(op.key, {},
                  [&, at](const Status& s, const std::string&, Version) {
                    if (s.ok() || s.IsNotFound()) {
                      ++out.read_ok;
                      read_us.Record(transport.Now() - at);
                    }
                    --inflight;
                    issue();
                  });
      }
    }
    if (inflight == 0 && next_op >= kQuorumOps) {
      finished.store(1, std::memory_order_release);
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  transport.Post([&] { issue(); });
  if (!WaitUntil([&] { return finished.load(std::memory_order_acquire) != 0; },
                 60000)) {
    out.completed = false;
  }
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

  // Audit over the wire: R=N reads of every acked key, same pipeline.
  std::atomic<int> audited{0};
  transport.Post([&] {
    out.acked_writes = acked.size();
    if (acked.empty()) {
      audited.store(1);
      return;
    }
    auto remaining = std::make_shared<size_t>(acked.size());
    for (const auto& [key, want] : acked) {
      ReadOptions ro;
      ro.r = QuorumOptions().n;
      const Version floor = want.first;
      store.Get(key, ro,
                [&, floor, remaining](const Status& s, const std::string&,
                                      Version ver) {
                  if (!s.ok() || ver < floor) ++out.acked_writes_lost;
                  if (--*remaining == 0) audited.store(1);
                });
    }
  });
  if (!WaitUntil([&] { return audited.load() != 0; }, 60000)) {
    out.completed = false;
  }

  out.write_p50_ms = write_us.P50() / double(kMicrosPerMilli);
  out.write_p99_ms = write_us.P99() / double(kMicrosPerMilli);
  out.read_p50_ms = read_us.P50() / double(kMicrosPerMilli);
  out.read_p99_ms = read_us.P99() / double(kMicrosPerMilli);
  out.net_messages = transport.stats().messages_sent;
  out.net_bytes = transport.stats().bytes_sent;
  transport.Stop();
  StopNodeHosts(&children);
  return out;
}

void BM_TransportQuorumParity(benchmark::State& state) {
  QuorumResult sim, sock;
  for (auto _ : state) {
    sim = RunQuorumSim();
    sock = RunQuorumSocket();
  }
  state.counters["sim_write_ok"] = double(sim.write_ok);
  state.counters["sim_read_ok"] = double(sim.read_ok);
  state.counters["sim_acked_writes"] = double(sim.acked_writes);
  state.counters["sim_acked_writes_lost"] = double(sim.acked_writes_lost);
  state.counters["sock_write_ok"] = double(sock.write_ok);
  state.counters["sock_read_ok"] = double(sock.read_ok);
  state.counters["sock_acked_writes"] = double(sock.acked_writes);
  state.counters["sock_acked_writes_lost"] = double(sock.acked_writes_lost);
  // Result parity: identical quorum outcomes on both backends, zero
  // acked-write loss anywhere, and the socket run actually finished.
  const bool parity = sock.completed && sim.write_ok == sock.write_ok &&
                      sim.read_ok == sock.read_ok &&
                      sim.acked_writes == sock.acked_writes &&
                      sim.acked_writes_lost == 0 &&
                      sock.acked_writes_lost == 0;
  state.counters["parity_ok"] = parity ? 1.0 : 0.0;
  if (!parity) {
    state.SkipWithError("sim/socket quorum results diverged");
  }
  const double ops = double(sock.write_attempts + sock.read_attempts);
  state.counters["sock_wall_s"] = sock.elapsed_s;
  state.counters["sock_ops_per_s"] =
      sock.elapsed_s > 0 ? ops / sock.elapsed_s : 0.0;
  state.counters["sock_write_p50_ms"] = sock.write_p50_ms;
  state.counters["sock_write_p99_ms"] = sock.write_p99_ms;
  state.counters["sock_read_p50_ms"] = sock.read_p50_ms;
  state.counters["sock_read_p99_ms"] = sock.read_p99_ms;
  state.counters["sim_write_p99_ms"] = sim.write_p99_ms;
  state.counters["sim_read_p99_ms"] = sim.read_p99_ms;
  state.counters["sock_net_messages"] = double(sock.net_messages);
}
BENCHMARK(BM_TransportQuorumParity)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ------------------------------------------------------ fan-out workload

struct FanoutResult {
  uint64_t sent = 0;
  uint64_t delivered = 0;  // summed from the sinks' own counters
  double elapsed_s = 0;
  bool completed = true;
};

/// In-sim baseline: the same spray through the simulated network.
FanoutResult RunFanoutSim() {
  net::Simulator sim;
  net::Network net(&sim);
  net.default_link().latency = 500;
  net.default_link().bandwidth_bytes_per_sec = 0;
  net::SimTransport transport(&net, &sim);
  FanoutResult out;
  net::NodeId driver = transport.AddNode([](const net::Message&) {});
  std::vector<net::NodeId> sinks;
  for (int i = 0; i < kSinks; ++i) {
    sinks.push_back(
        transport.AddNode([&](const net::Message&) { ++out.delivered; }));
  }
  const std::string payload(kFanPayload, 'e');
  for (int round = 0; round < kFanPerSink; ++round) {
    for (net::NodeId sink : sinks) {
      net::Message m;
      m.from = driver;
      m.to = sink;
      m.type = 1;
      m.payload = payload;
      if (transport.Send(std::move(m)).ok()) ++out.sent;
    }
  }
  sim.Run();
  return out;
}

/// Socket run: six sinks in two `deluge_node` children; delivery is
/// audited end-to-end by querying each sink's counters over the wire.
FanoutResult RunFanoutSocket() {
  TempDir dir;
  net::ClusterConfig cfg;
  cfg.processes.push_back({0, {"", 0, dir.path + "/driver.sock"}});
  cfg.processes.push_back({1, {"", 0, dir.path + "/host1.sock"}});
  cfg.processes.push_back({2, {"", 0, dir.path + "/host2.sock"}});
  cfg.nodes.push_back({0, 0, "driver", ""});
  for (int i = 0; i < kSinks; ++i) {
    cfg.nodes.push_back({net::NodeId(1 + i), uint32_t(1 + i / 3), "sink", ""});
  }
  const std::string cfg_path = dir.path + "/cluster.cfg";
  FanoutResult out;
  if (!cfg.Save(cfg_path).ok()) {
    out.completed = false;
    return out;
  }
  const std::string bin = NodeHostBinary();
  std::vector<pid_t> children;
  children.push_back(SpawnNodeHost(bin, cfg_path, 1));
  children.push_back(SpawnNodeHost(bin, cfg_path, 2));

  ThreadPool pool(cfg.processes.size() + 2);
  net::SocketTransportOptions topts;
  topts.config = cfg;
  topts.local_process = 0;
  topts.pool = &pool;
  net::SocketTransport transport(std::move(topts));
  // Per-sink counters as last reported by the sinks themselves.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> reported;
  for (int i = 0; i < kSinks; ++i) {
    reported.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  net::NodeId driver =
      transport.AddNode([&](const net::Message& m) {
        if (m.type != net::kSinkCountResp) return;
        std::string_view payload(m.payload);
        uint64_t msgs = 0, bytes = 0;
        if (!storage::GetFixed64(&payload, &msgs) ||
            !storage::GetFixed64(&payload, &bytes)) {
          return;
        }
        if (m.from >= 1 && m.from <= net::NodeId(kSinks)) {
          reported[m.from - 1]->store(msgs, std::memory_order_release);
        }
      });
  if (!transport.Start().ok()) {
    out.completed = false;
    StopNodeHosts(&children);
    return out;
  }

  // Spray.  Send is thread-safe, so the driver pumps from this thread;
  // a full queue (Unavailable) backpressures via retry.
  const std::string payload(kFanPayload, 'e');
  const auto wall_start = std::chrono::steady_clock::now();
  for (int round = 0; round < kFanPerSink; ++round) {
    for (int i = 0; i < kSinks; ++i) {
      net::Message m;
      m.from = driver;
      m.to = net::NodeId(1 + i);
      m.type = 1;
      m.payload = payload;
      while (!transport.Send(m).ok()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      ++out.sent;
    }
  }

  // Audit: poll the sinks until every spray message is accounted for.
  const uint64_t expect_per_sink = kFanPerSink;
  const auto poll = [&] {
    uint64_t total = 0;
    bool all = true;
    for (int i = 0; i < kSinks; ++i) {
      const uint64_t got = reported[i]->load(std::memory_order_acquire);
      total += got;
      if (got < expect_per_sink) {
        all = false;
        net::Message req;
        req.from = driver;
        req.to = net::NodeId(1 + i);
        req.type = net::kSinkCountReq;
        transport.Send(std::move(req));
      }
    }
    out.delivered = total;
    return all;
  };
  if (!WaitUntil(poll, 60000)) out.completed = false;
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  transport.Stop();
  StopNodeHosts(&children);
  return out;
}

void BM_TransportFanout(benchmark::State& state) {
  FanoutResult sim, sock;
  for (auto _ : state) {
    sim = RunFanoutSim();
    sock = RunFanoutSocket();
  }
  state.counters["sim_sent"] = double(sim.sent);
  state.counters["sim_delivered"] = double(sim.delivered);
  state.counters["sock_sent"] = double(sock.sent);
  state.counters["sock_delivered"] = double(sock.delivered);
  const bool parity = sock.completed && sim.delivered == sim.sent &&
                      sock.delivered == sock.sent &&
                      sim.sent == sock.sent;
  state.counters["parity_ok"] = parity ? 1.0 : 0.0;
  if (!parity) state.SkipWithError("fan-out delivery audit failed");
  state.counters["sock_wall_s"] = sock.elapsed_s;
  state.counters["sock_msgs_per_s"] =
      sock.elapsed_s > 0 ? double(sock.sent) / sock.elapsed_s : 0.0;
  state.counters["sock_mbytes_per_s"] =
      sock.elapsed_s > 0 ? double(sock.sent) *
                               double(kFanPayload + net::kFrameOverheadBytes) /
                               (1e6 * sock.elapsed_s)
                         : 0.0;
}
BENCHMARK(BM_TransportFanout)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

DELUGE_BENCH_MAIN();
