// E14 — Section IV-E-3: serverless scheduling tradeoffs.
//
// Claims validated: keep-alive trades idle (provider) cost for cold-start
// latency; the sweet spot depends on the arrival rate — sparse invokers
// suffer cold starts at short keep-alives while dense invokers barely
// notice (the "Serverless in the Wild" [68] policy space the paper cites).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "common/rng.h"
#include "runtime/serverless.h"

namespace {

using namespace deluge;           // NOLINT
using namespace deluge::runtime;  // NOLINT

void BM_KeepAliveSweep(benchmark::State& state) {
  const Micros keep_alive = state.range(0) * kMicrosPerMilli;
  const double mean_gap_ms = double(state.range(1));

  double cold_pct = 0, p99_ms = 0, idle_cost = 0, billed = 0;
  for (auto _ : state) {
    net::Simulator sim;
    ServerlessRuntime runtime(&sim, keep_alive);
    FunctionSpec spec;
    spec.name = "render-avatar";
    spec.cold_start = 250 * kMicrosPerMilli;
    spec.exec_time = 15 * kMicrosPerMilli;
    spec.memory_mb = 256;
    runtime.Register(spec);

    Rng rng(29);
    Micros t = 0;
    for (int i = 0; i < 2000; ++i) {
      t += Micros(rng.Exponential(1.0 / (mean_gap_ms * kMicrosPerMilli)));
      sim.At(t, [&runtime] { runtime.Invoke("render-avatar"); });
    }
    sim.Run();
    const auto& stats = runtime.stats_for("render-avatar");
    cold_pct = 100.0 * stats.ColdStartRatio();
    p99_ms = stats.latency.P99() / double(kMicrosPerMilli);
    idle_cost = stats.idle_mb_ms;
    billed = stats.billed_mb_ms;
  }
  state.counters["keepalive_ms"] = double(state.range(0));
  state.counters["mean_gap_ms"] = mean_gap_ms;
  state.counters["cold_pct"] = cold_pct;
  state.counters["p99_ms"] = p99_ms;
  state.counters["idle_mb_ms"] = idle_cost;
  state.counters["billed_mb_ms"] = billed;
}
// Args: {keep-alive ms, mean inter-arrival ms}.
BENCHMARK(BM_KeepAliveSweep)
    ->Args({0, 100})->Args({100, 100})->Args({1000, 100})->Args({10000, 100})
    ->Args({0, 2000})->Args({1000, 2000})->Args({10000, 2000})
    ->Unit(benchmark::kMillisecond);

// Serverless vs always-on provisioning: total MB-ms carried for the same
// workload (pay-per-use vs a fixed instance held the whole time).
void BM_ServerlessVsProvisioned(benchmark::State& state) {
  const double mean_gap_ms = double(state.range(0));
  double serverless_mb_ms = 0, provisioned_mb_ms = 0;
  for (auto _ : state) {
    net::Simulator sim;
    ServerlessRuntime runtime(&sim, /*keep_alive=*/1000 * kMicrosPerMilli);
    FunctionSpec spec;
    spec.name = "f";
    spec.memory_mb = 256;
    runtime.Register(spec);
    Rng rng(31);
    Micros t = 0;
    for (int i = 0; i < 1000; ++i) {
      t += Micros(rng.Exponential(1.0 / (mean_gap_ms * kMicrosPerMilli)));
      sim.At(t, [&runtime] { runtime.Invoke("f"); });
    }
    sim.Run();
    const auto& stats = runtime.stats_for("f");
    serverless_mb_ms = stats.billed_mb_ms + stats.idle_mb_ms;
    provisioned_mb_ms =
        256.0 * double(sim.Now()) / double(kMicrosPerMilli);
  }
  state.counters["mean_gap_ms"] = mean_gap_ms;
  state.counters["serverless_mb_ms"] = serverless_mb_ms;
  state.counters["provisioned_mb_ms"] = provisioned_mb_ms;
  state.counters["savings_x"] =
      provisioned_mb_ms / std::max(serverless_mb_ms, 1.0);
}
BENCHMARK(BM_ServerlessVsProvisioned)->Arg(50)->Arg(500)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
