// E22 — replicated quorum storage under chaos: the `deluge::replica`
// fabric (N-successor placement on the Chord ring, tunable R/W quorums,
// sloppy quorums + hinted handoff, read repair, anti-entropy) driven by
// an open-loop read/write workload while a scripted fault schedule
// crashes one replica and partitions another away from the coordinator.
//
// Claims validated: (a) with N=3, R=W=2 the fabric rides out a replica
// crash at >= 99% operation availability; (b) no acknowledged write is
// ever lost — after faults heal, every acked (key, version) is held by
// a replica (audited directly against the backings); (c) divergence
// created by the faults is visible (stale reads are counted, not
// hidden) and anti-entropy drives it to zero after heal; (d) the
// quorum sweep exposes the availability/consistency tradeoff: W=N
// writes lose availability under the same faults, R=W=1 reads get
// staler.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "common/histogram.h"
#include "net/network.h"
#include "net/simulator.h"
#include "p2p/chord.h"
#include "replica/replicated_store.h"
#include "replica/wire.h"

namespace {

using namespace deluge;           // NOLINT
using namespace deluge::replica;  // NOLINT

constexpr int kReplicas = 8;
constexpr Micros kHorizon = 10 * kMicrosPerSecond;
constexpr Micros kOpEvery = 5 * kMicrosPerMilli;
constexpr int kKeys = 200;
constexpr Micros kCrashAt = 2 * kMicrosPerSecond;
constexpr Micros kCrashFor = 2 * kMicrosPerSecond;
constexpr Micros kPartitionAt = 5 * kMicrosPerSecond;
constexpr Micros kPartitionFor = 2 * kMicrosPerSecond;

struct Cluster {
  net::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::SimTransport> transport;
  std::unique_ptr<p2p::ChordRing> ring;
  std::unique_ptr<ReplicatedStore> store;
  std::vector<uint64_t> rings;
};

std::unique_ptr<Cluster> MakeCluster(int n, int r, int w) {
  auto c = std::make_unique<Cluster>();
  c->net = std::make_unique<net::Network>(&c->sim);
  c->net->default_link().latency = 2 * kMicrosPerMilli;
  c->net->default_link().bandwidth_bytes_per_sec = 0;
  c->transport = std::make_unique<net::SimTransport>(c->net.get(), &c->sim);
  c->ring = std::make_unique<p2p::ChordRing>(c->transport.get());
  ReplicaOptions opts;
  opts.n = n;
  opts.r = r;
  opts.w = w;
  c->store = std::make_unique<ReplicatedStore>(c->transport.get(),
                                               c->ring.get(), opts);
  for (int i = 0; i < kReplicas; ++i) {
    c->rings.push_back(c->store->AddReplica("rep" + std::to_string(i)));
  }
  return c;
}

struct SweepResult {
  uint64_t write_attempts = 0, write_ok = 0;
  uint64_t read_attempts = 0, read_ok = 0;
  uint64_t stale_reads = 0;
  uint64_t hinted_handoffs = 0, hints_replayed = 0;
  uint64_t read_repairs = 0;
  uint64_t acked_writes = 0, acked_writes_lost = 0;
  uint64_t ae_rounds_to_converge = 0, ae_keys_synced = 0;
  double divergent_after = 0;
  double write_p99_ms = 0, read_p99_ms = 0;
};

/// Open-loop workload under the fault schedule, then heal, converge via
/// anti-entropy, and audit acknowledged writes against the backings.
SweepResult RunQuorumSweep(int n, int r, int w) {
  auto c = MakeCluster(n, r, w);
  c->store->Start();

  // Faults never overlap: one replica crash, then a protocol-level
  // partition between the coordinator and another replica.
  chaos::FaultSchedule schedule(c->transport.get());
  schedule
      .CrashNode(kCrashAt, c->store->node(c->rings[0])->node_id(), kCrashFor)
      .PartitionWindow(kPartitionAt, c->store->coordinator_node(),
                       c->store->node(c->rings[3])->node_id(),
                       kPartitionFor);
  schedule.Arm();

  SweepResult out;
  Histogram write_us, read_us;
  // Last acknowledged (version, value) per key — the audit ground truth.
  std::map<std::string, std::pair<Version, std::string>> acked;

  const int kOps = int(kHorizon / kOpEvery);
  int issued_writes = 0;
  for (int i = 0; i < kOps; ++i) {
    const Micros at = Micros(i) * kOpEvery;
    const std::string key = "obj" + std::to_string(i % kKeys);
    if (i % 2 == 0) {
      const std::string value = "v" + std::to_string(issued_writes++);
      c->sim.At(at, [&, key, value, at] {
        ++out.write_attempts;
        c->store->Put(key, value, {},
                      [&, key, value, at](const Status& s, Version ver) {
                        if (!s.ok()) return;
                        ++out.write_ok;
                        write_us.Record(c->sim.Now() - at);
                        auto& slot = acked[key];
                        if (slot.first < ver) slot = {ver, value};
                      });
      });
    } else {
      c->sim.At(at, [&, key, at] {
        ++out.read_attempts;
        c->store->Get(key, {},
                      [&, at](const Status& s, const std::string&, Version) {
                        // NotFound counts as served: the quorum answered.
                        if (!s.ok() && !s.IsNotFound()) return;
                        ++out.read_ok;
                        read_us.Record(c->sim.Now() - at);
                      });
      });
    }
  }
  // Drain the workload, let the detector revive healed peers, and let
  // hinted handoff replay.
  c->sim.RunUntil(kHorizon + 4 * kMicrosPerSecond);

  // Anti-entropy until the digests agree everywhere (bounded).
  for (int round = 0; round < 6; ++round) {
    AntiEntropyReport report;
    bool done = false;
    c->store->RunAntiEntropy([&](const AntiEntropyReport& rep) {
      report = rep;
      done = true;
    });
    c->sim.RunUntil(c->sim.Now() + 5 * kMicrosPerSecond);
    ++out.ae_rounds_to_converge;
    out.ae_keys_synced += report.keys_synced;
    if (done && report.divergent == 0 && report.unreachable == 0) break;
  }

  // Audit: every acknowledged write must survive on some replica at a
  // version at least as new as the one acked to the client.
  out.acked_writes = acked.size();
  for (const auto& [key, want] : acked) {
    bool survives = false;
    for (uint64_t rid : c->rings) {
      Record rec;
      if (!c->store->node(rid)->LocalGet(key, &rec).ok()) continue;
      if (want.first < rec.version || rec.version == want.first) {
        survives = true;
        break;
      }
    }
    if (!survives) ++out.acked_writes_lost;
  }

  const ReplicaStats& stats = c->store->stats();
  out.stale_reads = stats.stale_reads;
  out.hinted_handoffs = stats.hinted_handoffs;
  out.hints_replayed = stats.hints_replayed;
  out.read_repairs = stats.read_repairs;
  out.divergent_after = stats.divergent_segments;
  out.write_p99_ms = write_us.P99() / double(kMicrosPerMilli);
  out.read_p99_ms = read_us.P99() / double(kMicrosPerMilli);
  c->store->Stop();
  return out;
}

void BM_QuorumSweep(benchmark::State& state) {
  const int n = int(state.range(0));
  const int r = int(state.range(1));
  const int w = int(state.range(2));
  SweepResult res;
  for (auto _ : state) res = RunQuorumSweep(n, r, w);
  const double ops = double(res.write_attempts + res.read_attempts);
  const double ok = double(res.write_ok + res.read_ok);
  state.counters["availability_pct"] = ops == 0 ? 0.0 : 100.0 * ok / ops;
  state.counters["write_availability_pct"] =
      res.write_attempts == 0
          ? 0.0
          : 100.0 * double(res.write_ok) / double(res.write_attempts);
  state.counters["read_availability_pct"] =
      res.read_attempts == 0
          ? 0.0
          : 100.0 * double(res.read_ok) / double(res.read_attempts);
  state.counters["acked_writes"] = double(res.acked_writes);
  state.counters["acked_writes_lost"] = double(res.acked_writes_lost);
  state.counters["stale_reads"] = double(res.stale_reads);
  state.counters["hinted_handoffs"] = double(res.hinted_handoffs);
  state.counters["hints_replayed"] = double(res.hints_replayed);
  state.counters["read_repairs"] = double(res.read_repairs);
  state.counters["ae_rounds_to_converge"] =
      double(res.ae_rounds_to_converge);
  state.counters["ae_keys_synced"] = double(res.ae_keys_synced);
  state.counters["divergent_after"] = res.divergent_after;
  state.counters["write_p99_ms"] = res.write_p99_ms;
  state.counters["read_p99_ms"] = res.read_p99_ms;
}
BENCHMARK(BM_QuorumSweep)
    ->Args({3, 1, 1})
    ->Args({3, 2, 2})
    ->Args({3, 1, 3})
    ->Args({5, 2, 3})
    ->ArgNames({"N", "R", "W"})
    ->Unit(benchmark::kMillisecond);

// Anti-entropy in isolation: strict quorums (no handoff masking), a
// replica partitioned away while the workload writes, heal, then
// measure how many digest rounds close the divergence.
void BM_AntiEntropyConvergence(benchmark::State& state) {
  uint64_t divergent_initial = 0, keys_synced = 0, rounds = 0;
  double divergent_final = 0;
  uint64_t victim_missing_before = 0, victim_missing_after = 0;
  for (auto _ : state) {
    divergent_initial = keys_synced = 0;
    victim_missing_before = victim_missing_after = 0;
    ReplicaOptions opts;
    opts.sloppy_quorum = false;
    opts.n = 3;
    opts.r = 2;
    opts.w = 2;
    auto c = std::make_unique<Cluster>();
    c->net = std::make_unique<net::Network>(&c->sim);
    c->net->default_link().latency = 2 * kMicrosPerMilli;
    c->net->default_link().bandwidth_bytes_per_sec = 0;
    c->transport = std::make_unique<net::SimTransport>(c->net.get(), &c->sim);
    c->ring = std::make_unique<p2p::ChordRing>(c->transport.get());
    c->store = std::make_unique<ReplicatedStore>(c->transport.get(),
                                                 c->ring.get(), opts);
    for (int i = 0; i < 5; ++i) {
      c->rings.push_back(c->store->AddReplica("rep" + std::to_string(i)));
    }
    const uint64_t victim = c->rings[2];
    c->net->Partition(c->store->coordinator_node(),
                      c->store->node(victim)->node_id());
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "obj" + std::to_string(i);
      c->sim.At(Micros(i) * kOpEvery, [&c, key, i] {
        c->store->Put(key, "v" + std::to_string(i), {},
                      [](const Status&, Version) {});
      });
    }
    c->sim.RunUntil(kKeys * kOpEvery + 2 * kMicrosPerSecond);
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "obj" + std::to_string(i);
      auto pl = c->store->PreferenceList(key);
      Record rec;
      if (std::find(pl.begin(), pl.end(), victim) != pl.end() &&
          !c->store->node(victim)->LocalGet(key, &rec).ok()) {
        ++victim_missing_before;
      }
    }
    c->net->Heal(c->store->coordinator_node(),
                 c->store->node(victim)->node_id());

    rounds = 0;
    keys_synced = 0;
    for (int round = 0; round < 6; ++round) {
      AntiEntropyReport report;
      c->store->RunAntiEntropy(
          [&](const AntiEntropyReport& rep) { report = rep; });
      c->sim.RunUntil(c->sim.Now() + 5 * kMicrosPerSecond);
      ++rounds;
      if (round == 0) divergent_initial = report.divergent;
      keys_synced += report.keys_synced;
      if (report.divergent == 0) break;
    }
    divergent_final = c->store->stats().divergent_segments;
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "obj" + std::to_string(i);
      auto pl = c->store->PreferenceList(key);
      Record rec;
      if (std::find(pl.begin(), pl.end(), victim) != pl.end() &&
          !c->store->node(victim)->LocalGet(key, &rec).ok()) {
        ++victim_missing_after;
      }
    }
  }
  state.counters["divergent_initial"] = double(divergent_initial);
  state.counters["divergent_final"] = divergent_final;
  state.counters["rounds_to_converge"] = double(rounds);
  state.counters["keys_synced"] = double(keys_synced);
  state.counters["victim_missing_before"] = double(victim_missing_before);
  state.counters["victim_missing_after"] = double(victim_missing_after);
}
BENCHMARK(BM_AntiEntropyConvergence)->Unit(benchmark::kMillisecond);

// Read repair as a convergence mechanism: strict quorums write around a
// partitioned replica (no hints), the partition heals, and a pass of
// R=1 reads both surfaces the staleness (stale reads are counted, not
// hidden) and pushes the newest version back onto the lagging replica.
void BM_ReadRepair(benchmark::State& state) {
  uint64_t stale_reads = 0, read_repairs = 0;
  uint64_t victim_missing_before = 0, victim_missing_after = 0;
  for (auto _ : state) {
    victim_missing_before = victim_missing_after = 0;
    ReplicaOptions opts;
    opts.sloppy_quorum = false;
    opts.n = 3;
    opts.r = 2;
    opts.w = 2;
    auto c = std::make_unique<Cluster>();
    c->net = std::make_unique<net::Network>(&c->sim);
    c->net->default_link().latency = 2 * kMicrosPerMilli;
    c->net->default_link().bandwidth_bytes_per_sec = 0;
    c->transport = std::make_unique<net::SimTransport>(c->net.get(), &c->sim);
    c->ring = std::make_unique<p2p::ChordRing>(c->transport.get());
    c->store = std::make_unique<ReplicatedStore>(c->transport.get(),
                                                 c->ring.get(), opts);
    for (int i = 0; i < 5; ++i) {
      c->rings.push_back(c->store->AddReplica("rep" + std::to_string(i)));
    }
    const uint64_t victim = c->rings[1];
    c->net->Partition(c->store->coordinator_node(),
                      c->store->node(victim)->node_id());
    for (int i = 0; i < kKeys; ++i) {
      c->sim.At(Micros(i) * kOpEvery, [&c, i] {
        c->store->Put("obj" + std::to_string(i), "v" + std::to_string(i),
                      {}, [](const Status&, Version) {});
      });
    }
    c->sim.RunUntil(kKeys * kOpEvery + 2 * kMicrosPerSecond);
    c->net->Heal(c->store->coordinator_node(),
                 c->store->node(victim)->node_id());
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "obj" + std::to_string(i);
      auto pl = c->store->PreferenceList(key);
      Record rec;
      if (std::find(pl.begin(), pl.end(), victim) != pl.end() &&
          !c->store->node(victim)->LocalGet(key, &rec).ok()) {
        ++victim_missing_before;
      }
    }
    // One eventual-mode read per key: first responder wins, divergence
    // is repaired in the background after the quorum answers.
    for (int i = 0; i < kKeys; ++i) {
      c->sim.At(c->sim.Now() + Micros(i) * kOpEvery, [&c, i] {
        c->store->Get("obj" + std::to_string(i), ReadOptions{.r = 1},
                      [](const Status&, const std::string&, Version) {});
      });
    }
    c->sim.RunUntil(c->sim.Now() + kKeys * kOpEvery + 2 * kMicrosPerSecond);
    stale_reads = c->store->stats().stale_reads;
    read_repairs = c->store->stats().read_repairs;
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "obj" + std::to_string(i);
      auto pl = c->store->PreferenceList(key);
      Record rec;
      if (std::find(pl.begin(), pl.end(), victim) != pl.end() &&
          !c->store->node(victim)->LocalGet(key, &rec).ok()) {
        ++victim_missing_after;
      }
    }
  }
  state.counters["stale_reads"] = double(stale_reads);
  state.counters["read_repairs"] = double(read_repairs);
  state.counters["victim_missing_before"] = double(victim_missing_before);
  state.counters["victim_missing_after"] = double(victim_missing_after);
}
BENCHMARK(BM_ReadRepair)->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
