// E19 — concurrent LSM storage engine (the durable KV tier of Fig. 7's
// disaggregated cloud storage layer).
//
// Claims validated: (a) group commit amortizes the WAL fsync across
// concurrent committers — with 8 syncing writers one leader sync covers
// a whole commit group, vs one fdatasync per write when group commit is
// disabled; (b) application-level WriteBatch gets the same effect
// single-threaded: commit cost per op falls with batch size; (c) the
// sharded block cache turns repeat point reads into memory hits —
// read throughput vs cache budget, with hit rates reported; (d) writes
// scale past one thread because memtable flushes and L0→L1 compactions
// run on a background pool, off the commit path.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <filesystem>
#include <memory>
#include <string>

#include "common/rng.h"
#include "storage/kv_store.h"

namespace {

using namespace deluge;           // NOLINT
using namespace deluge::storage;  // NOLINT

std::string FreshDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("deluge_e19_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// One store shared by all benchmark threads; created/destroyed by
// thread 0 (the library barriers the timing loop, so every thread sees
// a fully constructed store).
std::unique_ptr<KVStore> g_db;

std::string ThreadKey(int thread, uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%02d-%012llu", thread,
                static_cast<unsigned long long>(i));
  return buf;
}

void ReportWriteCounters(benchmark::State& state, uint64_t commits) {
  auto stats = g_db->stats();
  state.counters["wal_syncs"] = double(stats.wal_syncs);
  state.counters["syncs_per_commit"] =
      commits > 0 ? double(stats.wal_syncs) / double(commits) : 0.0;
  state.counters["flushes"] = double(stats.flushes);
  state.counters["compactions"] = double(stats.compactions);
  state.counters["write_stalls"] = double(stats.write_stalls);
}

// --- (a) group commit vs per-write commit, syncing WAL ----------------
//
// Every Put is durably committed (sync_wal).  Arg 0/1 = group commit
// off/on; thread count sweeps 1..8.  The headline comparison is
// /8 threads, arg 1 vs arg 0.

void BM_E19_SyncPut(benchmark::State& state) {
  const bool group_commit = state.range(0) != 0;
  if (state.thread_index() == 0) {
    KVStoreOptions opts;
    opts.dir = FreshDir("sync_put");
    opts.sync_wal = true;
    opts.group_commit = group_commit;
    opts.memtable_max_bytes = 8u << 20;  // keep flushes off the hot loop
    g_db = std::move(KVStore::Open(opts).value());
  }
  const std::string value(100, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_db->Put(ThreadKey(state.thread_index(), i++), value));
  }
  state.SetItemsProcessed(int64_t(i));
  if (state.thread_index() == 0) {
    ReportWriteCounters(state, g_db->stats().puts);
    g_db.reset();
  }
}
BENCHMARK(BM_E19_SyncPut)
    ->ArgNames({"group"})
    ->Arg(0)
    ->Arg(1)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// --- (b) WriteBatch size sweep, single committer ----------------------

void BM_E19_SyncWriteBatch(benchmark::State& state) {
  const size_t batch_ops = size_t(state.range(0));
  KVStoreOptions opts;
  opts.dir = FreshDir("batch");
  opts.sync_wal = true;
  opts.memtable_max_bytes = 8u << 20;
  auto db = std::move(KVStore::Open(opts).value());
  const std::string value(100, 'v');
  uint64_t i = 0;
  WriteBatch batch;
  for (auto _ : state) {
    batch.Clear();
    for (size_t k = 0; k < batch_ops; ++k) {
      batch.Put(ThreadKey(0, i++), value);
    }
    benchmark::DoNotOptimize(db->Write(batch));
  }
  state.SetItemsProcessed(int64_t(i));
  state.counters["ops_per_sync"] = double(batch_ops);
}
BENCHMARK(BM_E19_SyncWriteBatch)
    ->ArgNames({"batch_ops"})
    ->RangeMultiplier(8)
    ->Range(1, 512)
    ->Unit(benchmark::kMicrosecond);

// --- (d) non-durable writes: background flush off the commit path -----

void BM_E19_AsyncPut(benchmark::State& state) {
  if (state.thread_index() == 0) {
    KVStoreOptions opts;
    opts.dir = FreshDir("async_put");
    opts.sync_wal = false;
    opts.memtable_max_bytes = 1u << 20;  // real flush/compaction churn
    opts.l0_compaction_trigger = 4;
    g_db = std::move(KVStore::Open(opts).value());
  }
  const std::string value(100, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_db->Put(ThreadKey(state.thread_index(), i++), value));
  }
  state.SetItemsProcessed(int64_t(i));
  if (state.thread_index() == 0) {
    ReportWriteCounters(state, g_db->stats().puts);
    g_db.reset();
  }
}
BENCHMARK(BM_E19_AsyncPut)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// --- (c) point reads vs block-cache budget ----------------------------
//
// A compacted store of 20k keys read with a zipf-ish hot set; arg =
// cache budget in KB (0 disables the cache: every probe is positional
// file I/O).

constexpr int kReadKeys = 20000;

void BM_E19_PointGet(benchmark::State& state) {
  const size_t cache_kb = size_t(state.range(0));
  if (state.thread_index() == 0) {
    KVStoreOptions opts;
    opts.dir = FreshDir("reads");
    opts.block_cache_bytes = cache_kb << 10;
    opts.memtable_max_bytes = 1u << 20;
    auto db = std::move(KVStore::Open(opts).value());
    const std::string value(128, 'v');
    for (int i = 0; i < kReadKeys; ++i) {
      db->Put(ThreadKey(0, uint64_t(i)), value);
    }
    db->CompactAll();
    g_db = std::move(db);
  }
  Rng rng(uint64_t(42 + state.thread_index()));
  std::string v;
  uint64_t gets = 0;
  for (auto _ : state) {
    // 90% of reads hit a 5% hot set; the tail sweeps the keyspace.
    uint64_t k = rng.Uniform(10) < 9 ? rng.Uniform(kReadKeys / 20)
                                     : rng.Uniform(kReadKeys);
    benchmark::DoNotOptimize(g_db->Get(ThreadKey(0, k), &v));
    ++gets;
  }
  state.SetItemsProcessed(int64_t(gets));
  if (state.thread_index() == 0) {
    auto stats = g_db->stats();
    uint64_t lookups = stats.cache_hits + stats.cache_misses;
    state.counters["cache_hit_rate"] =
        lookups > 0 ? double(stats.cache_hits) / double(lookups) : 0.0;
    state.counters["bloom_negatives"] = double(stats.bloom_negatives);
    state.counters["disk_probes"] = double(stats.disk_probes);
    g_db.reset();
  }
}
BENCHMARK(BM_E19_PointGet)
    ->ArgNames({"cache_kb"})
    ->Arg(0)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// --- write amplification under a range-localized ingest ---------------
//
// Metaverse ingest is spatially clustered: each producer writes its own
// key range, so successive L0 batches carry non-overlapping ranges.
// Range-partitioned leveled compaction only rewrites the L1 slice a
// flush actually overlaps, so bytes_compacted tracks the overlapped
// range, not the database size (the old single-run engine rewrote the
// whole DB every compaction).  Arg = max_subcompactions (1 = serial
// merge, 4 = parallel slices); the headline counter is write_amp =
// bytes_compacted / bytes_flushed.

void BM_E19_WriteAmp(benchmark::State& state) {
  const int subcompactions = int(state.range(0));
  const std::string value(256, 'v');
  constexpr int kRounds = 24, kPutsPerRound = 5000;
  constexpr int kKeysPerRange = 5000;
  KVStoreStats stats;
  size_t l1_tables = 0;
  for (auto _ : state) {
    KVStoreOptions opts;
    opts.dir = FreshDir("write_amp");
    opts.memtable_max_bytes = 256u << 10;
    opts.l0_compaction_trigger = 4;
    opts.max_subcompactions = subcompactions;
    // Tables roll at 512 KB so a ~2 MB range merge splits into several
    // concurrent slices (and overlap picking stays fine-grained).
    opts.l1_target_table_bytes = 512u << 10;
    auto db = std::move(KVStore::Open(opts).value());
    Rng rng(7);
    char key[32];
    // Each round is one producer writing its own disjoint key range;
    // every flush within a round is confined to that range, so a
    // compaction's L0 set overlaps only that range's slice of L1.
    for (int round = 0; round < kRounds; ++round) {
      const int range = round;
      for (int i = 0; i < kPutsPerRound; ++i) {
        std::snprintf(
            key, sizeof(key), "r%02d-%08llu", range,
            static_cast<unsigned long long>(rng.Uniform(kKeysPerRange)));
        benchmark::DoNotOptimize(db->Put(key, value));
      }
    }
    db->Flush();
    db->CompactAll();
    stats = db->stats();
    l1_tables = db->l1_file_count();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kRounds *
                          kPutsPerRound);
  state.counters["write_amp"] =
      stats.bytes_flushed > 0
          ? double(stats.bytes_compacted) / double(stats.bytes_flushed)
          : 0.0;
  state.counters["bytes_compacted_mb"] =
      double(stats.bytes_compacted) / (1024.0 * 1024.0);
  // Per-level physical breakdown of the same traffic: L0 is flush
  // output, L1 is compaction rewrite — the L1 share is where leveled
  // compaction's amplification actually lands on disk.
  state.counters["l0_write_mb"] =
      double(stats.l0_write_bytes) / (1024.0 * 1024.0);
  state.counters["l1_write_mb"] =
      double(stats.l1_write_bytes) / (1024.0 * 1024.0);
  state.counters["l1_write_share"] =
      stats.l0_write_bytes + stats.l1_write_bytes > 0
          ? double(stats.l1_write_bytes) /
                double(stats.l0_write_bytes + stats.l1_write_bytes)
          : 0.0;
  state.counters["compactions"] = double(stats.compactions);
  state.counters["subcompactions"] = double(stats.subcompactions);
  state.counters["l1_tables"] = double(l1_tables);
  state.counters["write_stalls"] = double(stats.write_stalls);
  state.counters["stall_ms"] = double(stats.stall_time_us) / 1000.0;
}
BENCHMARK(BM_E19_WriteAmp)
    ->ArgNames({"subcompactions"})
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- snapshot scan over a multi-level store ---------------------------

void BM_E19_SnapshotScan(benchmark::State& state) {
  KVStoreOptions opts;
  opts.dir = FreshDir("scan");
  opts.memtable_max_bytes = 64u << 10;  // many tables before compaction
  opts.l0_compaction_trigger = 4;
  auto db = std::move(KVStore::Open(opts).value());
  const std::string value(128, 'v');
  for (int i = 0; i < 5000; ++i) {
    db->Put(ThreadKey(0, uint64_t(i)), value);
  }
  db->Flush();
  size_t entries = 0;
  for (auto _ : state) {
    auto it = db->NewIterator();
    entries = 0;
    for (it.SeekToFirst(); it.Valid(); it.Next()) ++entries;
    benchmark::DoNotOptimize(entries);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(entries));
}
BENCHMARK(BM_E19_SnapshotScan)->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
