// E20 — observability overhead: what the unified metrics/tracing layer
// costs on the hot paths it instruments.
//
// Claims validated: (a) a registry-backed striped counter costs within
// 2x of a plain relaxed atomic fetch-add single-threaded (~1-2 ns), and
// *beats* a shared atomic under multi-threaded contention because each
// thread increments its own cache line; (b) `ConcurrentHistogram`
// recording stays O(1) with one uncontended per-stripe lock, close to
// the plain `common::Histogram` it wraps, and scales across recording
// threads; (c) a disabled `Span` on a non-traced thread is a TLS load +
// relaxed atomic load + branch (~2 ns), cheap enough for per-event hot
// paths, and the sampled cost is bounded; (d) registry lookup
// (`GetCounter` with labels) is an interning-map hit, so handles are
// cached at construction — but even the miss path is sub-µs.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace deluge;  // NOLINT

// --- (a) counters: plain member vs shared atomic vs striped -----------
//
// The baselines bound what any instrumentation may cost: a plain
// uint64_t member increment (what the old *Stats structs did,
// single-threaded only) and one shared relaxed atomic (the simplest
// thread-safe counter).  The registry counter must stay within 2x of
// the shared atomic single-threaded, and win under contention.

uint64_t g_plain = 0;
std::atomic<uint64_t> g_shared{0};
obs::Counter g_striped;

void BM_E20_CounterPlainMember(benchmark::State& state) {
  for (auto _ : state) {
    ++g_plain;
    benchmark::DoNotOptimize(g_plain);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_CounterPlainMember)->Unit(benchmark::kNanosecond);

void BM_E20_CounterSharedAtomic(benchmark::State& state) {
  for (auto _ : state) {
    g_shared.fetch_add(1, std::memory_order_relaxed);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_CounterSharedAtomic)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kNanosecond);

void BM_E20_CounterStriped(benchmark::State& state) {
  for (auto _ : state) {
    g_striped.Add(1);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_CounterStriped)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kNanosecond);

// --- (b) histograms: plain vs concurrent ------------------------------

void BM_E20_HistogramPlain(benchmark::State& state) {
  Histogram h;
  int64_t v = 0;
  for (auto _ : state) {
    h.Record(v++ & 1023);
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_HistogramPlain)->Unit(benchmark::kNanosecond);

obs::ConcurrentHistogram g_chist;

void BM_E20_HistogramConcurrent(benchmark::State& state) {
  int64_t v = state.thread_index();
  for (auto _ : state) {
    g_chist.Record(v++ & 1023);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_HistogramConcurrent)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kNanosecond);

// --- (c) spans: disabled / sampled-out / recorded ---------------------

void BM_E20_SpanDisabled(benchmark::State& state) {
  obs::Tracer::Global().Disable();
  for (auto _ : state) {
    obs::Span span("bench.noop");
    benchmark::DoNotOptimize(span.sampled());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_SpanDisabled)->Unit(benchmark::kNanosecond);

// Sampling 1-in-1024 root spans: the amortized per-event cost with
// tracing left on in production.  Drained afterwards so the record
// buffer cannot saturate and skew later iterations toward the cheap
// "buffer full" path.
void BM_E20_SpanSampled(benchmark::State& state) {
  obs::Tracer::Global().Enable(1024);
  for (auto _ : state) {
    obs::Span span("bench.sampled");
    benchmark::DoNotOptimize(span.sampled());
  }
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Drain();
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_SpanSampled)->Unit(benchmark::kNanosecond);

// Every root sampled with a child span under it: the worst case (two
// steady_clock reads + one mutexed append per span).
void BM_E20_SpanRecordedNested(benchmark::State& state) {
  obs::Tracer::Global().Enable(1);
  for (auto _ : state) {
    obs::Span root("bench.root");
    obs::Span child("bench.child");
    benchmark::DoNotOptimize(child.sampled());
  }
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Drain();
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_SpanRecordedNested)->Unit(benchmark::kNanosecond);

// --- (d) registry interning: cached handle vs per-op lookup -----------
//
// Subsystems cache handles at construction, so the lookup never sits on
// a hot path; this pins how expensive forgetting that rule would be.

void BM_E20_RegistryLookup(benchmark::State& state) {
  obs::MetricsRegistry reg;
  const obs::Labels labels{{"subsystem", "bench"}, {"shard", "3"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.GetCounter("e20.lookup", labels));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_RegistryLookup)->Unit(benchmark::kNanosecond);

void BM_E20_ScopedTimer(benchmark::State& state) {
  obs::ConcurrentHistogram hist;
  for (auto _ : state) {
    obs::ScopedTimer timer(&hist);
  }
  benchmark::DoNotOptimize(hist.Count());
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E20_ScopedTimer)->Unit(benchmark::kNanosecond);

}  // namespace

DELUGE_BENCH_MAIN();
