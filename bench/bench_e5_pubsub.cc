// E5 — Section IV-E: publish/subscribe dissemination vs per-client
// unicast polling as the audience grows.
//
// Claim validated: with N subscribers of whom only a fraction care about
// any given event, broker-matched pub/sub sends O(matching) messages per
// event while unicast polling sends O(N) per poll round — the gap widens
// linearly with N, which is why the paper argues for pub/sub
// architectures for cross-space dissemination.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "common/rng.h"
#include "net/simulator.h"
#include "pubsub/broker.h"

namespace {

using namespace deluge;          // NOLINT
using namespace deluge::pubsub;  // NOLINT

const geo::AABB kWorld({0, 0, 0}, {10000, 10000, 100});

void BM_PubSubDissemination(benchmark::State& state) {
  const size_t subscribers = size_t(state.range(0));
  Rng rng(3);
  uint64_t bytes_delivered = 0;
  Broker broker(kWorld, 100.0,
                [&](net::NodeId, const Event& e) { bytes_delivered += e.bytes; });
  // Each subscriber watches a 200x200 m neighbourhood.
  for (size_t i = 0; i < subscribers; ++i) {
    Subscription sub;
    sub.subscriber = net::NodeId(i);
    geo::Vec3 c{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000), 50};
    sub.region = geo::AABB::Cube(c, 100);
    broker.Subscribe(std::move(sub));
  }
  uint64_t events = 0;
  for (auto _ : state) {
    Event e;
    e.topic = "mirror.position";
    e.position = geo::Vec3{rng.UniformDouble(0, 10000),
                           rng.UniformDouble(0, 10000), 50};
    e.bytes = 256;
    broker.Publish(e);
    ++events;
  }
  state.SetItemsProcessed(int64_t(events));
  state.counters["subscribers"] = double(subscribers);
  state.counters["deliveries_per_event"] =
      double(broker.stats().deliveries) / double(std::max<uint64_t>(1, events));
  state.counters["candidates_per_event"] =
      double(broker.stats().candidates_checked) /
      double(std::max<uint64_t>(1, events));
  state.counters["bytes_per_event"] =
      double(bytes_delivered) / double(std::max<uint64_t>(1, events));
}
BENCHMARK(BM_PubSubDissemination)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

// Baseline: every client polls the full event stream each round and
// filters client-side — the "no broker" architecture.
void BM_UnicastPollingBaseline(benchmark::State& state) {
  const size_t subscribers = size_t(state.range(0));
  Rng rng(3);
  // Same interest model as above.
  std::vector<geo::AABB> interests;
  for (size_t i = 0; i < subscribers; ++i) {
    geo::Vec3 c{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000), 50};
    interests.push_back(geo::AABB::Cube(c, 100));
  }
  uint64_t bytes_sent = 0;
  uint64_t events = 0;
  for (auto _ : state) {
    geo::Vec3 pos{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000),
                  50};
    // Unicast: the event goes to EVERY client; each filters locally.
    size_t relevant = 0;
    for (const auto& box : interests) {
      bytes_sent += 256;
      if (box.Contains(pos)) ++relevant;
    }
    benchmark::DoNotOptimize(relevant);
    ++events;
  }
  state.SetItemsProcessed(int64_t(events));
  state.counters["subscribers"] = double(subscribers);
  state.counters["bytes_per_event"] =
      double(bytes_sent) / double(std::max<uint64_t>(1, events));
}
BENCHMARK(BM_UnicastPollingBaseline)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

// Overlay scaling: sharding topics across brokers divides matching work.
void BM_BrokerOverlay(benchmark::State& state) {
  const size_t brokers = size_t(state.range(0));
  Rng rng(9);
  BrokerOverlay overlay(brokers, kWorld, 100.0,
                        [](net::NodeId, const Event&) {});
  for (size_t i = 0; i < 10000; ++i) {
    Subscription sub;
    sub.subscriber = net::NodeId(i);
    sub.topic = "topic" + std::to_string(rng.Uniform(64));
    overlay.Subscribe(std::move(sub));
  }
  uint64_t delivered = 0;
  for (auto _ : state) {
    Event e;
    e.topic = "topic" + std::to_string(rng.Uniform(64));
    delivered += overlay.Publish(e);
  }
  state.counters["brokers"] = double(brokers);
  state.counters["deliveries_per_event"] =
      double(delivered) / double(std::max<int64_t>(1, state.iterations()));
}
BENCHMARK(BM_BrokerOverlay)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
