// E16 (extension) — Section IV-H: learned components under data drift.
//
// Claim validated: "learning from a particular instance of dataset and
// query patterns may only improve ... system performance temporarily.
// The fact that databases are dynamic in nature may make the AI/ML
// models and algorithms ineffective due to data and feature drift."
// A drift-detecting adaptive model holds its error flat across concept
// changes while a train-once model degrades permanently.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cmath>

#include "common/rng.h"
#include "ml/online_model.h"

namespace {

using namespace deluge;      // NOLINT
using namespace deluge::ml;  // NOLINT

std::vector<double> RandomConcept(Rng* rng, size_t dim) {
  std::vector<double> w(dim);
  for (auto& v : w) v = rng->UniformDouble(-3, 3);
  return w;
}

// Workload-shift scenario: every `shift_every` samples the underlying
// concept (think: query-pattern regime) changes entirely.
void BM_DriftAdaptation(benchmark::State& state) {
  const bool adaptive_enabled = state.range(0) == 1;
  const int shift_every = int(state.range(1));
  const size_t kDim = 6;

  double frozen_tail_err = 0, live_tail_err = 0;
  uint64_t resets = 0, tail_n = 0;
  for (auto _ : state) {
    Rng rng(19);
    AdaptiveModel live(kDim, 0.05, PageHinkley(0.05, 15.0, 20));
    OnlineLinearModel frozen(kDim, 0.05);
    bool frozen_done = false;

    auto concept_w = RandomConcept(&rng, kDim);
    for (int i = 0; i < 12000; ++i) {
      if (i > 0 && i % shift_every == 0) {
        concept_w = RandomConcept(&rng, kDim);  // drift!
      }
      std::vector<double> x(kDim);
      for (auto& v : x) v = rng.Gaussian(0, 1);
      double y = 0;
      for (size_t d = 0; d < kDim; ++d) y += concept_w[d] * x[d];
      y += rng.Gaussian(0, 0.05);

      double live_err;
      if (adaptive_enabled) {
        live_err = live.Observe(x, y);
      } else {
        live_err = std::fabs(live.model().Predict(x) - y);
      }
      // The frozen baseline trains only during the first regime.
      double frozen_err = std::fabs(frozen.Predict(x) - y);
      if (!frozen_done) {
        frozen.Update(x, y);
        if (i + 1 >= shift_every) frozen_done = true;
      }
      // Tail of each regime = steady state.
      if (i % shift_every > shift_every * 3 / 4) {
        live_tail_err += live_err;
        frozen_tail_err += frozen_err;
        ++tail_n;
      }
    }
    resets += live.drift_resets();
  }
  state.counters["adaptive"] = double(state.range(0));
  state.counters["shift_every"] = double(shift_every);
  state.counters["live_tail_mae"] =
      live_tail_err / double(std::max<uint64_t>(1, tail_n));
  state.counters["frozen_tail_mae"] =
      frozen_tail_err / double(std::max<uint64_t>(1, tail_n));
  state.counters["drift_resets"] =
      double(resets) / double(state.iterations());
}
// Args: {adaptive?, samples per regime}.
BENCHMARK(BM_DriftAdaptation)
    ->Args({1, 3000})->Args({0, 3000})
    ->Args({1, 1500})->Args({0, 1500})
    ->Unit(benchmark::kMillisecond);

// Detector operating point: detection delay vs false alarms across
// thresholds (the lambda sweep).
void BM_DetectorOperatingPoint(benchmark::State& state) {
  const double lambda = double(state.range(0));
  double delay_sum = 0;
  uint64_t false_alarms = 0, trials = 0;
  for (auto _ : state) {
    Rng rng(23);
    PageHinkley ph(0.05, lambda, 30);
    // 2000 stationary samples then a shift; measure detection delay.
    int detected_at = -1;
    for (int i = 0; i < 4000; ++i) {
      double v = (i < 2000 ? 0.1 : 1.1) + std::fabs(rng.Gaussian(0, 0.05));
      if (ph.Observe(v)) {
        if (i < 2000) {
          ++false_alarms;
        } else if (detected_at < 0) {
          detected_at = i;
        }
      }
    }
    if (detected_at >= 0) delay_sum += detected_at - 2000;
    ++trials;
  }
  state.counters["lambda"] = lambda;
  state.counters["mean_delay"] = delay_sum / double(std::max<uint64_t>(1, trials));
  state.counters["false_alarms"] =
      double(false_alarms) / double(std::max<uint64_t>(1, trials));
}
BENCHMARK(BM_DetectorOperatingPoint)->Arg(5)->Arg(15)->Arg(50)->Arg(150)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
