// E4 — Section IV-C: priority transmission scheduling on constrained
// links ("more critical data can be transmitted first").
//
// Claim validated: under a congested field link, strict-priority (and
// EDF-within-class) delivery keeps critical-update latency flat while
// FIFO lets it explode with the bulk backlog.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "common/rng.h"
#include "consistency/priority_scheduler.h"

namespace {

using namespace deluge;               // NOLINT
using namespace deluge::consistency;  // NOLINT

void RunWorkload(TransmissionScheduler* sched, net::Simulator* sim,
                 double bulk_fraction, uint64_t updates) {
  Rng rng(11);
  Micros t = 0;
  for (uint64_t i = 0; i < updates; ++i) {
    t += Micros(rng.Exponential(1.0 / 2000.0));  // ~2 ms mean inter-arrival
    Micros at = t;
    sim->At(at, [sched, &rng, bulk_fraction, at]() {
      PendingUpdate u;
      if (rng.Bernoulli(bulk_fraction)) {
        u.qos = QosClass::kBulk;
        u.bytes = 20000 + rng.Uniform(50000);  // media chunk
      } else if (rng.Bernoulli(0.1)) {
        u.qos = QosClass::kRealtime;
        u.bytes = 200;
        u.deadline = at + 200 * kMicrosPerMilli;
      } else {
        u.qos = QosClass::kInteractive;
        u.bytes = 500;
        u.deadline = at + 500 * kMicrosPerMilli;
      }
      sched->Submit(std::move(u));
    });
  }
  sim->Run();
}

void BM_PriorityVsFifo(benchmark::State& state) {
  const TxPolicy policy = TxPolicy(state.range(0));
  const double bulk_fraction = double(state.range(1)) / 100.0;
  Histogram critical_latency;
  uint64_t misses = 0, delivered = 0;
  for (auto _ : state) {
    net::Simulator sim;
    // Constrained link: 1 Mbps field radio.
    TransmissionScheduler sched(&sim, 125e3, policy);
    RunWorkload(&sched, &sim, bulk_fraction, 3000);
    critical_latency.Merge(sched.stats_for(QosClass::kRealtime).latency);
    misses += sched.stats_for(QosClass::kRealtime).deadline_misses;
    delivered += sched.stats_for(QosClass::kRealtime).delivered;
  }
  state.counters["policy"] = double(state.range(0));
  state.counters["bulk_pct"] = double(state.range(1));
  state.counters["crit_p50_ms"] =
      critical_latency.P50() / double(kMicrosPerMilli);
  state.counters["crit_p99_ms"] =
      critical_latency.P99() / double(kMicrosPerMilli);
  state.counters["crit_miss_pct"] =
      100.0 * double(misses) / double(std::max<uint64_t>(1, delivered));
}
// Args: {policy (0=FIFO, 1=strict, 2=EDF-within-class), bulk %}.
BENCHMARK(BM_PriorityVsFifo)
    ->Args({0, 20})->Args({1, 20})->Args({2, 20})
    ->Args({0, 50})->Args({1, 50})->Args({2, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
