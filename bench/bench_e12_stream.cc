// E12 — Sections IV-C / IV-G: QoS-aware multi-query stream scheduling.
//
// Claim validated: with many continuous queries of heterogeneous
// deadlines sharing one executor, deadline-aware policies (EDF,
// least-slack) cut deadline misses by an order of magnitude vs
// round-robin/FIFO; space-aware scheduling protects physical-space
// tuples — the Sharaf-et-al. [69] direction the paper says "deserves
// further investigation".

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <memory>
#include <vector>

#include "common/rng.h"
#include "stream/scheduler.h"

namespace {

using namespace deluge;         // NOLINT
using namespace deluge::stream; // NOLINT

void BM_MultiQueryScheduling(benchmark::State& state) {
  const SchedulingPolicy policy = SchedulingPolicy(state.range(0));
  const int num_queries = int(state.range(1));

  uint64_t misses = 0, processed = 0;
  double p99 = 0;
  for (auto _ : state) {
    SimClock clock;
    StreamScheduler sched(&clock, policy);
    std::vector<std::unique_ptr<ContinuousQuery>> queries;
    Rng rng(19);
    for (int q = 0; q < num_queries; ++q) {
      QosSpec qos;
      // Deadlines from 1 ms (interactive) to 1 s (analytics).
      qos.deadline = kMicrosPerMilli << rng.Uniform(11);
      auto query = std::make_unique<ContinuousQuery>(
          "q" + std::to_string(q), qos, /*cost=*/20 + rng.Uniform(80));
      query->Sink([](const Tuple&) {});
      sched.Register(query.get());
      queries.push_back(std::move(query));
    }
    // Bursty-but-feasible arrivals: each burst transiently overloads the
    // executor (queues build, ordering decisions matter), but the cycle
    // average stays below capacity — the regime where deadline-aware
    // policies shine and blind ones thrash.  (Under *sustained* overload
    // every policy drowns and plain EDF famously degrades; admission
    // control, not ordering, is the remedy there.)
    for (int burst = 0; burst < 100; ++burst) {
      for (int i = 0; i < 200; ++i) {
        Tuple t;
        t.event_time = clock.NowMicros();
        t.space = rng.Bernoulli(0.5) ? Space::kPhysical : Space::kVirtual;
        sched.Enqueue("q" + std::to_string(rng.Uniform(num_queries)),
                      std::move(t));
      }
      for (int i = 0; i < 250 && sched.Step(); ++i) {
      }
    }
    sched.RunUntilDrained();
    QueryStats total = sched.TotalStats();
    misses += total.deadline_misses;
    processed += total.processed;
    p99 = total.latency.P99();
  }
  state.counters["policy"] = double(state.range(0));
  state.counters["queries"] = double(num_queries);
  state.counters["miss_pct"] =
      100.0 * double(misses) / double(std::max<uint64_t>(1, processed));
  state.counters["p99_ms"] = p99 / double(kMicrosPerMilli);
}
// Args: {policy, #queries}.  Policies: 0=RR 1=FIFO 2=EDF 3=least-slack
// 4=weighted 5=class-aware.
BENCHMARK(BM_MultiQueryScheduling)
    ->Args({0, 64})->Args({1, 64})->Args({2, 64})->Args({3, 64})
    ->Args({2, 8})->Args({2, 256})
    ->Unit(benchmark::kMillisecond);

// Space-aware protection: latency of physical tuples under virtual flood.
void BM_SpaceAwareProtection(benchmark::State& state) {
  const SchedulingPolicy policy = SchedulingPolicy(state.range(0));
  double phys_p99 = 0;
  for (auto _ : state) {
    SimClock clock;
    StreamScheduler sched(&clock, policy);
    QosSpec qos;
    qos.deadline = 10 * kMicrosPerMilli;
    ContinuousQuery phys("phys", qos, 30);
    ContinuousQuery virt("virt", qos, 30);
    phys.Sink([](const Tuple&) {});
    virt.Sink([](const Tuple&) {});
    sched.Register(&phys);
    sched.Register(&virt);
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
      Tuple t;
      t.event_time = clock.NowMicros();
      // 10:1 virtual flood, arriving faster than one executor can drain.
      if (rng.Bernoulli(0.9)) {
        t.space = Space::kVirtual;
        sched.Enqueue("virt", std::move(t));
      } else {
        t.space = Space::kPhysical;
        sched.Enqueue("phys", std::move(t));
      }
      if (i % 2 == 0) sched.Step();
    }
    sched.RunUntilDrained();
    phys_p99 = sched.stats_for("phys").latency.P99();
  }
  state.counters["policy"] = double(state.range(0));
  state.counters["phys_p99_ms"] = phys_p99 / double(kMicrosPerMilli);
}
BENCHMARK(BM_SpaceAwareProtection)
    ->Arg(int(SchedulingPolicy::kFifo))
    ->Arg(int(SchedulingPolicy::kClassAware))
    ->Unit(benchmark::kMillisecond);

}  // namespace

DELUGE_BENCH_MAIN();
