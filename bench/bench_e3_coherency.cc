// E3 — Section IV-C: coherency-bounded dissemination vs full refresh.
//
// Claim validated: tolerating a small bounded discrepancy slashes the
// bandwidth of physical->virtual synchronization while the mirror error
// stays below the contract.  Sweep the coherency bound (metres x10 to
// keep integer args); bound 0 is the full-refresh baseline.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "common/rng.h"
#include "consistency/coherency.h"
#include "consistency/lod.h"
#include "core/sensors.h"

namespace {

using namespace deluge;               // NOLINT
using namespace deluge::consistency;  // NOLINT

void BM_CoherencyBoundSweep(benchmark::State& state) {
  const double bound = double(state.range(0)) / 10.0;  // metres
  const geo::AABB world({0, 0, 0}, {2000, 2000, 100});

  core::SensorFleetOptions fleet_opts;
  fleet_opts.num_entities = 10000;
  fleet_opts.max_speed = 5.0;
  fleet_opts.gps_noise_stddev = 0.0;
  core::SensorFleet fleet(world, fleet_opts);

  CoherencyFilter filter({bound, 3600 * kMicrosPerSecond});
  Micros now = 0;
  for (auto _ : state) {
    now += 100 * kMicrosPerMilli;
    for (const auto& r : fleet.Tick(100 * kMicrosPerMilli, now)) {
      filter.Offer(r.entity, r.position, r.t);
    }
  }
  const auto& stats = filter.stats();
  state.counters["bound_m"] = bound;
  state.counters["suppression_pct"] = 100.0 * stats.SuppressionRatio();
  state.counters["bytes_per_tick"] =
      double(stats.bytes_sent) / double(std::max<int64_t>(1, state.iterations()));
  state.counters["mean_error_m"] = stats.MeanDeviation();
  state.counters["max_error_m"] = stats.deviation_max;
}
BENCHMARK(BM_CoherencyBoundSweep)
    ->Arg(0)      // full refresh baseline
    ->Arg(5)      // 0.5 m
    ->Arg(10)     // 1 m
    ->Arg(20)     // 2 m
    ->Arg(50)     // 5 m
    ->Arg(100)    // 10 m
    ->Unit(benchmark::kMillisecond);

// Ablation: time-bound (max staleness) forcing refreshes even at loose
// value bounds — the knob trading bandwidth for freshness of idle
// entities.
void BM_StalenessBoundSweep(benchmark::State& state) {
  const Micros staleness = state.range(0) * kMicrosPerMilli;
  const geo::AABB world({0, 0, 0}, {2000, 2000, 100});
  core::SensorFleetOptions fleet_opts;
  fleet_opts.num_entities = 5000;
  fleet_opts.max_speed = 0.3;  // mostly-idle crowd
  fleet_opts.gps_noise_stddev = 0.0;
  core::SensorFleet fleet(world, fleet_opts);
  CoherencyFilter filter({5.0, staleness});
  Micros now = 0;
  for (auto _ : state) {
    now += 100 * kMicrosPerMilli;
    for (const auto& r : fleet.Tick(100 * kMicrosPerMilli, now)) {
      filter.Offer(r.entity, r.position, r.t);
    }
  }
  state.counters["staleness_ms"] = double(state.range(0));
  state.counters["suppression_pct"] =
      100.0 * filter.stats().SuppressionRatio();
}
BENCHMARK(BM_StalenessBoundSweep)->Arg(200)->Arg(1000)->Arg(5000)->Arg(60000)
    ->Unit(benchmark::kMillisecond);

// LOD degradation: utility captured vs link budget (Section IV-C's
// "low resolution image/video may be used instead").
void BM_LodUtilityVsBudget(benchmark::State& state) {
  const uint64_t budget_kb = uint64_t(state.range(0));
  Rng rng(7);
  std::vector<LodCandidate> assets;
  double max_utility = 0.0;
  for (uint64_t i = 0; i < 500; ++i) {
    LodCandidate c;
    c.id = i;
    c.low_bytes = 2048 + rng.Uniform(8192);
    c.full_bytes = c.low_bytes * (4 + rng.Uniform(16));
    c.importance = rng.UniformDouble(0.05, 1.0);
    max_utility += c.importance;
    assets.push_back(c);
  }
  LodSelector selector(0.4);
  double utility = 0.0;
  for (auto _ : state) {
    auto choices = selector.Select(assets, budget_kb * 1024);
    utility = LodSelector::TotalUtility(choices);
    benchmark::DoNotOptimize(choices.data());
  }
  state.counters["budget_kb"] = double(budget_kb);
  state.counters["utility_pct"] = 100.0 * utility / max_utility;
}
BENCHMARK(BM_LodUtilityVsBudget)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DELUGE_BENCH_MAIN();
